//! Offline stand-in for `serde_derive`.
//!
//! The sibling `serde` stub defines `Serialize` / `Deserialize` as marker
//! traits, so the derives only need to emit empty impls:
//!
//! ```text
//! impl<'a, T> ::serde::Serialize for Foo<'a, T> {}
//! impl<'de, 'a, T> ::serde::Deserialize<'de> for Foo<'a, T> {}
//! ```
//!
//! The input item is parsed with a small hand-rolled scanner (no `syn`):
//! it skips attributes and visibility, finds the `struct`/`enum`/`union`
//! keyword, takes the following identifier as the type name, and — when a
//! generic parameter list follows — collects the parameter declarations
//! while stripping bounds and defaults.  `#[serde(...)]` helper
//! attributes are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// One generic parameter: how it is declared on the impl and how it is
/// named in the self-type's argument list.
struct Param {
    decl: String,
    name: String,
}

/// Splits the token text of a generic list (the tokens between the outer
/// `<` and `>`) into per-parameter declarations and names.
fn split_params(tokens: &[TokenTree]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut current: Vec<String> = Vec::new();
    let flush = |current: &mut Vec<String>, params: &mut Vec<Param>| {
        if current.is_empty() {
            return;
        }
        // Drop bounds and defaults: keep everything before the first `:`
        // or `=` — except for `const N: usize`, where the type is part of
        // the declaration.
        let is_const = current.first().is_some_and(|t| t == "const");
        let head: Vec<String> = if is_const {
            current.clone()
        } else {
            current.iter().take_while(|t| *t != ":" && *t != "=").cloned().collect()
        };
        let name = if is_const {
            head.get(1).cloned().unwrap_or_else(|| "N".to_string())
        } else {
            head.join("")
        };
        let decl = if is_const { head.join(" ").replace(" :", ":") } else { head.join("") };
        params.push(Param { decl, name });
        current.clear();
    };
    for tok in tokens {
        match tok {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        flush(&mut current, &mut params);
                        continue;
                    }
                    _ => {}
                }
                current.push(c.to_string());
            }
            other => current.push(other.to_string()),
        }
    }
    flush(&mut current, &mut params);
    params
}

/// Finds the type name and generic parameter tokens of the deriving item.
fn parse_item(input: TokenStream) -> (String, Vec<Param>) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected a type name, found {other:?}"),
    };
    i += 1;
    let mut generics = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            generics.push(tokens[i].clone());
            i += 1;
        }
    }
    (name, split_params(&generics))
}

fn empty_impl(trait_path: &str, extra_lifetime: Option<&str>, input: TokenStream) -> TokenStream {
    let (name, params) = parse_item(input);
    let mut decls: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        decls.push(lt.to_string());
    }
    decls.extend(params.iter().map(|p| p.decl.clone()));
    let impl_list =
        if decls.is_empty() { String::new() } else { format!("<{}>", decls.join(", ")) };
    let names: Vec<String> = params.iter().map(|p| p.name.clone()).collect();
    let ty_list = if names.is_empty() { String::new() } else { format!("<{}>", names.join(", ")) };
    let code =
        format!("#[automatically_derived] impl{impl_list} {trait_path} for {name}{ty_list} {{}}");
    code.parse().expect("serde_derive stub: generated impl must parse")
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl("::serde::Serialize", None, input)
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl("::serde::Deserialize<'de>", Some("'de"), input)
}
