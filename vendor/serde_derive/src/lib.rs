//! Offline stand-in for `serde_derive`.
//!
//! The sibling `serde` stub models serialization as a single method —
//! `Serialize::to_value(&self) -> serde::Value` — so the `Serialize` derive
//! emits a genuine field-by-field implementation:
//!
//! * named structs become `Value::Object` in declaration order,
//! * tuple structs become `Value::Array`,
//! * enums use serde's default externally-tagged layout
//!   (`"Variant"` for unit variants, `{"Variant": ...}` otherwise).
//!
//! `Deserialize` remains a no-op marker impl (typed decoding is not
//! provided offline; `serde_json::from_str` parses into `serde::Value`).
//!
//! The input item is parsed with a small hand-rolled scanner (no `syn`):
//! it skips attributes and visibility, finds the `struct`/`enum`/`union`
//! keyword, takes the following identifier as the type name, collects the
//! generic parameter declarations, and then walks the body group to list
//! fields and variants.  `#[serde(...)]` helper attributes are accepted
//! and ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One generic parameter: how it is declared on the impl and how it is
/// named in the self-type's argument list.
struct Param {
    decl: String,
    name: String,
    is_type: bool,
}

/// Splits the token text of a generic list (the tokens between the outer
/// `<` and `>`) into per-parameter declarations and names.
fn split_params(tokens: &[TokenTree]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut current: Vec<String> = Vec::new();
    let flush = |current: &mut Vec<String>, params: &mut Vec<Param>| {
        if current.is_empty() {
            return;
        }
        // Drop bounds and defaults: keep everything before the first `:`
        // or `=` — except for `const N: usize`, where the type is part of
        // the declaration.
        let is_const = current.first().is_some_and(|t| t == "const");
        let head: Vec<String> = if is_const {
            current.clone()
        } else {
            current.iter().take_while(|t| *t != ":" && *t != "=").cloned().collect()
        };
        let name = if is_const {
            head.get(1).cloned().unwrap_or_else(|| "N".to_string())
        } else {
            head.join("")
        };
        let decl = if is_const { head.join(" ").replace(" :", ":") } else { head.join("") };
        let is_type = !is_const && !name.starts_with('\'');
        params.push(Param { decl, name, is_type });
        current.clear();
    };
    for tok in tokens {
        match tok {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        flush(&mut current, &mut params);
                        continue;
                    }
                    _ => {}
                }
                current.push(c.to_string());
            }
            other => current.push(other.to_string()),
        }
    }
    flush(&mut current, &mut params);
    params
}

/// The shape of the deriving item's body.
enum Body {
    /// `struct Foo;`
    UnitStruct,
    /// `struct Foo(A, B);` — the number of fields.
    TupleStruct(usize),
    /// `struct Foo { a: A, b: B }` — the field names in order.
    NamedStruct(Vec<String>),
    /// `enum Foo { ... }` — the variants in order.
    Enum(Vec<Variant>),
}

/// One enum variant and its payload shape.
struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// A fully parsed derive input.
struct Item {
    name: String,
    params: Vec<Param>,
    body: Body,
}

/// Skips an attribute at `tokens[i]` (`#` followed by a bracket group),
/// returning the index after it, or `i` unchanged if not an attribute.
fn skip_attr(tokens: &[TokenTree], i: usize) -> usize {
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#')
        && matches!(tokens.get(i + 1), Some(TokenTree::Group(_)))
    {
        i + 2
    } else {
        i
    }
}

/// Splits a delimited body's tokens at depth-0 commas (angle-bracket depth;
/// nested `()`/`[]`/`{}` arrive as single `Group` tokens).
fn split_comma(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0usize;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Extracts the field names of a named-field group (`{ a: A, b: B }`).
fn named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    for field in split_comma(tokens) {
        // Skip attributes and visibility; the field name is the last
        // identifier before the first depth-0 `:`.
        let mut i = 0;
        loop {
            let next = skip_attr(&field, i);
            if next == i {
                break;
            }
            i = next;
        }
        let mut name = None;
        while i < field.len() {
            match &field[i] {
                TokenTree::Punct(p) if p.as_char() == ':' => break,
                TokenTree::Ident(id) => name = Some(id.to_string()),
                _ => {}
            }
            i += 1;
        }
        if let Some(n) = name {
            names.push(n);
        }
    }
    names
}

/// Parses the variants of an enum body group.
fn enum_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    for chunk in split_comma(tokens) {
        let mut i = 0;
        loop {
            let next = skip_attr(&chunk, i);
            if next == i {
                break;
            }
            i = next;
        }
        let Some(TokenTree::Ident(id)) = chunk.get(i) else { continue };
        let name = id.to_string();
        let fields = match chunk.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let payload: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantFields::Tuple(split_comma(&payload).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let payload: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantFields::Named(named_fields(&payload))
            }
            // `Variant = 3` (explicit discriminant) or nothing: unit.
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    variants
}

/// Parses the deriving item: name, generic parameters, body shape.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_enum = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                is_enum = id.to_string() == "enum";
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected a type name, found {other:?}"),
    };
    i += 1;
    let mut generics = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            generics.push(tokens[i].clone());
            i += 1;
        }
        i += 1; // past the closing `>`
    }
    // Body: the last top-level brace group (skipping any `where` clause),
    // or a parenthesis group for tuple structs, or nothing for unit
    // structs.
    let rest = &tokens[i.min(tokens.len())..];
    let mut brace: Option<&proc_macro::Group> = None;
    let mut paren: Option<&proc_macro::Group> = None;
    for tok in rest {
        if let TokenTree::Group(g) = tok {
            match g.delimiter() {
                Delimiter::Brace => brace = Some(g),
                Delimiter::Parenthesis if paren.is_none() => paren = Some(g),
                _ => {}
            }
        }
    }
    let body = if let Some(g) = brace {
        let payload: Vec<TokenTree> = g.stream().into_iter().collect();
        if is_enum {
            Body::Enum(enum_variants(&payload))
        } else {
            Body::NamedStruct(named_fields(&payload))
        }
    } else if let Some(g) = paren {
        let payload: Vec<TokenTree> = g.stream().into_iter().collect();
        Body::TupleStruct(split_comma(&payload).len())
    } else {
        Body::UnitStruct
    };
    Item { name, params: split_params(&generics), body }
}

/// Renders `impl<...> Trait for Name<...>` headers, optionally bounding
/// every type parameter by `Serialize`.
fn impl_header(
    trait_path: &str,
    extra_lifetime: Option<&str>,
    item: &Item,
    bound: Option<&str>,
) -> String {
    let mut decls: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        decls.push(lt.to_string());
    }
    for p in &item.params {
        match bound {
            Some(b) if p.is_type => decls.push(format!("{}: {b}", p.decl)),
            _ => decls.push(p.decl.clone()),
        }
    }
    let impl_list =
        if decls.is_empty() { String::new() } else { format!("<{}>", decls.join(", ")) };
    let names: Vec<String> = item.params.iter().map(|p| p.name.clone()).collect();
    let ty_list = if names.is_empty() { String::new() } else { format!("<{}>", names.join(", ")) };
    format!("impl{impl_list} {trait_path} for {}{ty_list}", item.name)
}

fn object_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

/// Generates the `to_value` body for the item.
fn to_value_body(item: &Item) -> String {
    match &item.body {
        Body::UnitStruct => "::serde::Value::Null".to_owned(),
        Body::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            if *n == 1 {
                // Newtype structs serialize transparently, like real serde.
                items.into_iter().next().expect("one field")
            } else {
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
        }
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| object_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) if variants.is_empty() => "match *self {}".to_owned(),
        Body::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let path = format!("{}::{}", item.name, v.name);
                let arm = match &v.fields {
                    VariantFields::Unit => format!(
                        "{path} => ::serde::Value::String(::std::string::String::from(\"{}\")),",
                        v.name
                    ),
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let payload = if *n == 1 {
                            values.into_iter().next().expect("one field")
                        } else {
                            format!("::serde::Value::Array(::std::vec![{}])", values.join(", "))
                        };
                        format!(
                            "{path}({}) => ::serde::Value::Object(::std::vec![{}]),",
                            binders.join(", "),
                            object_entry(&v.name, &payload)
                        )
                    }
                    VariantFields::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| object_entry(f, &format!("::serde::Serialize::to_value({f})")))
                            .collect();
                        let payload =
                            format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "));
                        format!(
                            "{path} {{ {} }} => ::serde::Value::Object(::std::vec![{}]),",
                            fields.join(", "),
                            object_entry(&v.name, &payload)
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    }
}

/// Derives a real `serde::Serialize` implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let header = impl_header("::serde::Serialize", None, &item, Some("::serde::Serialize"));
    let body = to_value_body(&item);
    let code = format!(
        "#[automatically_derived] {header} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    );
    code.parse().expect("serde_derive stub: generated Serialize impl must parse")
}

/// Derives the `serde::Deserialize` marker impl (no-op: typed decoding is
/// not provided offline).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let header = impl_header("::serde::Deserialize<'de>", Some("'de"), &item, None);
    let code = format!("#[automatically_derived] {header} {{}}");
    code.parse().expect("serde_derive stub: generated Deserialize impl must parse")
}
