//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! Unlike the first-generation stub (marker traits only), this version
//! carries a real, if deliberately small, serialization model: a JSON-shaped
//! [`Value`] tree and a [`Serialize`] trait whose single method renders a
//! value into that tree.  `serde_derive` emits genuine field-by-field
//! implementations and `serde_json` renders / parses the tree, so
//! `serde_json::to_string(&report)` produces real JSON offline.
//!
//! [`Deserialize`] remains a marker trait: nothing in the workspace needs
//! typed decoding, only dump-and-inspect (`serde_json::from_str` parses
//! into [`Value`] instead).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON document tree — the output of [`Serialize::to_value`] and the
/// parse result of `serde_json::from_str`.
///
/// Objects preserve insertion order (a `Vec` of pairs rather than a map),
/// which keeps derived struct output in declaration order and makes JSON
/// dumps deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (serialized without a decimal point).
    Int(i128),
    /// A floating-point number.  Non-finite values render as `null`, like
    /// the real `serde_json`'s lossy modes.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string value.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integer value.
    #[must_use]
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The array elements, if this is an array value.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders an object key for this value: strings render verbatim,
    /// scalars via their JSON text (real `serde_json` requires string keys;
    /// we are more forgiving so that enum-keyed `BTreeMap`s serialize).
    #[must_use]
    pub fn into_object_key(self) -> String {
        match self {
            Value::String(s) => s,
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            other => format!("{other:?}"),
        }
    }
}

/// Stand-in for `serde::Serialize`: renders the value into a [`Value`]
/// tree.  Derived impls serialize structs as objects (field order =
/// declaration order) and enums in the externally-tagged layout the real
/// serde uses by default (`"Variant"` for unit variants, `{"Variant": ...}`
/// otherwise).
pub trait Serialize {
    /// Renders `self` as a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Marker trait standing in for `serde::Deserialize` (typed decoding is
/// not provided offline; parse into [`Value`] via `serde_json::from_str`).
pub trait Deserialize<'de> {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Value {}

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

// u128 may exceed i128; clamp through string rendering is overkill — the
// workspace only stores millisecond durations there.
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        i128::try_from(*self).map_or_else(|_| Value::String(self.to_string()), Value::Int)
    }
}
impl<'de> Deserialize<'de> for u128 {}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl<'de> Deserialize<'de> for () {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl<'de> Deserialize<'de> for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

// Shared ownership serializes transparently, like the real serde's `rc`
// feature: the pointee is rendered in place (structural sharing is a
// memory-layout concern, not a data-model one).
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

fn seq_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Array(items.map(Serialize::to_value).collect())
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Object(entries.map(|(k, v)| (k.to_value().into_object_key(), v.to_value())).collect())
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<'de, T: Deserialize<'de>, S> Deserialize<'de> for std::collections::HashSet<T, S> {}

macro_rules! impl_tuple {
    ($(($($n:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {}
    )*};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impls_produce_expected_shapes() {
        assert_eq!(3i32.to_value(), Value::Int(3));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
        assert_eq!(vec![1u8, 2].to_value(), Value::Array(vec![Value::Int(1), Value::Int(2)]));
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_owned(), 1u64);
        assert_eq!(m.to_value(), Value::Object(vec![("k".into(), Value::Int(1))]));
        assert_eq!((1u8, "a").to_value().as_array().unwrap().len(), 2);
    }

    #[test]
    fn object_key_rendering() {
        assert_eq!(Value::String("k".into()).into_object_key(), "k");
        assert_eq!(Value::Int(-4).into_object_key(), "-4");
        assert_eq!(Value::Bool(true).into_object_key(), "true");
    }
}
