//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace only uses serde as derive targets (`#[derive(Serialize,
//! Deserialize)]`) plus one `impl serde::Serialize` bound in
//! `lancer-bench::dump_json`.  This stub therefore provides [`Serialize`]
//! and [`Deserialize`] as marker traits (no methods), blanket impls for
//! the std types that appear inside derived structs, and re-exports the
//! matching no-op derive macros from `serde_derive`.  Actual JSON
//! encoding is unavailable offline; `serde_json::to_string_pretty`
//! reports this as an error.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
);

impl Serialize for str {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {}
impl<'de, T: Deserialize<'de>, S> Deserialize<'de> for std::collections::HashSet<T, S> {}

macro_rules! impl_tuple_markers {
    ($(($($n:ident),+)),* $(,)?) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {}
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {}
    )*};
}

impl_tuple_markers!((A), (A, B), (A, B, C), (A, B, C, D));
