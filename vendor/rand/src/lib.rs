//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so this crate reimplements exactly the surface the workspace
//! uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`, `gen_ratio`),
//! [`SeedableRng`] (`seed_from_u64`, `from_seed`), [`rngs::StdRng`] (a
//! xoshiro256** generator — deterministic, seedable, and fast, though not
//! the ChaCha12 stream of the real crate), and [`seq::SliceRandom`]
//! (`choose`, `shuffle`).  Streams differ from the real `rand`, but all
//! workspace determinism guarantees only require self-consistency.

#![warn(missing_docs)]

/// Concrete generators.
pub mod rngs {
    /// The standard seedable RNG: xoshiro256** with splitmix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The raw seed accepted by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (splitmix64 expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

impl SeedableRng for rngs::StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // All-zero state would be a fixed point for xoshiro.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 0xBB67_AE85_84CA_A73B, 1];
        }
        rngs::StdRng { s }
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` (`inclusive` extends to `high`).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "cannot sample from empty range");
                } else {
                    assert!(low < high, "cannot sample from empty range");
                }
                // Two's-complement width, masked to 64 bits so ranges wider
                // than the signed maximum (e.g. i64::MIN..=i64::MAX) do not
                // sign-extend into a bogus span.
                let width = (high as $wide as u64).wrapping_sub(low as $wide as u64);
                let span = u128::from(width) + if inclusive { 1 } else { 0 };
                let offset = (rng.next_u64() as u128) % span;
                (low as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// The user-facing random number generator interface.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a random value of a [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Returns a uniformly distributed value from `range`.
    #[inline]
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    #[inline]
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0);
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }
}

impl Rng for rngs::StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sequence-related random helpers.
pub mod seq {
    use super::Rng;

    /// Random helpers on slices: uniform element choice and Fisher–Yates
    /// shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns a uniformly chosen mutable reference, or `None` if empty.
        fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }

        fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get_mut(i)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_full_width_ranges() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            // Spans wider than i64::MAX must not sign-extend or overflow.
            let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
            let v: i64 = rng.gen_range(i64::MIN..0);
            assert!(v < 0);
            let _: u64 = rng.gen_range(u64::MIN..=u64::MAX);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn choose_and_shuffle_cover_slice() {
        let mut rng = StdRng::seed_from_u64(1);
        let items = [10, 20, 30];
        assert!(items.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
