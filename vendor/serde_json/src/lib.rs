//! Offline stand-in for `serde_json` — with a real JSON encoder.
//!
//! The `serde` stub models serialization as `Serialize::to_value(&self) ->
//! serde::Value`; this crate renders that tree to JSON text
//! ([`to_string`] / [`to_string_pretty`]) and parses JSON text back into a
//! [`Value`] tree ([`from_str`]), so campaign and oracle reports can be
//! dumped to disk and round-tripped.  Typed deserialization
//! (`from_str::<T>`) is not provided; inspect the parsed [`Value`]
//! instead.

#![warn(missing_docs)]

use std::fmt;

/// The JSON tree type (re-exported from the `serde` stub, where the
/// `Serialize` trait produces it).
pub use serde::Value;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A syntax error while parsing, with a byte offset and description.
    Syntax {
        /// Byte offset into the input where parsing failed.
        offset: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Converts a value into its JSON tree without rendering.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    let newline = |out: &mut String, level: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` gives the shortest representation that round-trips,
                // and always includes a decimal point or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => push_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, level + 1);
                render(item, indent, level + 1, out);
            }
            newline(out, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, level + 1);
                push_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, level + 1, out);
            }
            newline(out, level);
            out.push('}');
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
pub fn from_str(input: &str) -> Result<Value> {
    let mut p = Parser { input, bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Syntax { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for the dumps
                            // this workspace produces; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // `pos` always sits on a char boundary here: it only
                    // ever advances by whole scalars or past ASCII bytes.
                    let c = self.input[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ASCII bytes");
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| self.err(e.to_string()))
        } else {
            text.parse::<i128>().map(Value::Int).map_err(|e| self.err(e.to_string()))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn pretty_rendering_indents() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_owned(), vec![1u8]);
        let pretty = to_string_pretty(&m).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parses_documents() {
        let v = from_str(r#"{"a": [1, -2.5, "x", null, true], "b": {}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap(),
            &[
                Value::Int(1),
                Value::Float(-2.5),
                Value::String("x".into()),
                Value::Null,
                Value::Bool(true)
            ]
        );
        assert_eq!(v.get("b"), Some(&Value::Object(vec![])));
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn compact_output_round_trips_through_the_parser() {
        let doc = Value::Object(vec![
            ("s".into(), Value::String("quote \" backslash \\ tab \t".into())),
            ("n".into(), Value::Int(-9_223_372_036_854_775_808i128)),
            ("f".into(), Value::Float(0.1)),
            ("arr".into(), Value::Array(vec![Value::Null, Value::Bool(false)])),
        ]);
        let compact = to_string(&doc).unwrap();
        assert_eq!(from_str(&compact).unwrap(), doc);
        let pretty = to_string_pretty(&doc).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), doc);
    }
}
