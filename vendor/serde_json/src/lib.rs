//! Offline stand-in for `serde_json`.
//!
//! The real crate cannot be fetched in this build environment and the
//! `serde` stub's `Serialize` is a marker trait with no serialization
//! machinery, so encoding is genuinely unavailable: [`to_string`] and
//! [`to_string_pretty`] always return [`Error::Unavailable`].  Callers in
//! this workspace (`lancer_bench::dump_json`) already treat serialization
//! as best-effort and skip writing when an error is returned.

#![warn(missing_docs)]

use std::fmt;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Serialization is not available in the offline stub.
    Unavailable,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Unavailable => {
                write!(f, "serde_json stub: JSON serialization unavailable offline")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Stub for `serde_json::to_string` — always reports unavailability.
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error::Unavailable)
}

/// Stub for `serde_json::to_string_pretty` — always reports unavailability.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error::Unavailable)
}
