//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! Supports the surface this workspace's property tests use:
//!
//! - [`proptest!`] with an optional `#![proptest_config(...)]` header and
//!   `arg in strategy` parameter lists,
//! - [`strategy::Strategy`] with `prop_map` and `boxed`,
//! - [`prop_oneof!`], [`strategy::Just`], `any::<T>()` for primitives,
//!   numeric range strategies, and `&str` patterns of the
//!   `[class]{lo,hi}` regex subset via [`string_from_pattern`],
//! - [`collection::vec`],
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Failing cases are reported with their deterministic per-test seed and
//! case index, but are **not shrunk** — minimisation is out of scope for
//! an offline stub.

#![warn(missing_docs)]

pub use rand;

/// Test-runner configuration and errors.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; local-rejects never occur here.
        pub max_local_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0, max_local_rejects: 65_536 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Strategies: composable random value generators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between boxed sub-strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! requires at least one strategy");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string_from_pattern(self, rng)
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self {
                use rand::Rng;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self {
        use rand::Rng;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self {
        use rand::Rng;
        // Finite, wide-range doubles; NaN/infinity excluded like
        // proptest's default f64 strategy parameters.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let scale = rng.gen_range(-300i32..300) as f64;
        (mantissa - 0.5) * 10f64.powf(scale / 10.0)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut rand::rngs::StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Generates a string from the `[class]{lo,hi}` regex subset used by the
/// workspace's tests: a sequence of atoms, where an atom is a `[...]`
/// character class (literal characters and `a-z` ranges), `.` (printable
/// ASCII), or a literal character, each optionally followed by `{n}` or
/// `{lo,hi}`.
pub fn string_from_pattern(pattern: &str, rng: &mut rand::rngs::StdRng) -> String {
    use rand::Rng;
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom into the set of characters it can produce.
        let mut choices: Vec<char> = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (c, chars[i + 2]);
                        choices.extend((lo..=hi).filter(|ch| ch.is_ascii()));
                        i += 3;
                    } else if c == '\\' && i + 1 < chars.len() {
                        choices.push(chars[i + 1]);
                        i += 2;
                    } else {
                        choices.push(c);
                        i += 1;
                    }
                }
                i += 1; // consume ']'
            }
            '.' => {
                choices.extend((0x20u8..0x7f).map(char::from));
                i += 1;
            }
            '\\' if i + 1 < chars.len() => {
                choices.push(chars[i + 1]);
                i += 2;
            }
            c => {
                choices.push(c);
                i += 1;
            }
        }
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
            let close = close.expect("string pattern: unclosed quantifier");
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => {
                    (a.trim().parse::<usize>().unwrap_or(0), b.trim().parse::<usize>().unwrap_or(8))
                }
                None => {
                    let n = body.trim().parse::<usize>().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if choices.is_empty() {
            continue;
        }
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            let pick = rng.gen_range(0..choices.len());
            out.push(choices[pick]);
        }
    }
    out
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies with a shared value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the seed and case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[doc(hidden)]
pub fn __test_seed(name: &str) -> u64 {
    // FNV-1a over the test name: deterministic per test, stable across
    // runs, so failures are reproducible without a persistence file.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Declares property tests: each `arg in strategy` parameter is generated
/// `config.cases` times from a deterministic per-test RNG and the body is
/// run for each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::__test_seed(stringify!($name));
                let mut rng =
                    <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(seed);
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )*
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            seed,
                            err,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pattern_generation_respects_class_and_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = crate::string_from_pattern("[a-zA-Z ./]{0,6}", &mut rng);
            assert!(s.chars().count() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == ' ' || c == '.' || c == '/'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro pipeline works end to end.
        #[test]
        fn macro_generates_and_asserts(
            x in any::<u64>(),
            v in prop_oneof![Just(1u8), 2u8..5, any::<u8>().prop_map(|b| b | 0x80)],
            bytes in collection::vec(any::<u8>(), 0..4),
        ) {
            prop_assert!(bytes.len() < 4, "vec length out of range: {}", bytes.len());
            prop_assert_eq!(x, x);
            prop_assert_ne!(u16::from(v) + 1, 0u16);
        }
    }
}
