//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`] with
//! `sample_size`/`bench_function`/`benchmark_group`,
//! [`BenchmarkGroup`] with `throughput`/`bench_function`/
//! `bench_with_input`/`finish`, [`Bencher::iter`], [`BenchmarkId`] and
//! [`Throughput`] — with plain wall-clock measurement: each benchmark
//! runs a short warm-up, then `sample_size` timed batches, and prints
//! mean time per iteration.  No statistics or plots; the point is that
//! `cargo bench` runs and the benches cannot rot unnoticed.
//!
//! Two of upstream criterion's CLI modes are honoured (pass them after
//! `--`, e.g. `cargo bench -- --quick`):
//!
//! * `--quick` — short warm-up, 3 samples, small batches: seconds per
//!   binary instead of minutes, for CI trend tracking.
//! * `--test` — run every benchmark routine exactly once, untimed: the
//!   smoke mode `cargo bench -- --test` provides upstream.
//!
//! When the `CRITERION_SUMMARY` environment variable names a file, the
//! binary additionally writes a machine-readable JSON summary of every
//! measurement on exit (see [`write_summary`]) — CI uploads
//! `BENCH_throughput.json` this way so the perf trajectory of the
//! executor and the replay cache is tracked per commit.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How the binary was asked to run (parsed once from the process args).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (the default).
    Full,
    /// Abbreviated measurement (`--quick`).
    Quick,
    /// Run each routine once, untimed (`--test`).
    Test,
}

fn mode() -> Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    *MODE.get_or_init(|| {
        let mut mode = Mode::Full;
        for arg in std::env::args() {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                "--quick" if mode == Mode::Full => mode = Mode::Quick,
                _ => {}
            }
        }
        mode
    })
}

/// One finished measurement, retained for the JSON summary.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    ns_per_iter: f64,
    iterations: u64,
    throughput_per_sec: Option<f64>,
}

fn records() -> &'static Mutex<Vec<Record>> {
    static RECORDS: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the JSON summary of every measurement taken so far to the path
/// named by `CRITERION_SUMMARY`, if set.  Called automatically by the
/// `main` that [`criterion_main!`] generates; a no-op otherwise (and in
/// `--test` mode, which measures nothing).
pub fn write_summary() {
    let Ok(path) = std::env::var("CRITERION_SUMMARY") else { return };
    if path.is_empty() {
        return;
    }
    let records = records().lock().expect("bench summary poisoned");
    let mode_label = match mode() {
        Mode::Full => "full",
        Mode::Quick => "quick",
        Mode::Test => "test",
    };
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"mode\": \"{mode_label}\",\n"));
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let rate = match r.throughput_per_sec {
            Some(rate) => format!("{rate:.1}"),
            None => "null".to_owned(),
        };
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}, \
             \"throughput_per_sec\": {}}}{}\n",
            json_escape(&r.id),
            r.ns_per_iter,
            r.iterations,
            rate,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write bench summary to {path}: {e}");
    } else {
        eprintln!("(bench summary written to {path})");
    }
}

/// Re-export matching `criterion::black_box` (now just the std hint).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.to_string(), sample_size, throughput: None }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&full, self.throughput);
        self
    }

    /// Finishes the group (reporting happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

fn run_bench(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher::new(sample_size);
    f(&mut bencher);
    bencher.report(id, throughput);
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, total: Duration::ZERO, iterations: 0 }
    }

    /// Times `routine`, discarding a short warm-up first.  In `--test`
    /// mode the routine runs exactly once, untimed; in `--quick` mode the
    /// warm-up, sample count and batch target are all shrunk.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match mode() {
            Mode::Test => {
                black_box(routine());
                return;
            }
            Mode::Quick | Mode::Full => {}
        }
        let quick = mode() == Mode::Quick;
        let (min_warmup_iters, warmup_budget, batch_target, max_batch) = if quick {
            (1u64, Duration::from_millis(2), Duration::from_millis(1), 1_000u64)
        } else {
            (3u64, Duration::from_millis(20), Duration::from_millis(5), 100_000u64)
        };
        // Warm-up: run until the budget elapses or the minimum iteration
        // count is reached, whichever is later.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < min_warmup_iters || warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 10_000 {
                break;
            }
        }
        // Scale the batch so a sample takes a measurable slice of time.
        let per_iter = warmup_start.elapsed().checked_div(warmup_iters as u32).unwrap_or_default();
        let batch = if per_iter.is_zero() {
            max_batch.min(1_000)
        } else {
            (batch_target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, max_batch as u128)
                as u64
        };
        let samples = if quick { self.sample_size.min(3) } else { self.sample_size };
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total += start.elapsed();
            self.iterations += batch;
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if mode() == Mode::Test {
            println!("test bench {id}: ok");
            return;
        }
        if self.iterations == 0 {
            println!("bench {id}: no iterations recorded");
            return;
        }
        let per_iter = self.total.as_nanos() as f64 / self.iterations as f64;
        let per_sec = match throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                Some(n as f64 * 1e9 / per_iter)
            }
            _ => None,
        };
        let rate = match (throughput, per_sec) {
            (Some(Throughput::Elements(_)), Some(r)) => format!(" ({r:.0} elem/s)"),
            (Some(Throughput::Bytes(_)), Some(r)) => format!(" ({r:.0} B/s)"),
            _ => String::new(),
        };
        println!("bench {id}: {:.1} ns/iter over {} iterations{rate}", per_iter, self.iterations);
        records().lock().expect("bench summary poisoned").push(Record {
            id: id.to_owned(),
            ns_per_iter: per_iter,
            iterations: self.iterations,
            throughput_per_sec: per_sec,
        });
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
/// After every group has run, a JSON summary is written if
/// `CRITERION_SUMMARY` names a file (see [`write_summary`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &v| {
            b.iter(|| v * 2);
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top", |b| b.iter(|| 2 + 2));
    }
}
