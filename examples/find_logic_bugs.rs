//! Run a full testing campaign against all three emulated DBMS and print
//! the findings — the workflow the paper's evaluation section is built on
//! (random state generation, the full oracle registry — error +
//! containment + TLP — reduction, attribution).
//!
//! ```sh
//! cargo run --example find_logic_bugs --release
//! ```

use lancer_core::Campaign;
use lancer_engine::Dialect;

fn main() {
    for dialect in Dialect::ALL {
        let report =
            Campaign::builder(dialect).databases(20).queries(50).threads(2).all_oracles().run();
        println!(
            "\n=== {} === ({} statements, {:.0} stmts/s, {} queries checked, coverage {:.0}%)",
            dialect.name(),
            report.stats.statements_executed,
            report.stats.statements_per_second(),
            report.stats.queries_checked,
            report.stats.coverage_fraction * 100.0,
        );
        if report.found.is_empty() {
            println!("no bugs found — increase databases/queries");
            continue;
        }
        for bug in &report.found {
            println!(
                "- [{} via {}] {:?} ({:?}): {}",
                bug.kind.label(),
                bug.oracle,
                bug.id,
                bug.status,
                bug.message
            );
            for sql in &bug.reduced_sql {
                println!("    {sql};");
            }
        }
        println!(
            "mean reduced test case: {:.2} statements (paper: 3.71)",
            report.mean_reduced_loc()
        );
    }
}
