//! Quickstart: reproduce the paper's motivating example (Listing 1) end to
//! end — build a database, inject the partial-index fault, and let the
//! containment oracle catch it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lancer_core::{rectify, Interpreter, PivotColumn, PivotRow};
use lancer_engine::{BugId, BugProfile, Dialect, Engine};
use lancer_sql::parser::parse_expression;
use lancer_sql::value::Value;

fn main() {
    // The database from Listing 1 of the paper.
    let schema = "
        CREATE TABLE t0(c0);
        CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;
        INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);
    ";

    // 1. A correct engine fetches the NULL pivot row.
    let mut correct = Engine::new(Dialect::Sqlite);
    correct.execute_script(schema).expect("schema must apply");
    let result = correct.execute_sql("SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1").unwrap();
    println!("correct engine fetched {} rows (expected 4)", result.rows.len());
    assert!(result.contains_row(&[Value::Null]));

    // 2. The same query against the engine with the paper's partial-index
    //    fault injected: the NULL row disappears.
    let mut buggy = Engine::with_bugs(
        Dialect::Sqlite,
        BugProfile::with(&[BugId::SqlitePartialIndexImpliesNotNull]),
    );
    buggy.execute_script(schema).expect("schema must apply");
    let result = buggy.execute_sql("SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1").unwrap();
    println!("faulty  engine fetched {} rows (the NULL pivot row is missing)", result.rows.len());
    assert!(!result.contains_row(&[Value::Null]));

    // 3. This is exactly what the PQS oracle automates: pick the pivot row
    //    c0 = NULL, evaluate the random condition `t0.c0 IS NOT 1` with the
    //    AST interpreter, rectify it to TRUE, and check containment.
    let pivot = PivotRow {
        columns: vec![PivotColumn {
            table: "t0".into(),
            meta: buggy.database().table("t0").unwrap().schema.columns[0].clone(),
            value: Value::Null,
        }],
    };
    let interp = Interpreter::new(Dialect::Sqlite);
    let condition = parse_expression("t0.c0 IS NOT 1").unwrap();
    let truth = interp.eval_tribool(&condition, &pivot).unwrap();
    let rectified = rectify(condition, truth);
    println!("rectified condition: {rectified}");
    let check = buggy.execute_sql(&format!("SELECT t0.c0 FROM t0 WHERE {rectified}")).unwrap();
    if check.contains_row(&[Value::Null]) {
        println!("pivot row contained: no bug detected");
    } else {
        println!("pivot row NOT contained: logic bug detected (as in the paper's Listing 1)");
    }
}
