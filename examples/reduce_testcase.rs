//! Demonstrate automatic test-case reduction (§4.1): start from a long
//! statement log that exposes the skip-scan/DISTINCT fault (Listing 6
//! family) and shrink it to the handful of statements the paper would put in
//! a bug report — first with plain statement-level delta debugging, then
//! with the full hierarchical reducer, whose expression pass also strips
//! the query's redundant predicate.
//!
//! ```sh
//! cargo run --example reduce_testcase
//! ```

use lancer_core::{
    reduce_hierarchical, reduce_statements, runner::reproduces, DifferentialJudge, ReduceOptions,
    ReplayCache, ReproSpec,
};
use lancer_engine::{BugId, BugProfile, Dialect};
use lancer_sql::parse_script;
use lancer_sql::value::Value;

fn main() {
    // A deliberately noisy reproduction script: only a few statements are
    // actually needed to trigger the fault, and the trigger query itself
    // carries a WHERE clause that has nothing to do with it.
    let script = "
        CREATE TABLE t1 (c1, c2, c3, c4, PRIMARY KEY (c4, c3));
        CREATE TABLE noise0(c0 INT);
        INSERT INTO noise0(c0) VALUES (1), (2), (3);
        CREATE INDEX noise_idx ON noise0(c0);
        INSERT INTO t1(c3, c4) VALUES (0, 1), (1, 2), (0, 3);
        UPDATE noise0 SET c0 = 9;
        ANALYZE t1;
        DELETE FROM noise0 WHERE c0 = 9;
        SELECT DISTINCT c3, c4 FROM t1 WHERE c3 < 10 AND c4 IS NOT NULL;
    ";
    let statements = parse_script(script).expect("script parses");
    let profile = BugProfile::with(&[BugId::SqliteSkipScanDistinct]);
    // The pivot row (c3, c4) = (0, 3) must appear in the DISTINCT result; the
    // skip-scan fault dedupes on the first column only and drops it.
    let expected = vec![Value::Integer(0), Value::Integer(3)];

    // The reduction criterion is differential, exactly as in the campaign
    // runner: the candidate must miss the pivot row with the fault enabled
    // AND fetch it on the fault-free engine (otherwise the reducer could
    // simply drop the INSERT that creates the pivot row).
    let repro = ReproSpec::MissingRow(expected);
    let fails = |candidate: &[lancer_sql::Statement]| {
        reproduces(Dialect::Sqlite, &profile, candidate, &repro)
            && !reproduces(Dialect::Sqlite, &BugProfile::none(), candidate, &repro)
    };
    assert!(fails(&statements), "the full script must reproduce the fault");

    let reduced = reduce_statements(&statements, &fails);
    println!("original test case: {} statements", statements.len());
    println!("statement-level ddmin: {} statements", reduced.len());
    assert!(reduced.len() < statements.len());

    // The hierarchical reducer runs the same ddmin through the replay
    // cache and then shrinks the surviving statements in place; its
    // expression pass discovers that the WHERE clause is irrelevant to
    // the fault and drops it, re-verifying the repro after every rewrite.
    let mut cache = ReplayCache::new(Dialect::Sqlite);
    let reduction = {
        let judge = DifferentialJudge::new(&mut cache, "containment", &profile, &repro);
        reduce_hierarchical(&statements, &ReduceOptions::default(), &judge)
    };
    println!(
        "hierarchical: {} statements, expression nodes {} -> {} ({} candidates judged)",
        reduction.statements.len(),
        reduction.stats.expr_nodes_after_statements,
        reduction.stats.expr_nodes_after,
        reduction.stats.candidates_evaluated(),
    );
    println!("\n-- reduced reproduction (what the bug report would contain) --");
    for stmt in &reduction.statements {
        println!("{stmt};");
    }
    println!("-- expected: row (0, 3) is fetched; actual: it is missing --");
    assert!(reduction.statements.len() <= reduced.len());
    assert!(
        reduction.stats.expr_nodes_after < reduction.stats.expr_nodes_after_statements,
        "the expression pass must strip the redundant predicate"
    );
    assert!(fails(&reduction.statements), "the shrunk script still reproduces the fault");
}
