//! Compare PQS against the two baselines the paper discusses: RAGS-style
//! differential testing (limited to the common SQL core, §1/§6) and a
//! SQLsmith-style crash fuzzer (no logic-bug oracle).
//!
//! ```sh
//! cargo run --example differential_vs_pqs --release
//! ```

use lancer_core::baseline::{run_differential, run_fuzzer};
use lancer_core::{Campaign, DetectionKind};
use lancer_engine::Dialect;

fn main() {
    let databases = 12;
    let queries = 40;

    // PQS.
    let mut pqs_logic = 0usize;
    let mut pqs_total = 0usize;
    for dialect in Dialect::ALL {
        let report = Campaign::builder(dialect).databases(databases).queries(queries).run();
        pqs_logic += report
            .found
            .iter()
            .filter(|f| f.kind == DetectionKind::Containment && f.status.is_true_bug())
            .count();
        pqs_total += report.found.iter().filter(|f| f.status.is_true_bug()).count();
    }
    println!("PQS:                  {pqs_logic} logic bugs, {pqs_total} true bugs in total");

    // Differential testing.
    let diff = run_differential(0xD1FF, databases, queries);
    println!(
        "differential testing: {} mismatches; only {:.0}% of generated statements are in the \
         common core shared by the three dialects",
        diff.mismatches,
        diff.applicability() * 100.0
    );

    // Crash fuzzer.
    let mut crashes = 0u64;
    let mut internal = 0u64;
    for dialect in Dialect::ALL {
        let r = run_fuzzer(dialect, 0xF422, databases, queries);
        crashes += r.crashes;
        internal += r.internal_errors;
    }
    println!(
        "crash fuzzer:         {crashes} crashes + {internal} corruption/internal errors, 0 logic bugs \
         (it has no containment oracle)"
    );
}
