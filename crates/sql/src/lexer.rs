//! A hand-written SQL tokenizer.
//!
//! The lexer is dialect-agnostic: it produces a superset token stream (e.g.
//! it accepts MySQL's `<=>` operator and SQLite blob literals `x'..'`); the
//! parser and the engine decide which constructs a given dialect accepts.

use crate::error::{ParseError, ParseResult};

/// A single token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A bare identifier or keyword (keywords are not distinguished here).
    Ident(String),
    /// A double-quoted identifier/string (SQLite treats these ambiguously;
    /// see Listing 8 of the paper).
    QuotedIdent(String),
    /// An integer literal.
    Integer(i64),
    /// A real literal.
    Real(f64),
    /// A single-quoted string literal.
    String(String),
    /// A blob literal `x'AB01'`.
    Blob(Vec<u8>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=` or `==`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<=>` (MySQL null-safe equality)
    NullSafeEq,
    /// `||`
    Concat,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `<<`
    ShiftLeft,
    /// `>>`
    ShiftRight,
    /// `~`
    Tilde,
}

impl Token {
    /// Returns the identifier text if this token is a (possibly quoted)
    /// identifier.
    #[must_use]
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) | Token::QuotedIdent(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this token is the given keyword (case-insensitive).
    #[must_use]
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL string.
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated strings, malformed blob literals
/// or unexpected characters.
pub fn tokenize(input: &str) -> ParseResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment.
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ParseError::at("unterminated block comment", start));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            b'.' if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() => {
                tokens.push(Token::Dot);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            b'/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            b'%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            b'~' => {
                tokens.push(Token::Tilde);
                i += 1;
            }
            b'&' => {
                tokens.push(Token::BitAnd);
                i += 1;
            }
            b'|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    tokens.push(Token::Concat);
                    i += 2;
                } else {
                    tokens.push(Token::BitOr);
                    i += 1;
                }
            }
            b'=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                } else {
                    i += 1;
                }
                tokens.push(Token::Eq);
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(ParseError::at("unexpected '!'", i));
                }
            }
            b'<' => {
                if i + 2 < bytes.len() && bytes[i + 1] == b'=' && bytes[i + 2] == b'>' {
                    tokens.push(Token::NullSafeEq);
                    i += 3;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'<' {
                    tokens.push(Token::ShiftLeft);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::ShiftRight);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' => {
                let (s, next) = lex_single_quoted(input, i)?;
                tokens.push(Token::String(s));
                i = next;
            }
            b'"' => {
                let (s, next) = lex_double_quoted(input, i)?;
                tokens.push(Token::QuotedIdent(s));
                i = next;
            }
            b'x' | b'X' if i + 1 < bytes.len() && bytes[i + 1] == b'\'' => {
                let (s, next) = lex_single_quoted(input, i + 1)?;
                let mut blob = Vec::new();
                let hex = s.as_bytes();
                if hex.len() % 2 != 0 {
                    return Err(ParseError::at("odd number of hex digits in blob literal", i));
                }
                for pair in hex.chunks(2) {
                    let hi = hex_digit(pair[0])
                        .ok_or_else(|| ParseError::at("invalid hex digit in blob literal", i))?;
                    let lo = hex_digit(pair[1])
                        .ok_or_else(|| ParseError::at("invalid hex digit in blob literal", i))?;
                    blob.push(hi * 16 + lo);
                }
                tokens.push(Token::Blob(blob));
                i = next;
            }
            c if c.is_ascii_digit() || c == b'.' => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(ParseError::at(format!("unexpected character {:?}", other as char), i));
            }
        }
    }
    Ok(tokens)
}

fn hex_digit(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

fn lex_single_quoted(input: &str, start: usize) -> ParseResult<(String, usize)> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[start], b'\'');
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        if i >= bytes.len() {
            return Err(ParseError::at("unterminated string literal", start));
        }
        if bytes[i] == b'\'' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Strings are treated as raw bytes of valid UTF-8 input.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
}

fn lex_double_quoted(input: &str, start: usize) -> ParseResult<(String, usize)> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[start], b'"');
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        if i >= bytes.len() {
            return Err(ParseError::at("unterminated quoted identifier", start));
        }
        if bytes[i] == b'"' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                out.push('"');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    if first_byte < 0x80 {
        1
    } else if first_byte >> 5 == 0b110 {
        2
    } else if first_byte >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

fn lex_number(input: &str, start: usize) -> ParseResult<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut is_real = false;
    // Hexadecimal integer literal 0x...
    if bytes[i] == b'0'
        && i + 1 < bytes.len()
        && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X')
        && i + 2 < bytes.len()
        && bytes[i + 2].is_ascii_hexdigit()
    {
        i += 2;
        let hstart = i;
        while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
            i += 1;
        }
        let v = i64::from_str_radix(&input[hstart..i], 16)
            .map_err(|_| ParseError::at("hex literal out of range", start))?;
        return Ok((Token::Integer(v), i));
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        is_real = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_real = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    if is_real {
        let v: f64 = text.parse().map_err(|_| ParseError::at("invalid real literal", start))?;
        Ok((Token::Real(v), i))
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok((Token::Integer(v), i)),
            // Integer literals that overflow i64 become reals, as in SQLite.
            Err(_) => {
                let v: f64 =
                    text.parse().map_err(|_| ParseError::at("invalid numeric literal", start))?;
                Ok((Token::Real(v), i))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_statement() {
        let toks = tokenize("SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1;").unwrap();
        assert!(toks.contains(&Token::Ident("SELECT".into())));
        assert!(toks.contains(&Token::Dot));
        assert!(toks.contains(&Token::Integer(1)));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn tokenizes_strings_and_escapes() {
        let toks = tokenize("'a''b' \"C3\"").unwrap();
        assert_eq!(toks[0], Token::String("a'b".into()));
        assert_eq!(toks[1], Token::QuotedIdent("C3".into()));
    }

    #[test]
    fn tokenizes_blob_literals() {
        let toks = tokenize("x'AB01'").unwrap();
        assert_eq!(toks[0], Token::Blob(vec![0xAB, 0x01]));
        assert!(tokenize("x'AB0'").is_err());
        assert!(tokenize("x'ZZ'").is_err());
    }

    #[test]
    fn tokenizes_numbers() {
        let toks = tokenize("42 -3.5 1e3 0x1F 2851427734582196970").unwrap();
        assert_eq!(toks[0], Token::Integer(42));
        assert_eq!(toks[1], Token::Minus);
        assert_eq!(toks[2], Token::Real(3.5));
        assert_eq!(toks[3], Token::Real(1000.0));
        assert_eq!(toks[4], Token::Integer(31));
        assert_eq!(toks[5], Token::Integer(2851427734582196970));
    }

    #[test]
    fn tokenizes_operators() {
        let toks = tokenize("<=> <= >= != <> || << >> = ==").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::NullSafeEq,
                Token::Le,
                Token::Ge,
                Token::NotEq,
                Token::NotEq,
                Token::Concat,
                Token::ShiftLeft,
                Token::ShiftRight,
                Token::Eq,
                Token::Eq,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let toks = tokenize("SELECT 1; -- trailing comment\n/* block */ SELECT 2;").unwrap();
        let idents = toks.iter().filter(|t| matches!(t, Token::Ident(_))).count();
        assert_eq!(idents, 2);
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("'unterminated").is_err());
    }
}
