//! Error types for lexing and parsing.

use std::fmt;

/// An error produced while lexing or parsing SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where the problem was detected, if known.
    pub offset: Option<usize>,
}

impl ParseError {
    /// Creates a new error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        ParseError { message: message.into(), offset: None }
    }

    /// Creates a new error with a byte offset.
    #[must_use]
    pub fn at(message: impl Into<String>, offset: usize) -> Self {
        ParseError { message: message.into(), offset: Some(offset) }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "parse error at byte {o}: {}", self.message),
            None => write!(f, "parse error: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parsing operations.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_when_present() {
        let e = ParseError::at("unexpected token", 7);
        assert!(e.to_string().contains("byte 7"));
        let e = ParseError::new("oops");
        assert!(!e.to_string().contains("byte"));
    }
}
