//! Text collating sequences.
//!
//! The paper's SQLite case study leans heavily on non-default collations
//! (`NOCASE`, `RTRIM`) — e.g. Listing 4 (a `COLLATE NOCASE` index on a
//! `WITHOUT ROWID` table) and Listing 5 (an 11-year-old `RTRIM` bug).  The
//! engine, the index layer and the PQS interpreter all share this type.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A text collating sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Collation {
    /// Byte-wise comparison (SQLite `BINARY`).
    #[default]
    Binary,
    /// ASCII case-insensitive comparison (SQLite `NOCASE`).
    NoCase,
    /// Like `Binary` but trailing spaces are ignored (SQLite `RTRIM`).
    Rtrim,
}

impl Collation {
    /// All collations, for random selection by generators.
    pub const ALL: [Collation; 3] = [Collation::Binary, Collation::NoCase, Collation::Rtrim];

    /// Compares two strings under this collation.
    #[must_use]
    pub fn compare(self, a: &str, b: &str) -> Ordering {
        match self {
            Collation::Binary => a.as_bytes().cmp(b.as_bytes()),
            Collation::NoCase => {
                let la = a.to_ascii_lowercase();
                let lb = b.to_ascii_lowercase();
                la.as_bytes().cmp(lb.as_bytes())
            }
            Collation::Rtrim => {
                let ta = a.trim_end_matches(' ');
                let tb = b.trim_end_matches(' ');
                ta.as_bytes().cmp(tb.as_bytes())
            }
        }
    }

    /// Returns `true` if the two strings are equal under this collation.
    #[must_use]
    pub fn equal(self, a: &str, b: &str) -> bool {
        self.compare(a, b) == Ordering::Equal
    }

    /// Canonical key for a string under this collation: two strings are equal
    /// under the collation iff their keys are byte-equal.  Used for hash-based
    /// uniqueness checks in indexes.
    #[must_use]
    pub fn key(self, s: &str) -> String {
        match self {
            Collation::Binary => s.to_owned(),
            Collation::NoCase => s.to_ascii_lowercase(),
            Collation::Rtrim => s.trim_end_matches(' ').to_owned(),
        }
    }

    /// Parses a collation name (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<Collation> {
        match name.to_ascii_uppercase().as_str() {
            "BINARY" => Some(Collation::Binary),
            "NOCASE" => Some(Collation::NoCase),
            "RTRIM" => Some(Collation::Rtrim),
            _ => None,
        }
    }
}

impl fmt::Display for Collation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Collation::Binary => "BINARY",
            Collation::NoCase => "NOCASE",
            Collation::Rtrim => "RTRIM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_is_byte_ordering() {
        assert_eq!(Collation::Binary.compare("A", "a"), Ordering::Less);
        assert!(!Collation::Binary.equal("A", "a"));
    }

    #[test]
    fn nocase_ignores_ascii_case() {
        assert!(Collation::NoCase.equal("Abc", "aBC"));
        assert_eq!(Collation::NoCase.compare("a", "B"), Ordering::Less);
    }

    #[test]
    fn rtrim_ignores_trailing_spaces_only() {
        assert!(Collation::Rtrim.equal("x  ", "x"));
        assert!(!Collation::Rtrim.equal("  x", "x"));
        assert!(Collation::Rtrim.equal("", "   "));
    }

    #[test]
    fn keys_match_equality() {
        for c in Collation::ALL {
            for (a, b) in [("a", "A"), ("x ", "x"), ("q", "q"), ("a", "b")] {
                assert_eq!(c.equal(a, b), c.key(a) == c.key(b), "collation {c} on {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn parse_round_trip() {
        for c in Collation::ALL {
            assert_eq!(Collation::parse(&c.to_string()), Some(c));
            assert_eq!(Collation::parse(&c.to_string().to_lowercase()), Some(c));
        }
        assert_eq!(Collation::parse("bogus"), None);
    }
}
