//! Expression parsing (precedence climbing).

use crate::ast::expr::{AggFunc, BinaryOp, ColumnRef, Expr, ScalarFunc, TypeName, UnaryOp};
use crate::collation::Collation;
use crate::error::{ParseError, ParseResult};
use crate::lexer::Token;
use crate::parser::Parser;
use crate::value::Value;

impl Parser {
    /// Parses a full expression.
    pub(crate) fn parse_expr(&mut self) -> ParseResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> ParseResult<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            Ok(inner.not())
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_bit()?;
        loop {
            let op = match self.peek() {
                Some(Token::Eq) => Some(BinaryOp::Eq),
                Some(Token::NotEq) => Some(BinaryOp::Ne),
                Some(Token::Lt) => Some(BinaryOp::Lt),
                Some(Token::Le) => Some(BinaryOp::Le),
                Some(Token::Gt) => Some(BinaryOp::Gt),
                Some(Token::Ge) => Some(BinaryOp::Ge),
                Some(Token::NullSafeEq) => Some(BinaryOp::NullSafeEq),
                _ => None,
            };
            if let Some(op) = op {
                self.advance();
                let right = self.parse_bit()?;
                left = Expr::binary(op, left, right);
                continue;
            }
            // Keyword-based comparison forms.
            if self.peek_keyword("IS") {
                self.advance();
                let negated = self.eat_keyword("NOT");
                if self.eat_keyword("NULL") {
                    left = Expr::IsNull { negated, expr: Box::new(left) };
                } else {
                    let right = self.parse_bit()?;
                    let op = if negated { BinaryOp::IsNot } else { BinaryOp::Is };
                    left = Expr::binary(op, left, right);
                }
                continue;
            }
            if self.peek_keyword("ISNULL") {
                self.advance();
                left = Expr::IsNull { negated: false, expr: Box::new(left) };
                continue;
            }
            if self.peek_keyword("NOTNULL") {
                self.advance();
                left = Expr::IsNull { negated: true, expr: Box::new(left) };
                continue;
            }
            // SQLite also accepts the two-word postfix form `expr NOT NULL`.
            if self.peek_keyword("NOT")
                && matches!(self.peek_nth(1), Some(t) if t.is_keyword("NULL"))
            {
                self.advance();
                self.advance();
                left = Expr::IsNull { negated: true, expr: Box::new(left) };
                continue;
            }
            let negated = if self.peek_keyword("NOT")
                && matches!(self.peek_nth(1), Some(t) if t.is_keyword("LIKE") || t.is_keyword("BETWEEN") || t.is_keyword("IN"))
            {
                self.advance();
                true
            } else {
                false
            };
            if self.eat_keyword("LIKE") {
                let pattern = self.parse_bit()?;
                left = Expr::Like { negated, expr: Box::new(left), pattern: Box::new(pattern) };
                continue;
            }
            if self.eat_keyword("BETWEEN") {
                let low = self.parse_bit()?;
                self.expect_keyword("AND")?;
                let high = self.parse_bit()?;
                left = Expr::Between {
                    negated,
                    expr: Box::new(left),
                    low: Box::new(low),
                    high: Box::new(high),
                };
                continue;
            }
            if self.eat_keyword("IN") {
                self.expect(&Token::LParen)?;
                let mut list = Vec::new();
                if !matches!(self.peek(), Some(Token::RParen)) {
                    loop {
                        list.push(self.parse_expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                left = Expr::InList { negated, expr: Box::new(left), list };
                continue;
            }
            if negated {
                return Err(ParseError::new("expected LIKE, BETWEEN or IN after NOT"));
            }
            return Ok(left);
        }
    }

    fn parse_bit(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Some(Token::ShiftLeft) => BinaryOp::ShiftLeft,
                Some(Token::ShiftRight) => BinaryOp::ShiftRight,
                Some(Token::BitAnd) => BinaryOp::BitAnd,
                Some(Token::BitOr) => BinaryOp::BitOr,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.parse_term()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_term(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.parse_factor()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_factor(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_concat()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.parse_concat()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_concat(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_unary()?;
        while matches!(self.peek(), Some(Token::Concat)) {
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(BinaryOp::Concat, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> ParseResult<Expr> {
        match self.peek() {
            Some(Token::Minus) => {
                self.advance();
                let inner = self.parse_unary()?;
                // Fold negative numeric literals so that `-3` round-trips as a literal.
                match inner {
                    Expr::Literal(Value::Integer(i)) if i != i64::MIN => {
                        Ok(Expr::Literal(Value::Integer(-i)))
                    }
                    Expr::Literal(Value::Real(r)) => Ok(Expr::Literal(Value::Real(-r))),
                    other => Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) }),
                }
            }
            Some(Token::Plus) => {
                self.advance();
                let inner = self.parse_unary()?;
                Ok(Expr::Unary { op: UnaryOp::Plus, expr: Box::new(inner) })
            }
            Some(Token::Tilde) => {
                self.advance();
                let inner = self.parse_unary()?;
                Ok(Expr::Unary { op: UnaryOp::BitNot, expr: Box::new(inner) })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> ParseResult<Expr> {
        let mut e = self.parse_primary()?;
        while self.peek_keyword("COLLATE") {
            self.advance();
            let name = self.expect_ident()?;
            let collation = Collation::parse(&name)
                .ok_or_else(|| ParseError::new(format!("unknown collation {name}")))?;
            e = Expr::Collate { expr: Box::new(e), collation };
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> ParseResult<Expr> {
        let tok = self
            .peek()
            .cloned()
            .ok_or_else(|| ParseError::new("unexpected end of input in expression"))?;
        match tok {
            Token::Integer(i) => {
                self.advance();
                Ok(Expr::Literal(Value::Integer(i)))
            }
            Token::Real(r) => {
                self.advance();
                Ok(Expr::Literal(Value::Real(r)))
            }
            Token::String(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Text(s)))
            }
            Token::Blob(b) => {
                self.advance();
                Ok(Expr::Literal(Value::Blob(b)))
            }
            Token::QuotedIdent(s) => {
                self.advance();
                // SQLite's ambiguous double-quote handling: treat as a column
                // reference; the engine resolves it to a string if no such
                // column exists (Listing 8 of the paper).
                Ok(Expr::Column(ColumnRef::unqualified(s)))
            }
            Token::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(word) => {
                let upper = word.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => {
                        self.advance();
                        Ok(Expr::null())
                    }
                    "TRUE" => {
                        self.advance();
                        Ok(Expr::Literal(Value::Boolean(true)))
                    }
                    "FALSE" => {
                        self.advance();
                        Ok(Expr::Literal(Value::Boolean(false)))
                    }
                    "CAST" => {
                        self.advance();
                        self.expect(&Token::LParen)?;
                        let inner = self.parse_expr()?;
                        self.expect_keyword("AS")?;
                        let type_name = self.parse_type_name()?;
                        self.expect(&Token::RParen)?;
                        Ok(Expr::Cast { expr: Box::new(inner), type_name })
                    }
                    "CASE" => {
                        self.advance();
                        let operand = if self.peek_keyword("WHEN") {
                            None
                        } else {
                            Some(Box::new(self.parse_expr()?))
                        };
                        let mut branches = Vec::new();
                        while self.eat_keyword("WHEN") {
                            let when = self.parse_expr()?;
                            self.expect_keyword("THEN")?;
                            let then = self.parse_expr()?;
                            branches.push((when, then));
                        }
                        let else_expr = if self.eat_keyword("ELSE") {
                            Some(Box::new(self.parse_expr()?))
                        } else {
                            None
                        };
                        self.expect_keyword("END")?;
                        Ok(Expr::Case { operand, branches, else_expr })
                    }
                    _ => {
                        // Function call, qualified column, or bare column.
                        if matches!(self.peek_nth(1), Some(Token::LParen)) {
                            self.advance();
                            self.advance();
                            self.parse_call(&word)
                        } else if matches!(self.peek_nth(1), Some(Token::Dot)) {
                            self.advance();
                            self.advance();
                            let column = self.expect_ident()?;
                            Ok(Expr::Column(ColumnRef::qualified(word, column)))
                        } else {
                            self.advance();
                            Ok(Expr::Column(ColumnRef::unqualified(word)))
                        }
                    }
                }
            }
            other => Err(ParseError::new(format!("unexpected token {other:?} in expression"))),
        }
    }

    /// Parses a function call body after `name(` has been consumed.
    fn parse_call(&mut self, name: &str) -> ParseResult<Expr> {
        // COUNT(*) and friends.
        if let Some(agg) = AggFunc::parse(name) {
            if self.eat(&Token::Star) {
                self.expect(&Token::RParen)?;
                return Ok(Expr::Aggregate { func: agg, arg: None, distinct: false });
            }
            let distinct = self.eat_keyword("DISTINCT");
            let arg = self.parse_expr()?;
            if distinct || !self.eat(&Token::Comma) {
                self.expect(&Token::RParen)?;
                return Ok(Expr::Aggregate { func: agg, arg: Some(Box::new(arg)), distinct });
            }
            // Multi-argument MIN/MAX are scalar functions in SQLite.
            let func = ScalarFunc::parse(name).ok_or_else(|| {
                ParseError::new(format!("{name} does not accept multiple arguments"))
            })?;
            let mut args = vec![arg];
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function { func, args });
        }
        let func = ScalarFunc::parse(name)
            .ok_or_else(|| ParseError::new(format!("unknown function {name}")))?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Some(Token::RParen)) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        let (lo, hi) = func.arity();
        if args.len() < lo || args.len() > hi {
            return Err(ParseError::new(format!(
                "wrong number of arguments to {name}: got {}, expected {lo}..={hi}",
                args.len()
            )));
        }
        Ok(Expr::Function { func, args })
    }

    /// Parses a type name (one or more identifiers).
    pub(crate) fn parse_type_name(&mut self) -> ParseResult<TypeName> {
        let first = self.expect_ident()?.to_ascii_uppercase();
        let t = match first.as_str() {
            "INT" | "INTEGER" | "BIGINT" => {
                if self.peek_keyword("UNSIGNED") {
                    self.advance();
                    TypeName::Unsigned
                } else {
                    TypeName::Integer
                }
            }
            "TINYINT" => TypeName::TinyInt,
            "UNSIGNED" => TypeName::Unsigned,
            "REAL" | "DOUBLE" | "FLOAT" => TypeName::Real,
            "TEXT" | "VARCHAR" | "CHAR" | "CLOB" => TypeName::Text,
            "BLOB" | "BYTEA" => TypeName::Blob,
            "BOOLEAN" | "BOOL" => TypeName::Boolean,
            "SERIAL" => TypeName::Serial,
            other => return Err(ParseError::new(format!("unknown type name {other}"))),
        };
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    #[test]
    fn parses_is_not_operator_from_listing1() {
        let e = parse_expression("t0.c0 IS NOT 1").unwrap();
        assert_eq!(e, Expr::binary(BinaryOp::IsNot, Expr::qcol("t0", "c0"), Expr::int(1)));
    }

    #[test]
    fn parses_is_null_variants() {
        assert_eq!(parse_expression("c0 IS NULL").unwrap(), Expr::col("c0").is_null());
        assert_eq!(
            parse_expression("c0 IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, expr: Box::new(Expr::col("c0")) }
        );
        assert_eq!(parse_expression("c0 ISNULL").unwrap(), Expr::col("c0").is_null());
        assert_eq!(
            parse_expression("c0 NOTNULL").unwrap(),
            Expr::IsNull { negated: true, expr: Box::new(Expr::col("c0")) }
        );
    }

    #[test]
    fn parses_precedence() {
        let e = parse_expression("1 + 2 * 3 = 7 AND NOT c0").unwrap();
        assert_eq!(e.to_string(), "(((1 + (2 * 3)) = 7) AND (NOT c0))");
    }

    #[test]
    fn parses_like_between_in() {
        let e = parse_expression("c0 NOT LIKE './'").unwrap();
        assert!(matches!(e, Expr::Like { negated: true, .. }));
        let e = parse_expression("c0 BETWEEN 1 AND 5").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expression("c0 NOT IN (1, 2, NULL)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, ref list, .. } if list.len() == 3));
    }

    #[test]
    fn parses_case_and_cast() {
        let e = parse_expression("CASE WHEN c0 > 0 THEN 'pos' ELSE 'neg' END").unwrap();
        assert!(matches!(e, Expr::Case { operand: None, ref branches, .. } if branches.len() == 1));
        let e = parse_expression("CAST(t1.c0 AS UNSIGNED)").unwrap();
        assert!(matches!(e, Expr::Cast { type_name: TypeName::Unsigned, .. }));
    }

    #[test]
    fn parses_functions_and_aggregates() {
        let e = parse_expression("IFNULL('u', t0.c0)").unwrap();
        assert!(
            matches!(e, Expr::Function { func: ScalarFunc::IfNull, ref args } if args.len() == 2)
        );
        let e = parse_expression("COUNT(*)").unwrap();
        assert!(matches!(e, Expr::Aggregate { func: AggFunc::Count, arg: None, .. }));
        let e = parse_expression("SUM(DISTINCT c0)").unwrap();
        assert!(matches!(e, Expr::Aggregate { func: AggFunc::Sum, distinct: true, .. }));
        let e = parse_expression("MIN(1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::Function { func: ScalarFunc::Min, ref args } if args.len() == 3));
        assert!(parse_expression("NO_SUCH_FUNC(1)").is_err());
        assert!(parse_expression("ABS(1, 2)").is_err());
    }

    #[test]
    fn parses_collate_and_null_safe_eq() {
        let e = parse_expression("c0 COLLATE NOCASE").unwrap();
        assert!(matches!(e, Expr::Collate { collation: Collation::NoCase, .. }));
        let e = parse_expression("NOT(t0.c0 <=> 2035382037)").unwrap();
        assert_eq!(e.to_string(), "(NOT (t0.c0 <=> 2035382037))");
    }

    #[test]
    fn folds_negative_literals() {
        assert_eq!(parse_expression("-5").unwrap(), Expr::int(-5));
        assert_eq!(parse_expression("-2.5").unwrap(), Expr::Literal(Value::Real(-2.5)));
    }

    #[test]
    fn parses_double_quoted_as_column_ref() {
        let e = parse_expression("\"C3\"").unwrap();
        assert_eq!(e, Expr::col("C3"));
    }
}
