//! A recursive-descent SQL parser.
//!
//! The parser accepts the union of the three dialect grammars; dialect
//! restrictions (e.g. "PostgreSQL has no `IS NOT <scalar>`") are enforced by
//! the engine, not the parser, mirroring the way SQLancer constructs ASTs
//! first and lets the DBMS reject them.

mod expr;
mod stmt;

use crate::ast::stmt::Statement;
use crate::ast::Expr;
use crate::error::{ParseError, ParseResult};
use crate::lexer::{tokenize, Token};

/// The parser state over a token stream.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over a SQL string.
    ///
    /// # Errors
    ///
    /// Returns an error if tokenization fails.
    pub fn new(input: &str) -> ParseResult<Self> {
        Ok(Parser { tokens: tokenize(input)?, pos: 0 })
    }

    pub(crate) fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    pub(crate) fn peek_nth(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n)
    }

    pub(crate) fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    pub(crate) fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, token: &Token) -> ParseResult<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(ParseError::new(format!("expected {token:?}, found {:?}", self.peek())))
        }
    }

    pub(crate) fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(t) if t.is_keyword(kw))
    }

    pub(crate) fn peek_keyword_nth(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_nth(n), Some(t) if t.is_keyword(kw))
    }

    pub(crate) fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_keyword(&mut self, kw: &str) -> ParseResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    pub(crate) fn expect_ident(&mut self) -> ParseResult<String> {
        match self.advance() {
            Some(Token::Ident(s)) | Some(Token::QuotedIdent(s)) => Ok(s.clone()),
            other => Err(ParseError::new(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Returns `true` if all tokens have been consumed.
    #[must_use]
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }
}

/// Parses a single SQL statement (a trailing semicolon is allowed).
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a single valid statement.
pub fn parse_statement(input: &str) -> ParseResult<Statement> {
    let mut p = Parser::new(input)?;
    let stmt = p.parse_statement()?;
    p.eat(&Token::Semicolon);
    if !p.is_at_end() {
        return Err(ParseError::new("trailing input after statement"));
    }
    Ok(stmt)
}

/// Parses a semicolon-separated SQL script into statements.
///
/// # Errors
///
/// Returns a [`ParseError`] if any statement fails to parse.
pub fn parse_script(input: &str) -> ParseResult<Vec<Statement>> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semicolon) {}
        if p.is_at_end() {
            break;
        }
        out.push(p.parse_statement()?);
    }
    Ok(out)
}

/// Parses a single SQL expression.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a single valid expression.
pub fn parse_expression(input: &str) -> ParseResult<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.parse_expr()?;
    if !p.is_at_end() {
        return Err(ParseError::new("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_parsing_handles_empty_and_multiple() {
        assert!(parse_script("").unwrap().is_empty());
        assert!(parse_script(";;;").unwrap().is_empty());
        let stmts = parse_script("CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1);").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn single_statement_rejects_trailing_garbage() {
        assert!(parse_statement("SELECT 1 SELECT 2").is_err());
        assert!(parse_statement("SELECT 1;").is_ok());
    }
}
