//! Statement parsing.

use crate::ast::expr::Expr;
use crate::ast::stmt::{
    AlterTable, ColumnConstraint, ColumnDef, CompoundOp, CreateIndex, CreateTable, Delete,
    IndexedColumn, Insert, Join, JoinKind, OnConflict, OrderingTerm, Query, Select, SelectItem,
    SetScope, Statement, TableConstraint, TableEngine, Update,
};
use crate::collation::Collation;
use crate::error::{ParseError, ParseResult};
use crate::lexer::Token;
use crate::parser::Parser;
use crate::value::Value;

impl Parser {
    /// Parses a single statement.
    pub(crate) fn parse_statement(&mut self) -> ParseResult<Statement> {
        let first = self.peek().cloned().ok_or_else(|| ParseError::new("empty statement"))?;
        let word = match &first {
            Token::Ident(w) => w.to_ascii_uppercase(),
            other => return Err(ParseError::new(format!("unexpected token {other:?}"))),
        };
        match word.as_str() {
            "CREATE" => self.parse_create(),
            "DROP" => self.parse_drop(),
            "ALTER" => self.parse_alter(),
            "INSERT" => self.parse_insert(),
            "UPDATE" => self.parse_update(),
            "DELETE" => self.parse_delete(),
            "SELECT" => Ok(Statement::Select(self.parse_query()?)),
            "EXPLAIN" => {
                self.advance();
                Ok(Statement::Explain(self.parse_query()?))
            }
            "VACUUM" => {
                self.advance();
                let full = self.eat_keyword("FULL");
                Ok(Statement::Vacuum { full })
            }
            "REINDEX" => {
                self.advance();
                let target = if self.is_at_end() || matches!(self.peek(), Some(Token::Semicolon)) {
                    None
                } else {
                    Some(self.expect_ident()?)
                };
                Ok(Statement::Reindex { target })
            }
            "ANALYZE" => {
                self.advance();
                let target = if self.is_at_end() || matches!(self.peek(), Some(Token::Semicolon)) {
                    None
                } else {
                    Some(self.expect_ident()?)
                };
                Ok(Statement::Analyze { target })
            }
            "CHECK" => {
                self.advance();
                self.expect_keyword("TABLE")?;
                let table = self.expect_ident()?;
                let for_upgrade = if self.eat_keyword("FOR") {
                    self.expect_keyword("UPGRADE")?;
                    true
                } else {
                    false
                };
                Ok(Statement::CheckTable { table, for_upgrade })
            }
            "REPAIR" => {
                self.advance();
                self.expect_keyword("TABLE")?;
                let table = self.expect_ident()?;
                Ok(Statement::RepairTable { table })
            }
            "PRAGMA" => {
                self.advance();
                let name = self.expect_ident()?;
                let value =
                    if self.eat(&Token::Eq) { Some(self.parse_option_value()?) } else { None };
                Ok(Statement::Pragma { name, value })
            }
            "SET" => {
                self.advance();
                let scope = if self.eat_keyword("GLOBAL") {
                    SetScope::Global
                } else {
                    self.eat_keyword("SESSION");
                    SetScope::Session
                };
                let name = self.expect_ident()?;
                self.expect(&Token::Eq)?;
                let value = self.parse_option_value()?;
                Ok(Statement::Set { scope, name, value })
            }
            "DISCARD" => {
                self.advance();
                self.eat_keyword("ALL");
                Ok(Statement::Discard)
            }
            "BEGIN" => {
                self.advance();
                self.eat_keyword("TRANSACTION");
                Ok(Statement::Begin)
            }
            "COMMIT" => {
                self.advance();
                Ok(Statement::Commit)
            }
            "ROLLBACK" => {
                self.advance();
                Ok(Statement::Rollback)
            }
            "SESSION" => {
                self.advance();
                match self.advance().cloned() {
                    Some(Token::Integer(i)) if (0..=i64::from(u32::MAX)).contains(&i) => {
                        Ok(Statement::Session { id: i as u32 })
                    }
                    other => Err(ParseError::new(format!("expected session id, found {other:?}"))),
                }
            }
            other => Err(ParseError::new(format!("unknown statement keyword {other}"))),
        }
    }

    fn parse_option_value(&mut self) -> ParseResult<Value> {
        match self.advance().cloned() {
            Some(Token::Integer(i)) => Ok(Value::Integer(i)),
            Some(Token::Real(r)) => Ok(Value::Real(r)),
            Some(Token::String(s)) => Ok(Value::Text(s)),
            Some(Token::Minus) => match self.advance().cloned() {
                Some(Token::Integer(i)) => Ok(Value::Integer(-i)),
                Some(Token::Real(r)) => Ok(Value::Real(-r)),
                other => {
                    Err(ParseError::new(format!("expected number after '-', found {other:?}")))
                }
            },
            Some(Token::Ident(w)) => {
                let upper = w.to_ascii_uppercase();
                match upper.as_str() {
                    "TRUE" | "ON" => Ok(Value::Integer(1)),
                    "FALSE" | "OFF" => Ok(Value::Integer(0)),
                    "NULL" => Ok(Value::Null),
                    _ => Ok(Value::Text(w)),
                }
            }
            other => Err(ParseError::new(format!("expected option value, found {other:?}"))),
        }
    }

    fn parse_create(&mut self) -> ParseResult<Statement> {
        self.expect_keyword("CREATE")?;
        if self.eat_keyword("TABLE") {
            return self.parse_create_table();
        }
        let unique = self.eat_keyword("UNIQUE");
        if self.eat_keyword("INDEX") {
            return self.parse_create_index(unique);
        }
        if unique {
            return Err(ParseError::new("expected INDEX after CREATE UNIQUE"));
        }
        if self.eat_keyword("VIEW") {
            let name = self.expect_ident()?;
            self.expect_keyword("AS")?;
            self.expect_keyword("SELECT")?;
            // Rewind one token so parse_select sees SELECT.
            self.pos -= 1;
            let query = self.parse_select()?;
            return Ok(Statement::CreateView { name, query });
        }
        if self.eat_keyword("STATISTICS") {
            let name = self.expect_ident()?;
            self.expect_keyword("ON")?;
            let mut columns = vec![self.expect_ident()?];
            while self.eat(&Token::Comma) {
                columns.push(self.expect_ident()?);
            }
            self.expect_keyword("FROM")?;
            let table = self.expect_ident()?;
            return Ok(Statement::CreateStatistics { name, columns, table });
        }
        Err(ParseError::new("expected TABLE, INDEX, VIEW or STATISTICS after CREATE"))
    }

    fn parse_if_not_exists(&mut self) -> ParseResult<bool> {
        if self.eat_keyword("IF") {
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_create_table(&mut self) -> ParseResult<Statement> {
        let if_not_exists = self.parse_if_not_exists()?;
        let name = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.peek_keyword("PRIMARY") {
                self.advance();
                self.expect_keyword("KEY")?;
                self.expect(&Token::LParen)?;
                let cols = self.parse_ident_list()?;
                self.expect(&Token::RParen)?;
                constraints.push(TableConstraint::PrimaryKey(cols));
            } else if self.peek_keyword("UNIQUE") && matches!(self.peek_nth(1), Some(Token::LParen))
            {
                self.advance();
                self.expect(&Token::LParen)?;
                let cols = self.parse_ident_list()?;
                self.expect(&Token::RParen)?;
                constraints.push(TableConstraint::Unique(cols));
            } else if self.peek_keyword("CHECK") && matches!(self.peek_nth(1), Some(Token::LParen))
            {
                self.advance();
                self.expect(&Token::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                constraints.push(TableConstraint::Check(e));
            } else {
                columns.push(self.parse_column_def()?);
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        let mut inherits = None;
        let mut without_rowid = false;
        let mut engine = TableEngine::Default;
        loop {
            if self.eat_keyword("INHERITS") {
                self.expect(&Token::LParen)?;
                inherits = Some(self.expect_ident()?);
                self.expect(&Token::RParen)?;
            } else if self.eat_keyword("WITHOUT") {
                self.expect_keyword("ROWID")?;
                without_rowid = true;
            } else if self.eat_keyword("ENGINE") {
                self.expect(&Token::Eq)?;
                let e = self.expect_ident()?.to_ascii_uppercase();
                engine = match e.as_str() {
                    "MEMORY" => TableEngine::Memory,
                    "CSV" => TableEngine::Csv,
                    "INNODB" | "DEFAULT" => TableEngine::Default,
                    other => return Err(ParseError::new(format!("unknown engine {other}"))),
                };
            } else {
                break;
            }
        }
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            constraints,
            without_rowid,
            engine,
            inherits,
            if_not_exists,
        }))
    }

    fn parse_ident_list(&mut self) -> ParseResult<Vec<String>> {
        let mut out = vec![self.expect_ident()?];
        while self.eat(&Token::Comma) {
            out.push(self.expect_ident()?);
        }
        Ok(out)
    }

    fn parse_column_def(&mut self) -> ParseResult<ColumnDef> {
        let name = self.expect_ident()?;
        // The type is optional (SQLite).  A following identifier is a type
        // name only if it is a known type keyword.
        let type_name = if let Some(Token::Ident(w)) = self.peek() {
            let upper = w.to_ascii_uppercase();
            const TYPE_STARTERS: &[&str] = &[
                "INT", "INTEGER", "BIGINT", "TINYINT", "UNSIGNED", "REAL", "DOUBLE", "FLOAT",
                "TEXT", "VARCHAR", "CHAR", "CLOB", "BLOB", "BYTEA", "BOOLEAN", "BOOL", "SERIAL",
            ];
            if TYPE_STARTERS.contains(&upper.as_str()) {
                Some(self.parse_type_name()?)
            } else {
                None
            }
        } else {
            None
        };
        let mut constraints = Vec::new();
        loop {
            if self.eat_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                constraints.push(ColumnConstraint::PrimaryKey);
            } else if self.peek_keyword("UNIQUE") {
                self.advance();
                constraints.push(ColumnConstraint::Unique);
            } else if self.peek_keyword("NOT") && self.peek_keyword_nth(1, "NULL") {
                self.advance();
                self.advance();
                constraints.push(ColumnConstraint::NotNull);
            } else if self.eat_keyword("COLLATE") {
                let n = self.expect_ident()?;
                let c = Collation::parse(&n)
                    .ok_or_else(|| ParseError::new(format!("unknown collation {n}")))?;
                constraints.push(ColumnConstraint::Collate(c));
            } else if self.eat_keyword("DEFAULT") {
                let v = self.parse_literal_value()?;
                constraints.push(ColumnConstraint::Default(v));
            } else if self.peek_keyword("CHECK") {
                self.advance();
                self.expect(&Token::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                constraints.push(ColumnConstraint::Check(e));
            } else {
                break;
            }
        }
        Ok(ColumnDef { name, type_name, constraints })
    }

    fn parse_literal_value(&mut self) -> ParseResult<Value> {
        let e = self.parse_expr()?;
        match e {
            Expr::Literal(v) => Ok(v),
            other => Err(ParseError::new(format!("expected literal, found {other}"))),
        }
    }

    fn parse_create_index(&mut self, unique: bool) -> ParseResult<Statement> {
        let if_not_exists = self.parse_if_not_exists()?;
        let name = self.expect_ident()?;
        self.expect_keyword("ON")?;
        let table = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            // A trailing COLLATE inside parse_expr already attaches to the
            // expression; an explicit collation slot is only used when the
            // expression itself did not consume it.
            let collation = None;
            let descending = if self.eat_keyword("DESC") {
                true
            } else {
                self.eat_keyword("ASC");
                false
            };
            columns.push(IndexedColumn { expr, collation, descending });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        let where_clause = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            unique,
            where_clause,
            if_not_exists,
        }))
    }

    fn parse_drop(&mut self) -> ParseResult<Statement> {
        self.expect_keyword("DROP")?;
        let kind = self.expect_ident()?.to_ascii_uppercase();
        let if_exists = if self.eat_keyword("IF") {
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        match kind.as_str() {
            "TABLE" => Ok(Statement::DropTable { name, if_exists }),
            "INDEX" => Ok(Statement::DropIndex { name, if_exists }),
            "VIEW" => Ok(Statement::DropView { name, if_exists }),
            other => Err(ParseError::new(format!("cannot DROP {other}"))),
        }
    }

    fn parse_alter(&mut self) -> ParseResult<Statement> {
        self.expect_keyword("ALTER")?;
        self.expect_keyword("TABLE")?;
        let table = self.expect_ident()?;
        if self.eat_keyword("RENAME") {
            if self.eat_keyword("COLUMN") {
                let old = self.expect_ident()?;
                self.expect_keyword("TO")?;
                let new = self.expect_ident()?;
                return Ok(Statement::AlterTable(AlterTable::RenameColumn { table, old, new }));
            }
            self.expect_keyword("TO")?;
            let new_name = self.expect_ident()?;
            return Ok(Statement::AlterTable(AlterTable::RenameTable { table, new_name }));
        }
        if self.eat_keyword("ADD") {
            self.eat_keyword("COLUMN");
            let def = self.parse_column_def()?;
            return Ok(Statement::AlterTable(AlterTable::AddColumn { table, def }));
        }
        Err(ParseError::new("expected RENAME or ADD in ALTER TABLE"))
    }

    fn parse_insert(&mut self) -> ParseResult<Statement> {
        self.expect_keyword("INSERT")?;
        let on_conflict = if self.eat_keyword("OR") {
            if self.eat_keyword("IGNORE") {
                OnConflict::Ignore
            } else if self.eat_keyword("REPLACE") {
                OnConflict::Replace
            } else {
                return Err(ParseError::new("expected IGNORE or REPLACE after INSERT OR"));
            }
        } else if self.eat_keyword("IGNORE") {
            OnConflict::Ignore
        } else {
            OnConflict::Abort
        };
        self.expect_keyword("INTO")?;
        let table = self.expect_ident()?;
        let columns = if self.eat(&Token::LParen) {
            let cols = self.parse_ident_list()?;
            self.expect(&Token::RParen)?;
            cols
        } else {
            Vec::new()
        };
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            if !matches!(self.peek(), Some(Token::RParen)) {
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert { table, columns, rows, on_conflict }))
    }

    fn parse_update(&mut self) -> ParseResult<Statement> {
        self.expect_keyword("UPDATE")?;
        let on_conflict = if self.eat_keyword("OR") {
            if self.eat_keyword("IGNORE") {
                OnConflict::Ignore
            } else if self.eat_keyword("REPLACE") {
                OnConflict::Replace
            } else {
                return Err(ParseError::new("expected IGNORE or REPLACE after UPDATE OR"));
            }
        } else {
            OnConflict::Abort
        };
        let table = self.expect_ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect(&Token::Eq)?;
            let e = self.parse_expr()?;
            assignments.push((col, e));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update(Update { table, assignments, where_clause, on_conflict }))
    }

    fn parse_delete(&mut self) -> ParseResult<Statement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Delete(Delete { table, where_clause }))
    }

    /// Parses a query, handling compound set operators.
    pub(crate) fn parse_query(&mut self) -> ParseResult<Query> {
        let first = self.parse_select()?;
        let mut q = Query::Select(Box::new(first));
        loop {
            let op = if self.eat_keyword("INTERSECT") {
                CompoundOp::Intersect
            } else if self.eat_keyword("EXCEPT") {
                CompoundOp::Except
            } else if self.eat_keyword("UNION") {
                if self.eat_keyword("ALL") {
                    CompoundOp::UnionAll
                } else {
                    CompoundOp::Union
                }
            } else {
                break;
            };
            let right = self.parse_select()?;
            q = Query::Compound {
                left: Box::new(q),
                op,
                right: Box::new(Query::Select(Box::new(right))),
            };
        }
        Ok(q)
    }

    fn parse_select(&mut self) -> ParseResult<Select> {
        self.expect_keyword("SELECT")?;
        let distinct = if self.eat_keyword("DISTINCT") {
            true
        } else {
            self.eat_keyword("ALL");
            false
        };
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_keyword("AS") { Some(self.expect_ident()?) } else { None };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        let mut joins = Vec::new();
        if self.eat_keyword("FROM") {
            from.push(self.expect_ident()?);
            loop {
                if self.eat(&Token::Comma) {
                    from.push(self.expect_ident()?);
                    continue;
                }
                let kind = if self.peek_keyword("CROSS") && self.peek_keyword_nth(1, "JOIN") {
                    self.advance();
                    self.advance();
                    Some(JoinKind::Cross)
                } else if self.peek_keyword("INNER") && self.peek_keyword_nth(1, "JOIN") {
                    self.advance();
                    self.advance();
                    Some(JoinKind::Inner)
                } else if self.peek_keyword("LEFT") {
                    self.advance();
                    self.eat_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    Some(JoinKind::Left)
                } else if self.peek_keyword("JOIN") {
                    self.advance();
                    Some(JoinKind::Inner)
                } else {
                    None
                };
                match kind {
                    Some(kind) => {
                        let table = self.expect_ident()?;
                        let on =
                            if self.eat_keyword("ON") { Some(self.parse_expr()?) } else { None };
                        joins.push(Join { kind, table, on });
                    }
                    None => break,
                }
            }
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") { Some(self.parse_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let descending = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderingTerm { expr, descending, collation: None });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                Some(Token::Integer(i)) if *i >= 0 => Some(*i as u64),
                other => {
                    return Err(ParseError::new(format!("expected LIMIT count, found {other:?}")))
                }
            }
        } else {
            None
        };
        let offset = if self.eat_keyword("OFFSET") {
            match self.advance() {
                Some(Token::Integer(i)) if *i >= 0 => Some(*i as u64),
                other => {
                    return Err(ParseError::new(format!("expected OFFSET count, found {other:?}")))
                }
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_script, parse_statement};

    #[test]
    fn parses_listing1_script() {
        let script = "
            CREATE TABLE t0(c0);
            CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;
            INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);
            SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1;
        ";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 4);
        assert!(
            matches!(&stmts[0], Statement::CreateTable(ct) if ct.columns.len() == 1 && ct.columns[0].type_name.is_none())
        );
        assert!(matches!(&stmts[1], Statement::CreateIndex(ci) if ci.where_clause.is_some()));
        assert!(matches!(&stmts[2], Statement::Insert(i) if i.rows.len() == 5));
        assert!(matches!(&stmts[3], Statement::Select(_)));
    }

    #[test]
    fn parses_listing4_collate_without_rowid() {
        let stmts = parse_script(
            "CREATE TABLE t0(c0 TEXT PRIMARY KEY) WITHOUT ROWID;
             CREATE INDEX i0 ON t0(c1 COLLATE NOCASE);
             INSERT INTO t0(c0) VALUES ('A');
             SELECT * FROM t0;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 4);
        match &stmts[0] {
            Statement::CreateTable(ct) => {
                assert!(ct.without_rowid);
                assert!(ct.columns[0].has_primary_key());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_listing5_compound_pk() {
        let stmt = parse_statement(
            "CREATE TABLE t0(c0 COLLATE RTRIM, c1 BLOB UNIQUE, PRIMARY KEY (c0, c1)) WITHOUT ROWID",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.columns.len(), 2);
                assert_eq!(ct.columns[0].collation(), Some(Collation::Rtrim));
                assert!(ct.columns[1].has_unique());
                assert_eq!(ct.constraints.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_mysql_engine_and_unsigned_cast() {
        let stmts = parse_script(
            "CREATE TABLE t1(c0 INT) ENGINE = MEMORY;
             SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED)) > (IFNULL('u', t0.c0));",
        )
        .unwrap();
        assert!(
            matches!(&stmts[0], Statement::CreateTable(ct) if ct.engine == TableEngine::Memory)
        );
        assert!(matches!(&stmts[1], Statement::Select(_)));
    }

    #[test]
    fn parses_postgres_inherits_and_statistics() {
        let stmts = parse_script(
            "CREATE TABLE t1(c0 INT) INHERITS (t0);
             CREATE STATISTICS s1 ON c0, c1 FROM t0;
             SELECT c0, c1 FROM t0 GROUP BY c0, c1;",
        )
        .unwrap();
        assert!(
            matches!(&stmts[0], Statement::CreateTable(ct) if ct.inherits.as_deref() == Some("t0"))
        );
        assert!(
            matches!(&stmts[1], Statement::CreateStatistics { columns, .. } if columns.len() == 2)
        );
        assert!(matches!(&stmts[2], Statement::Select(Query::Select(s)) if s.group_by.len() == 2));
    }

    #[test]
    fn parses_update_or_replace_and_pragma() {
        let stmts = parse_script(
            "UPDATE OR REPLACE t1 SET c1 = 1;
             PRAGMA case_sensitive_like=false;
             SET GLOBAL key_cache_division_limit = 100;",
        )
        .unwrap();
        assert!(matches!(&stmts[0], Statement::Update(u) if u.on_conflict == OnConflict::Replace));
        assert!(matches!(&stmts[1], Statement::Pragma { value: Some(Value::Integer(0)), .. }));
        assert!(matches!(&stmts[2], Statement::Set { scope: SetScope::Global, .. }));
    }

    #[test]
    fn parses_select_with_joins_order_limit() {
        let stmt = parse_statement(
            "SELECT DISTINCT t0.c0 FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 > 1 \
             GROUP BY t0.c0 HAVING COUNT(*) > 1 ORDER BY t0.c0 DESC LIMIT 10 OFFSET 2",
        )
        .unwrap();
        match stmt {
            Statement::Select(Query::Select(s)) => {
                assert!(s.distinct);
                assert_eq!(s.joins.len(), 1);
                assert_eq!(s.joins[0].kind, JoinKind::Left);
                assert!(s.having.is_some());
                assert_eq!(s.limit, Some(10));
                assert_eq!(s.offset, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_intersect_containment_query() {
        let stmt = parse_statement(
            "SELECT 3, 'x', -5 INTERSECT SELECT t0.c0, t0.c1, t1.c0 FROM t0, t1 WHERE NOT(NOT(t0.c1 OR (t1.c0 > 3)))",
        )
        .unwrap();
        assert!(matches!(
            stmt,
            Statement::Select(Query::Compound { op: CompoundOp::Intersect, .. })
        ));
    }

    #[test]
    fn parses_maintenance_statements() {
        assert!(matches!(
            parse_statement("VACUUM FULL").unwrap(),
            Statement::Vacuum { full: true }
        ));
        assert!(matches!(parse_statement("REINDEX").unwrap(), Statement::Reindex { target: None }));
        assert!(
            matches!(parse_statement("ANALYZE t1").unwrap(), Statement::Analyze { target: Some(t) } if t == "t1")
        );
        assert!(matches!(
            parse_statement("CHECK TABLE t0 FOR UPGRADE").unwrap(),
            Statement::CheckTable { for_upgrade: true, .. }
        ));
        assert!(matches!(
            parse_statement("REPAIR TABLE t0").unwrap(),
            Statement::RepairTable { .. }
        ));
        assert!(matches!(parse_statement("DISCARD ALL").unwrap(), Statement::Discard));
    }

    #[test]
    fn parses_alter_table_variants() {
        assert!(matches!(
            parse_statement("ALTER TABLE t0 RENAME COLUMN c1 TO c3").unwrap(),
            Statement::AlterTable(AlterTable::RenameColumn { .. })
        ));
        assert!(matches!(
            parse_statement("ALTER TABLE t0 RENAME TO t9").unwrap(),
            Statement::AlterTable(AlterTable::RenameTable { .. })
        ));
        assert!(matches!(
            parse_statement("ALTER TABLE t0 ADD COLUMN c5 TEXT NOT NULL").unwrap(),
            Statement::AlterTable(AlterTable::AddColumn { .. })
        ));
    }

    #[test]
    fn parses_drop_variants() {
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t0").unwrap(),
            Statement::DropTable { if_exists: true, .. }
        ));
        assert!(matches!(
            parse_statement("DROP INDEX i0").unwrap(),
            Statement::DropIndex { if_exists: false, .. }
        ));
        assert!(matches!(parse_statement("DROP VIEW v0").unwrap(), Statement::DropView { .. }));
    }

    #[test]
    fn statement_display_round_trips_through_parser() {
        let scripts = [
            "CREATE TABLE t0(c0 TEXT PRIMARY KEY) WITHOUT ROWID",
            "CREATE INDEX i0 ON t0(1) WHERE (c0 IS NOT NULL)",
            "INSERT OR IGNORE INTO t0(c0) VALUES (0), (NULL)",
            "UPDATE OR REPLACE t1 SET c1 = 1 WHERE (c0 IS NULL)",
            "SELECT DISTINCT * FROM t1 WHERE (t1.c3 = 1)",
            "SELECT '' - 2851427734582196970",
            "DELETE FROM t0 WHERE (c0 > 3)",
            "EXPLAIN SELECT * FROM t0 WHERE (c0 = 1)",
        ];
        for s in scripts {
            let stmt = parse_statement(s).unwrap();
            let rendered = stmt.to_string();
            let reparsed = parse_statement(&rendered).unwrap();
            assert_eq!(stmt, reparsed, "round trip failed for {s}");
        }
    }
}
