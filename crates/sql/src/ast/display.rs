//! Rendering of the AST back to SQL text.
//!
//! Every AST node implements [`std::fmt::Display`] such that the emitted SQL
//! parses back to an equivalent AST (round-trip property, checked by
//! property-based tests).  Expressions are emitted fully parenthesised so the
//! renderer never has to reason about operator precedence — the same choice
//! SQLancer makes when printing its randomly generated expressions.

use std::fmt;

use crate::ast::expr::{BinaryOp, Expr, TypeName, UnaryOp};
use crate::ast::stmt::{
    AlterTable, ColumnConstraint, ColumnDef, CompoundOp, CreateIndex, CreateTable, Delete, Insert,
    Join, JoinKind, OnConflict, OrderingTerm, Query, Select, SelectItem, SetScope, Statement,
    TableConstraint, TableEngine, Update,
};

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnaryOp::Not => "NOT ",
            UnaryOp::Neg => "-",
            UnaryOp::Plus => "+",
            UnaryOp::BitNot => "~",
        };
        f.write_str(s)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::ShiftLeft => "<<",
            BinaryOp::ShiftRight => ">>",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Is => "IS",
            BinaryOp::IsNot => "IS NOT",
            BinaryOp::NullSafeEq => "<=>",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TypeName::Integer => "INT",
            TypeName::TinyInt => "TINYINT",
            TypeName::Unsigned => "INT UNSIGNED",
            TypeName::Real => "REAL",
            TypeName::Text => "TEXT",
            TypeName::Blob => "BLOB",
            TypeName::Boolean => "BOOLEAN",
            TypeName::Serial => "SERIAL",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => f.write_str(&v.to_sql_literal()),
            Expr::Column(c) => match &c.table {
                Some(t) => write!(f, "{t}.{}", c.column),
                None => f.write_str(&c.column),
            },
            // The operand of a prefix operator is parenthesised: `-(-3)` must
            // not be emitted as `--3`, which would lex as a line comment.
            Expr::Unary { op: UnaryOp::Not, expr } => write!(f, "(NOT {expr})"),
            Expr::Unary { op, expr } => write!(f, "({op}({expr}))"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Like { negated, expr, pattern } => {
                if *negated {
                    write!(f, "({expr} NOT LIKE {pattern})")
                } else {
                    write!(f, "({expr} LIKE {pattern})")
                }
            }
            Expr::Between { negated, expr, low, high } => {
                if *negated {
                    write!(f, "({expr} NOT BETWEEN {low} AND {high})")
                } else {
                    write!(f, "({expr} BETWEEN {low} AND {high})")
                }
            }
            Expr::InList { negated, expr, list } => {
                let items: Vec<String> = list.iter().map(ToString::to_string).collect();
                if *negated {
                    write!(f, "({expr} NOT IN ({}))", items.join(", "))
                } else {
                    write!(f, "({expr} IN ({}))", items.join(", "))
                }
            }
            Expr::IsNull { negated, expr } => {
                if *negated {
                    write!(f, "({expr} IS NOT NULL)")
                } else {
                    write!(f, "({expr} IS NULL)")
                }
            }
            Expr::Cast { expr, type_name } => write!(f, "CAST({expr} AS {type_name})"),
            Expr::Case { operand, branches, else_expr } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (when, then) in branches {
                    write!(f, " WHEN {when} THEN {then}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Function { func, args } => {
                let items: Vec<String> = args.iter().map(ToString::to_string).collect();
                write!(f, "{}({})", func.name(), items.join(", "))
            }
            Expr::Aggregate { func, arg, distinct } => match arg {
                Some(a) if *distinct => write!(f, "{}(DISTINCT {a})", func.name()),
                Some(a) => write!(f, "{}({a})", func.name()),
                None => write!(f, "{}(*)", func.name()),
            },
            // The operand is parenthesised so that prefix operators inside it
            // (e.g. a folded negative literal) cannot re-associate with the
            // tighter-binding COLLATE on re-parsing.
            Expr::Collate { expr, collation } => write!(f, "(({expr}) COLLATE {collation})"),
        }
    }
}

impl fmt::Display for ColumnConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnConstraint::PrimaryKey => f.write_str("PRIMARY KEY"),
            ColumnConstraint::Unique => f.write_str("UNIQUE"),
            ColumnConstraint::NotNull => f.write_str("NOT NULL"),
            ColumnConstraint::Collate(c) => write!(f, "COLLATE {c}"),
            ColumnConstraint::Default(v) => write!(f, "DEFAULT {}", v.to_sql_literal()),
            ColumnConstraint::Check(e) => write!(f, "CHECK ({e})"),
        }
    }
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if let Some(t) = &self.type_name {
            write!(f, " {t}")?;
        }
        for c in &self.constraints {
            write!(f, " {c}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableConstraint::PrimaryKey(cols) => write!(f, "PRIMARY KEY ({})", cols.join(", ")),
            TableConstraint::Unique(cols) => write!(f, "UNIQUE ({})", cols.join(", ")),
            TableConstraint::Check(e) => write!(f, "CHECK ({e})"),
        }
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CREATE TABLE ")?;
        if self.if_not_exists {
            f.write_str("IF NOT EXISTS ")?;
        }
        write!(f, "{}(", self.name)?;
        let mut parts: Vec<String> = self.columns.iter().map(ToString::to_string).collect();
        parts.extend(self.constraints.iter().map(ToString::to_string));
        f.write_str(&parts.join(", "))?;
        f.write_str(")")?;
        if let Some(parent) = &self.inherits {
            write!(f, " INHERITS ({parent})")?;
        }
        if self.without_rowid {
            f.write_str(" WITHOUT ROWID")?;
        }
        match self.engine {
            TableEngine::Default => {}
            TableEngine::Memory => f.write_str(" ENGINE = MEMORY")?,
            TableEngine::Csv => f.write_str(" ENGINE = CSV")?,
        }
        Ok(())
    }
}

impl fmt::Display for CreateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CREATE ")?;
        if self.unique {
            f.write_str("UNIQUE ")?;
        }
        f.write_str("INDEX ")?;
        if self.if_not_exists {
            f.write_str("IF NOT EXISTS ")?;
        }
        write!(f, "{} ON {}(", self.name, self.table)?;
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| {
                let mut s = c.expr.to_string();
                if let Some(coll) = c.collation {
                    s.push_str(&format!(" COLLATE {coll}"));
                }
                if c.descending {
                    s.push_str(" DESC");
                }
                s
            })
            .collect();
        f.write_str(&cols.join(", "))?;
        f.write_str(")")?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for AlterTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlterTable::RenameTable { table, new_name } => {
                write!(f, "ALTER TABLE {table} RENAME TO {new_name}")
            }
            AlterTable::RenameColumn { table, old, new } => {
                write!(f, "ALTER TABLE {table} RENAME COLUMN {old} TO {new}")
            }
            AlterTable::AddColumn { table, def } => {
                write!(f, "ALTER TABLE {table} ADD COLUMN {def}")
            }
        }
    }
}

fn on_conflict_prefix(oc: OnConflict) -> &'static str {
    match oc {
        OnConflict::Abort => "",
        OnConflict::Ignore => "OR IGNORE ",
        OnConflict::Replace => "OR REPLACE ",
    }
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT {}INTO {}", on_conflict_prefix(self.on_conflict), self.table)?;
        if !self.columns.is_empty() {
            write!(f, "({})", self.columns.join(", "))?;
        }
        f.write_str(" VALUES ")?;
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let vals: Vec<String> = row.iter().map(ToString::to_string).collect();
                format!("({})", vals.join(", "))
            })
            .collect();
        f.write_str(&rows.join(", "))
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {}{} SET ", on_conflict_prefix(self.on_conflict), self.table)?;
        let sets: Vec<String> =
            self.assignments.iter().map(|(c, e)| format!("{c} = {e}")).collect();
        f.write_str(&sets.join(", "))?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
        }
    }
}

impl fmt::Display for OrderingTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if let Some(c) = self.collation {
            write!(f, " COLLATE {c}")?;
        }
        if self.descending {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            JoinKind::Cross => write!(f, "CROSS JOIN {}", self.table)?,
            JoinKind::Inner => write!(f, "INNER JOIN {}", self.table)?,
            JoinKind::Left => write!(f, "LEFT JOIN {}", self.table)?,
        }
        if let Some(on) = &self.on {
            write!(f, " ON {on}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        let items: Vec<String> = self.items.iter().map(ToString::to_string).collect();
        f.write_str(&items.join(", "))?;
        if !self.from.is_empty() {
            write!(f, " FROM {}", self.from.join(", "))?;
        }
        for j in &self.joins {
            write!(f, " {j}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            let g: Vec<String> = self.group_by.iter().map(ToString::to_string).collect();
            write!(f, " GROUP BY {}", g.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            let o: Vec<String> = self.order_by.iter().map(ToString::to_string).collect();
            write!(f, " ORDER BY {}", o.join(", "))?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for CompoundOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompoundOp::Union => "UNION",
            CompoundOp::UnionAll => "UNION ALL",
            CompoundOp::Intersect => "INTERSECT",
            CompoundOp::Except => "EXCEPT",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Select(s) => write!(f, "{s}"),
            Query::Compound { left, op, right } => write!(f, "{left} {op} {right}"),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable(ct) => write!(f, "{ct}"),
            Statement::CreateIndex(ci) => write!(f, "{ci}"),
            Statement::CreateView { name, query } => write!(f, "CREATE VIEW {name} AS {query}"),
            Statement::DropTable { name, if_exists } => {
                if *if_exists {
                    write!(f, "DROP TABLE IF EXISTS {name}")
                } else {
                    write!(f, "DROP TABLE {name}")
                }
            }
            Statement::DropIndex { name, if_exists } => {
                if *if_exists {
                    write!(f, "DROP INDEX IF EXISTS {name}")
                } else {
                    write!(f, "DROP INDEX {name}")
                }
            }
            Statement::DropView { name, if_exists } => {
                if *if_exists {
                    write!(f, "DROP VIEW IF EXISTS {name}")
                } else {
                    write!(f, "DROP VIEW {name}")
                }
            }
            Statement::AlterTable(a) => write!(f, "{a}"),
            Statement::Insert(i) => write!(f, "{i}"),
            Statement::Update(u) => write!(f, "{u}"),
            Statement::Delete(d) => write!(f, "{d}"),
            Statement::Select(q) => write!(f, "{q}"),
            Statement::Explain(q) => write!(f, "EXPLAIN {q}"),
            Statement::Vacuum { full } => {
                if *full {
                    f.write_str("VACUUM FULL")
                } else {
                    f.write_str("VACUUM")
                }
            }
            Statement::Reindex { target } => match target {
                Some(t) => write!(f, "REINDEX {t}"),
                None => f.write_str("REINDEX"),
            },
            Statement::Analyze { target } => match target {
                Some(t) => write!(f, "ANALYZE {t}"),
                None => f.write_str("ANALYZE"),
            },
            Statement::CheckTable { table, for_upgrade } => {
                if *for_upgrade {
                    write!(f, "CHECK TABLE {table} FOR UPGRADE")
                } else {
                    write!(f, "CHECK TABLE {table}")
                }
            }
            Statement::RepairTable { table } => write!(f, "REPAIR TABLE {table}"),
            Statement::Pragma { name, value } => match value {
                Some(v) => write!(f, "PRAGMA {name} = {}", v.to_sql_literal()),
                None => write!(f, "PRAGMA {name}"),
            },
            Statement::Set { scope, name, value } => {
                let scope_str = match scope {
                    SetScope::Session => "SESSION ",
                    SetScope::Global => "GLOBAL ",
                };
                write!(f, "SET {scope_str}{name} = {}", value.to_sql_literal())
            }
            Statement::CreateStatistics { name, columns, table } => {
                write!(f, "CREATE STATISTICS {name} ON {} FROM {table}", columns.join(", "))
            }
            Statement::Discard => f.write_str("DISCARD ALL"),
            Statement::Begin => f.write_str("BEGIN"),
            Statement::Commit => f.write_str("COMMIT"),
            Statement::Rollback => f.write_str("ROLLBACK"),
            Statement::Session { id } => write!(f, "SESSION {id}"),
        }
    }
}

/// Renders a sequence of statements as a semicolon-terminated SQL script.
#[must_use]
pub fn render_script(statements: &[Statement]) -> String {
    let mut out = String::new();
    for s in statements {
        out.push_str(&s.to_string());
        out.push_str(";\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::expr::{AggFunc, ColumnRef};
    use crate::collation::Collation;
    use crate::value::Value;

    #[test]
    fn renders_listing1_style_statements() {
        // The motivating SQLite bug from Listing 1 of the paper.
        let ct = Statement::CreateTable(CreateTable::new("t0", vec![ColumnDef::new("c0", None)]));
        assert_eq!(ct.to_string(), "CREATE TABLE t0(c0)");

        let ci = Statement::CreateIndex(CreateIndex {
            name: "i0".into(),
            table: "t0".into(),
            columns: vec![crate::ast::stmt::IndexedColumn {
                expr: Expr::int(1),
                collation: None,
                descending: false,
            }],
            unique: false,
            where_clause: Some(Expr::IsNull { negated: true, expr: Box::new(Expr::col("c0")) }),
            if_not_exists: false,
        });
        assert_eq!(ci.to_string(), "CREATE INDEX i0 ON t0(1) WHERE (c0 IS NOT NULL)");

        let sel = Statement::Select(Query::select(Select {
            where_clause: Some(Expr::binary(
                BinaryOp::IsNot,
                Expr::Column(ColumnRef::qualified("t0", "c0")),
                Expr::int(1),
            )),
            ..Select::star(vec!["t0".into()])
        }));
        assert_eq!(sel.to_string(), "SELECT * FROM t0 WHERE (t0.c0 IS NOT 1)");
    }

    #[test]
    fn renders_insert_update_delete() {
        let ins = Statement::Insert(Insert {
            table: "t0".into(),
            columns: vec!["c0".into()],
            rows: vec![vec![Expr::int(0)], vec![Expr::null()]],
            on_conflict: OnConflict::Ignore,
        });
        assert_eq!(ins.to_string(), "INSERT OR IGNORE INTO t0(c0) VALUES (0), (NULL)");

        let upd = Statement::Update(Update {
            table: "t0".into(),
            assignments: vec![("c0".into(), Expr::null())],
            where_clause: Some(Expr::col("c1").eq(Expr::int(3))),
            on_conflict: OnConflict::Replace,
        });
        assert_eq!(upd.to_string(), "UPDATE OR REPLACE t0 SET c0 = NULL WHERE (c1 = 3)");

        let del = Statement::Delete(Delete { table: "t0".into(), where_clause: None });
        assert_eq!(del.to_string(), "DELETE FROM t0");
    }

    #[test]
    fn renders_expressions_with_parens() {
        let e = Expr::col("c0").eq(Expr::int(1)).and(Expr::col("c1").not());
        assert_eq!(e.to_string(), "((c0 = 1) AND (NOT c1))");
        let agg = Expr::Aggregate { func: AggFunc::Count, arg: None, distinct: false };
        assert_eq!(agg.to_string(), "COUNT(*)");
        let coll = Expr::Collate { expr: Box::new(Expr::col("c0")), collation: Collation::Rtrim };
        assert_eq!(coll.to_string(), "((c0) COLLATE RTRIM)");
        let cast = Expr::Cast { expr: Box::new(Expr::col("c0")), type_name: TypeName::Unsigned };
        assert_eq!(cast.to_string(), "CAST(c0 AS INT UNSIGNED)");
    }

    #[test]
    fn renders_compound_intersect_query() {
        let q = Query::intersect(
            Query::select(Select::constants(vec![Expr::int(3), Expr::lit(Value::Null)])),
            Query::select(Select::star(vec!["t0".into()])),
        );
        assert_eq!(q.to_string(), "SELECT 3, NULL INTERSECT SELECT * FROM t0");
    }

    #[test]
    fn renders_options_and_maintenance() {
        assert_eq!(
            Statement::Pragma {
                name: "case_sensitive_like".into(),
                value: Some(Value::Integer(0))
            }
            .to_string(),
            "PRAGMA case_sensitive_like = 0"
        );
        assert_eq!(
            Statement::Set {
                scope: SetScope::Global,
                name: "key_cache_division_limit".into(),
                value: Value::Integer(100)
            }
            .to_string(),
            "SET GLOBAL key_cache_division_limit = 100"
        );
        assert_eq!(Statement::Vacuum { full: true }.to_string(), "VACUUM FULL");
        assert_eq!(Statement::Reindex { target: None }.to_string(), "REINDEX");
        assert_eq!(
            Statement::CheckTable { table: "t0".into(), for_upgrade: true }.to_string(),
            "CHECK TABLE t0 FOR UPGRADE"
        );
    }

    #[test]
    fn script_rendering_appends_semicolons() {
        let script = render_script(&[Statement::Begin, Statement::Commit]);
        assert_eq!(script, "BEGIN;\nCOMMIT;\n");
    }
}
