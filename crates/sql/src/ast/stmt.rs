//! SQL statement AST: DDL, DML, DQL, maintenance statements and options.
//!
//! The statement set is the union of what SQLancer generates for the three
//! DBMS in the paper (Figure 3): `CREATE TABLE`, `INSERT`, `SELECT`,
//! `CREATE INDEX`, `ALTER TABLE`, `UPDATE`, `DELETE`, options
//! (`PRAGMA`/`SET`), `ANALYZE`, `REINDEX`, `VACUUM`, `CREATE VIEW`,
//! transactions, `DROP INDEX`, `REPAIR TABLE`/`CHECK TABLE`,
//! `CREATE STATISTICS` and `DISCARD`.

use serde::{Deserialize, Serialize};

use crate::ast::expr::Expr;
use crate::ast::expr::TypeName;
use crate::collation::Collation;
use crate::value::Value;

/// Conflict-resolution behaviour for `INSERT` and `UPDATE`
/// (`OR IGNORE` / `OR REPLACE` in SQLite, `IGNORE` in MySQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OnConflict {
    /// Fail the statement with an error (default).
    #[default]
    Abort,
    /// Skip conflicting rows.
    Ignore,
    /// Replace conflicting rows.
    Replace,
}

/// A column-level constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnConstraint {
    /// `PRIMARY KEY`
    PrimaryKey,
    /// `UNIQUE`
    Unique,
    /// `NOT NULL`
    NotNull,
    /// `COLLATE <name>`
    Collate(Collation),
    /// `DEFAULT <literal>`
    Default(Value),
    /// `CHECK (<expr>)`
    Check(Expr),
}

/// A table-level constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableConstraint {
    /// `PRIMARY KEY (c0, c1, ...)`
    PrimaryKey(Vec<String>),
    /// `UNIQUE (c0, c1, ...)`
    Unique(Vec<String>),
    /// `CHECK (<expr>)`
    Check(Expr),
}

/// A column definition in `CREATE TABLE` or `ALTER TABLE ADD COLUMN`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// The column name.
    pub name: String,
    /// The declared type; `None` is allowed only by the SQLite-like dialect.
    pub type_name: Option<TypeName>,
    /// Column constraints in declaration order.
    pub constraints: Vec<ColumnConstraint>,
}

impl ColumnDef {
    /// Creates a column with no constraints.
    #[must_use]
    pub fn new(name: impl Into<String>, type_name: Option<TypeName>) -> Self {
        ColumnDef { name: name.into(), type_name, constraints: Vec::new() }
    }

    /// Returns the declared collation, if any.
    #[must_use]
    pub fn collation(&self) -> Option<Collation> {
        self.constraints.iter().find_map(|c| match c {
            ColumnConstraint::Collate(coll) => Some(*coll),
            _ => None,
        })
    }

    /// Returns `true` if the column carries the given simple constraint kind.
    #[must_use]
    pub fn has_primary_key(&self) -> bool {
        self.constraints.iter().any(|c| matches!(c, ColumnConstraint::PrimaryKey))
    }

    /// Returns `true` if the column is declared `UNIQUE`.
    #[must_use]
    pub fn has_unique(&self) -> bool {
        self.constraints.iter().any(|c| matches!(c, ColumnConstraint::Unique))
    }

    /// Returns `true` if the column is declared `NOT NULL`.
    #[must_use]
    pub fn has_not_null(&self) -> bool {
        self.constraints.iter().any(|c| matches!(c, ColumnConstraint::NotNull))
    }
}

/// MySQL-style storage engine selection (the paper found 5 bugs specific to
/// non-default engines, §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TableEngine {
    /// The default on-disk engine (InnoDB analogue).
    #[default]
    Default,
    /// The in-memory engine (`ENGINE = MEMORY`).
    Memory,
    /// The CSV-file-backed engine (`ENGINE = CSV`).
    Csv,
}

/// `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// Table-level constraints.
    pub constraints: Vec<TableConstraint>,
    /// SQLite `WITHOUT ROWID`.
    pub without_rowid: bool,
    /// MySQL storage engine.
    pub engine: TableEngine,
    /// PostgreSQL `INHERITS (parent)`.
    pub inherits: Option<String>,
    /// `IF NOT EXISTS`.
    pub if_not_exists: bool,
}

impl CreateTable {
    /// Creates a plain table definition with the given columns.
    #[must_use]
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        CreateTable {
            name: name.into(),
            columns,
            constraints: Vec::new(),
            without_rowid: false,
            engine: TableEngine::Default,
            inherits: None,
            if_not_exists: false,
        }
    }
}

/// A column (or expression) participating in an index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexedColumn {
    /// The indexed expression (usually a plain column reference).
    pub expr: Expr,
    /// An optional collation override.
    pub collation: Option<Collation>,
    /// `DESC` ordering.
    pub descending: bool,
}

impl IndexedColumn {
    /// Indexes a plain column in ascending order with the default collation.
    #[must_use]
    pub fn column(name: impl Into<String>) -> Self {
        IndexedColumn { expr: Expr::col(name), collation: None, descending: false }
    }
}

/// `CREATE INDEX`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateIndex {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed columns / expressions.
    pub columns: Vec<IndexedColumn>,
    /// `UNIQUE` index.
    pub unique: bool,
    /// Partial-index predicate (`WHERE ...`).
    pub where_clause: Option<Expr>,
    /// `IF NOT EXISTS`.
    pub if_not_exists: bool,
}

/// `ALTER TABLE` variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlterTable {
    /// `ALTER TABLE t RENAME TO u`
    RenameTable {
        /// Current table name.
        table: String,
        /// New table name.
        new_name: String,
    },
    /// `ALTER TABLE t RENAME COLUMN a TO b`
    RenameColumn {
        /// Table name.
        table: String,
        /// Current column name.
        old: String,
        /// New column name.
        new: String,
    },
    /// `ALTER TABLE t ADD COLUMN ...`
    AddColumn {
        /// Table name.
        table: String,
        /// The new column.
        def: ColumnDef,
    },
}

/// `INSERT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Target columns; empty means "all columns in declaration order".
    pub columns: Vec<String>,
    /// Rows of value expressions.
    pub rows: Vec<Vec<Expr>>,
    /// Conflict behaviour (`OR IGNORE` / `OR REPLACE`).
    pub on_conflict: OnConflict,
}

/// `UPDATE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET column = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// Optional `WHERE` clause.
    pub where_clause: Option<Expr>,
    /// Conflict behaviour (`OR REPLACE`).
    pub on_conflict: OnConflict,
}

/// `DELETE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Optional `WHERE` clause.
    pub where_clause: Option<Expr>,
}

/// A projected item in a `SELECT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// An `ORDER BY` term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderingTerm {
    /// The ordering expression.
    pub expr: Expr,
    /// `DESC`.
    pub descending: bool,
    /// Optional collation override.
    pub collation: Option<Collation>,
}

/// A join clause attached to a `SELECT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    /// The join kind.
    pub kind: JoinKind,
    /// The joined table.
    pub table: String,
    /// The `ON` condition (absent for `CROSS JOIN`).
    pub on: Option<Expr>,
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinKind {
    /// `CROSS JOIN` / comma join.
    Cross,
    /// `INNER JOIN ... ON ...`
    Inner,
    /// `LEFT JOIN ... ON ...`
    Left,
}

/// A single `SELECT` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projected items.
    pub items: Vec<SelectItem>,
    /// Base tables (comma-separated `FROM` list).
    pub from: Vec<String>,
    /// Explicit join clauses applied after the base tables.
    pub joins: Vec<Join>,
    /// `WHERE` clause.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` clause.
    pub having: Option<Expr>,
    /// `ORDER BY` terms.
    pub order_by: Vec<OrderingTerm>,
    /// `LIMIT`.
    pub limit: Option<u64>,
    /// `OFFSET`.
    pub offset: Option<u64>,
}

impl Select {
    /// A `SELECT` over the given tables projecting `*`.
    #[must_use]
    pub fn star(from: Vec<String>) -> Self {
        Select {
            distinct: false,
            items: vec![SelectItem::Wildcard],
            from,
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// A `SELECT` with no `FROM` clause projecting the given expressions
    /// (used for constant rows, e.g. the left side of the containment
    /// `INTERSECT`).
    #[must_use]
    pub fn constants(exprs: Vec<Expr>) -> Self {
        Select {
            distinct: false,
            items: exprs.into_iter().map(|expr| SelectItem::Expr { expr, alias: None }).collect(),
            from: Vec::new(),
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// Compound set operators between two `SELECT` bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompoundOp {
    /// `UNION` (distinct).
    Union,
    /// `UNION ALL`.
    UnionAll,
    /// `INTERSECT` — used by the containment oracle.
    Intersect,
    /// `EXCEPT`.
    Except,
}

/// A query: either a simple `SELECT` or a compound of two queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// A plain `SELECT` (boxed: `Select` is by far the largest payload).
    Select(Box<Select>),
    /// `left <op> right`.
    Compound {
        /// Left operand.
        left: Box<Query>,
        /// The set operator.
        op: CompoundOp,
        /// Right operand.
        right: Box<Query>,
    },
}

impl Query {
    /// Wraps a `SELECT` body.
    #[must_use]
    pub fn select(select: Select) -> Query {
        Query::Select(Box::new(select))
    }

    /// Builds `left INTERSECT right`.
    #[must_use]
    pub fn intersect(left: Query, right: Query) -> Query {
        Query::Compound { left: Box::new(left), op: CompoundOp::Intersect, right: Box::new(right) }
    }
}

/// Scope of a `SET` option statement (MySQL / PostgreSQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SetScope {
    /// `SET SESSION` (default).
    #[default]
    Session,
    /// `SET GLOBAL`.
    Global,
}

/// A complete SQL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable(CreateTable),
    /// `CREATE INDEX`.
    CreateIndex(CreateIndex),
    /// `CREATE VIEW name AS SELECT ...`.
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        query: Select,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Table name.
        name: String,
        /// `IF EXISTS`.
        if_exists: bool,
    },
    /// `DROP INDEX`.
    DropIndex {
        /// Index name.
        name: String,
        /// `IF EXISTS`.
        if_exists: bool,
    },
    /// `DROP VIEW`.
    DropView {
        /// View name.
        name: String,
        /// `IF EXISTS`.
        if_exists: bool,
    },
    /// `ALTER TABLE`.
    AlterTable(AlterTable),
    /// `INSERT`.
    Insert(Insert),
    /// `UPDATE`.
    Update(Update),
    /// `DELETE`.
    Delete(Delete),
    /// A query (`SELECT`, possibly compound).
    Select(Query),
    /// `EXPLAIN <query>`: report the query plan without executing the query.
    Explain(Query),
    /// `VACUUM` (SQLite / PostgreSQL).
    Vacuum {
        /// `VACUUM FULL` (PostgreSQL).
        full: bool,
    },
    /// `REINDEX` (SQLite / PostgreSQL).
    Reindex {
        /// Optional target table or index.
        target: Option<String>,
    },
    /// `ANALYZE` (all three DBMS).
    Analyze {
        /// Optional target table.
        target: Option<String>,
    },
    /// MySQL `CHECK TABLE`.
    CheckTable {
        /// Target table.
        table: String,
        /// `FOR UPGRADE`.
        for_upgrade: bool,
    },
    /// MySQL `REPAIR TABLE`.
    RepairTable {
        /// Target table.
        table: String,
    },
    /// SQLite `PRAGMA name [= value]`.
    Pragma {
        /// Pragma name.
        name: String,
        /// Optional value.
        value: Option<Value>,
    },
    /// MySQL / PostgreSQL `SET [GLOBAL|SESSION] name = value`.
    Set {
        /// The scope.
        scope: SetScope,
        /// Option name.
        name: String,
        /// Option value.
        value: Value,
    },
    /// PostgreSQL `CREATE STATISTICS`.
    CreateStatistics {
        /// Statistics object name.
        name: String,
        /// Covered columns.
        columns: Vec<String>,
        /// Source table.
        table: String,
    },
    /// PostgreSQL `DISCARD ALL`.
    Discard,
    /// `BEGIN`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
    /// `SESSION <id>` — a session switch marker in a multi-session
    /// statement log.  Not SQL any real DBMS accepts; it stands in for
    /// "the following statements run on connection `id`", keeping
    /// interleaved logs flat so reduction and replay work unchanged.
    Session {
        /// The logical session (connection) id.
        id: u32,
    },
}

/// Statement categories matching Figure 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StatementKind {
    /// `CREATE TABLE`
    CreateTable,
    /// `INSERT`
    Insert,
    /// `SELECT`
    Select,
    /// `CREATE INDEX`
    CreateIndex,
    /// `ALTER TABLE`
    AlterTable,
    /// `UPDATE`
    Update,
    /// `DELETE`
    Delete,
    /// DBMS option (`PRAGMA` / `SET`)
    Option,
    /// `ANALYZE`
    Analyze,
    /// `REINDEX`
    Reindex,
    /// `VACUUM`
    Vacuum,
    /// `CREATE VIEW`
    CreateView,
    /// Transaction control
    Transaction,
    /// Session switch marker (multi-session logs)
    Session,
    /// `DROP INDEX`
    DropIndex,
    /// `DROP TABLE` / `DROP VIEW`
    Drop,
    /// MySQL `REPAIR TABLE` / `CHECK TABLE`
    RepairCheckTable,
    /// PostgreSQL `CREATE STATISTICS`
    CreateStats,
    /// PostgreSQL `DISCARD`
    Discard,
    /// `EXPLAIN`
    Explain,
}

impl StatementKind {
    /// A human-readable label matching the axis labels of Figure 3.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StatementKind::CreateTable => "CREATE TABLE",
            StatementKind::Insert => "INSERT",
            StatementKind::Select => "SELECT",
            StatementKind::CreateIndex => "CREATE INDEX",
            StatementKind::AlterTable => "ALTER TABLE",
            StatementKind::Update => "UPDATE",
            StatementKind::Delete => "DELETE",
            StatementKind::Option => "OPTION",
            StatementKind::Analyze => "ANALYZE",
            StatementKind::Reindex => "REINDEX",
            StatementKind::Vacuum => "VACUUM",
            StatementKind::CreateView => "CREATE VIEW",
            StatementKind::Transaction => "TRANSACTION",
            StatementKind::Session => "SESSION",
            StatementKind::DropIndex => "DROP INDEX",
            StatementKind::Drop => "DROP",
            StatementKind::RepairCheckTable => "REPAIR/CHECK TABLE",
            StatementKind::CreateStats => "CREATE STATS",
            StatementKind::Discard => "DISCARD",
            StatementKind::Explain => "EXPLAIN",
        }
    }
}

impl Statement {
    /// Classifies the statement for Figure 3 of the paper.
    #[must_use]
    pub fn kind(&self) -> StatementKind {
        match self {
            Statement::CreateTable(_) => StatementKind::CreateTable,
            Statement::CreateIndex(_) => StatementKind::CreateIndex,
            Statement::CreateView { .. } => StatementKind::CreateView,
            Statement::DropTable { .. } | Statement::DropView { .. } => StatementKind::Drop,
            Statement::DropIndex { .. } => StatementKind::DropIndex,
            Statement::AlterTable(_) => StatementKind::AlterTable,
            Statement::Insert(_) => StatementKind::Insert,
            Statement::Update(_) => StatementKind::Update,
            Statement::Delete(_) => StatementKind::Delete,
            Statement::Select(_) => StatementKind::Select,
            Statement::Explain(_) => StatementKind::Explain,
            Statement::Vacuum { .. } => StatementKind::Vacuum,
            Statement::Reindex { .. } => StatementKind::Reindex,
            Statement::Analyze { .. } => StatementKind::Analyze,
            Statement::CheckTable { .. } | Statement::RepairTable { .. } => {
                StatementKind::RepairCheckTable
            }
            Statement::Pragma { .. } | Statement::Set { .. } => StatementKind::Option,
            Statement::CreateStatistics { .. } => StatementKind::CreateStats,
            Statement::Discard => StatementKind::Discard,
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                StatementKind::Transaction
            }
            Statement::Session { .. } => StatementKind::Session,
        }
    }

    /// Returns `true` for statements that only read state (queries and
    /// `EXPLAIN`, which only consults the catalog).
    ///
    /// The match is exhaustive on purpose: a new statement variant must
    /// make an explicit read-only claim here before `Engine::query` will
    /// accept it, rather than silently inheriting write semantics (or
    /// worse, read-only semantics) from a wildcard arm.  Everything that
    /// is not a plain `SELECT`/`EXPLAIN` mutates catalog, data, session
    /// or transaction state — including `CHECK TABLE` (repair counters),
    /// `ANALYZE` (statistics) and `SET`/`PRAGMA` (session options).
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        match self {
            Statement::Select(_) | Statement::Explain(_) => true,
            Statement::CreateTable(_)
            | Statement::CreateIndex(_)
            | Statement::CreateView { .. }
            | Statement::CreateStatistics { .. }
            | Statement::DropTable { .. }
            | Statement::DropIndex { .. }
            | Statement::DropView { .. }
            | Statement::AlterTable(_)
            | Statement::Insert(_)
            | Statement::Update(_)
            | Statement::Delete(_)
            | Statement::Vacuum { .. }
            | Statement::Reindex { .. }
            | Statement::Analyze { .. }
            | Statement::CheckTable { .. }
            | Statement::RepairTable { .. }
            | Statement::Pragma { .. }
            | Statement::Set { .. }
            | Statement::Discard
            | Statement::Begin
            | Statement::Commit
            | Statement::Rollback
            | Statement::Session { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_kinds_cover_figure3_categories() {
        let ct = Statement::CreateTable(CreateTable::new("t0", vec![ColumnDef::new("c0", None)]));
        assert_eq!(ct.kind(), StatementKind::CreateTable);
        assert_eq!(ct.kind().label(), "CREATE TABLE");
        let set = Statement::Set {
            scope: SetScope::Global,
            name: "key_cache_division_limit".into(),
            value: Value::Integer(100),
        };
        assert_eq!(set.kind(), StatementKind::Option);
        let pragma = Statement::Pragma {
            name: "case_sensitive_like".into(),
            value: Some(Value::Integer(0)),
        };
        assert_eq!(pragma.kind(), StatementKind::Option);
        assert_eq!(Statement::Discard.kind().label(), "DISCARD");
        assert_eq!(
            Statement::CheckTable { table: "t0".into(), for_upgrade: true }.kind(),
            StatementKind::RepairCheckTable
        );
    }

    #[test]
    fn column_def_constraint_queries() {
        let mut def = ColumnDef::new("c0", Some(TypeName::Text));
        assert!(!def.has_primary_key());
        def.constraints.push(ColumnConstraint::PrimaryKey);
        def.constraints.push(ColumnConstraint::Collate(Collation::NoCase));
        assert!(def.has_primary_key());
        assert_eq!(def.collation(), Some(Collation::NoCase));
        assert!(!def.has_unique());
        assert!(!def.has_not_null());
    }

    #[test]
    fn select_constructors() {
        let s = Select::star(vec!["t0".into(), "t1".into()]);
        assert_eq!(s.from.len(), 2);
        assert!(matches!(s.items[0], SelectItem::Wildcard));
        let c = Select::constants(vec![Expr::int(3), Expr::null()]);
        assert!(c.from.is_empty());
        assert_eq!(c.items.len(), 2);
    }

    #[test]
    fn query_intersect_builder() {
        let q = Query::intersect(
            Query::select(Select::constants(vec![Expr::int(1)])),
            Query::select(Select::star(vec!["t0".into()])),
        );
        assert!(matches!(q, Query::Compound { op: CompoundOp::Intersect, .. }));
    }

    #[test]
    fn read_only_classification() {
        assert!(Statement::Select(Query::select(Select::star(vec!["t".into()]))).is_read_only());
        assert!(Statement::Explain(Query::select(Select::star(vec!["t".into()]))).is_read_only());
        assert!(!Statement::Vacuum { full: false }.is_read_only());
        // Statements that look like questions but touch session or
        // maintenance state must stay classified as writes.
        assert!(!Statement::CheckTable { table: "t".into(), for_upgrade: false }.is_read_only());
        assert!(!Statement::Analyze { target: None }.is_read_only());
        assert!(!Statement::Set {
            scope: SetScope::Global,
            name: "key_cache_division_limit".into(),
            value: Value::Integer(100),
        }
        .is_read_only());
        assert!(!Statement::Begin.is_read_only());
    }
}
