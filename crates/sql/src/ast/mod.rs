//! Abstract syntax tree types for SQL.

pub mod display;
pub mod expr;
pub mod stmt;

pub use display::render_script;
pub use expr::{AggFunc, BinaryOp, ColumnRef, Expr, ScalarFunc, TypeName, UnaryOp};
pub use stmt::{
    AlterTable, ColumnConstraint, ColumnDef, CompoundOp, CreateIndex, CreateTable, Delete,
    IndexedColumn, Insert, Join, JoinKind, OnConflict, OrderingTerm, Query, Select, SelectItem,
    SetScope, Statement, StatementKind, TableConstraint, TableEngine, Update,
};
