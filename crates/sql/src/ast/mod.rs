//! Abstract syntax tree types for SQL.

pub mod display;
pub mod expr;
pub mod shrink;
pub mod stmt;

pub use display::render_script;
pub use expr::{AggFunc, BinaryOp, ColumnRef, Expr, ScalarFunc, TypeName, UnaryOp};
pub use shrink::{
    shrink_expr, shrink_query, shrink_select, shrink_statement, statement_expr_nodes,
    statement_weight,
};
pub use stmt::{
    AlterTable, ColumnConstraint, ColumnDef, CompoundOp, CreateIndex, CreateTable, Delete,
    IndexedColumn, Insert, Join, JoinKind, OnConflict, OrderingTerm, Query, Select, SelectItem,
    SetScope, Statement, StatementKind, TableConstraint, TableEngine, Update,
};
