//! One-step reduction rewrites for expressions and statements.
//!
//! The hierarchical reducer's expression-level pass (SQLancer §4.1 shrinks
//! *statements*; shrinking the surviving statements' expression trees is
//! what makes Figure 2's reproductions a handful of readable lines) asks
//! for all ways to make a statement *one step smaller*: replace a
//! predicate by one of its subtrees or by a literal, drop a `SELECT`
//! item, a join arm, or one branch of a compound query.  Each candidate
//! is re-verified by replaying it, so the rewrites here only need to be
//! syntactically valid — semantics are judged by the replay, never
//! assumed.
//!
//! Two invariants every function in this module upholds:
//!
//! 1. **Strict progress.** Every candidate has a strictly smaller
//!    [`statement_weight`] than its input, so a greedy loop that accepts
//!    any candidate terminates.
//! 2. **Display/parse stability.** Every candidate renders to SQL that
//!    reparses and re-renders identically (the reducer hashes statements
//!    by their rendering, and reduced test cases are reported as SQL
//!    text).  The round-trip tests below pin this for every rewrite arm
//!    across the four dialects' statement shapes.

use crate::ast::expr::Expr;
use crate::ast::stmt::{CreateIndex, Query, Select, Statement};

/// All one-step shrinks of an expression: each direct child subtree
/// (left to right), then the canonical literals `NULL`, `0`, `1`.
/// Leaves (literals and column references) have no shrinks.  Every
/// candidate has strictly fewer nodes than the input, and duplicates are
/// removed (first occurrence wins), so the list is finite, ordered and
/// deterministic.
#[must_use]
pub fn shrink_expr(expr: &Expr) -> Vec<Expr> {
    if matches!(expr, Expr::Literal(_) | Expr::Column(_)) {
        return Vec::new();
    }
    let mut out: Vec<Expr> = Vec::new();
    expr.for_each_child(&mut |child| {
        if !out.contains(child) {
            out.push(child.clone());
        }
    });
    for lit in [Expr::null(), Expr::int(0), Expr::int(1)] {
        if !out.contains(&lit) {
            out.push(lit);
        }
    }
    out
}

/// All one-step shrinks of a statement, in a deterministic order.
///
/// Covered statements: `SELECT` / `EXPLAIN` (via [`shrink_query`]),
/// `CREATE VIEW` (its defining query), `UPDATE` / `DELETE` (their
/// `WHERE` clauses, plus dropping surplus `SET` assignments), `INSERT`
/// (dropping surplus value rows) and `CREATE INDEX` (its partial-index
/// `WHERE` clause).  Everything else — DDL whose shape later statements
/// depend on, transaction control, session markers — has no shrinks; the
/// statement-level passes already drop those whole.
#[must_use]
pub fn shrink_statement(stmt: &Statement) -> Vec<Statement> {
    match stmt {
        Statement::Select(q) => shrink_query(q).into_iter().map(Statement::Select).collect(),
        Statement::Explain(q) => shrink_query(q).into_iter().map(Statement::Explain).collect(),
        Statement::CreateView { name, query } => shrink_select(query)
            .into_iter()
            .map(|query| Statement::CreateView { name: name.clone(), query })
            .collect(),
        Statement::Update(u) => {
            let mut out = Vec::new();
            if u.assignments.len() > 1 {
                for i in 0..u.assignments.len() {
                    let mut v = u.clone();
                    v.assignments.remove(i);
                    out.push(Statement::Update(v));
                }
            }
            for w in shrink_clause(&u.where_clause) {
                let mut v = u.clone();
                v.where_clause = w;
                out.push(Statement::Update(v));
            }
            out
        }
        Statement::Delete(d) => shrink_clause(&d.where_clause)
            .into_iter()
            .map(|w| {
                let mut v = d.clone();
                v.where_clause = w;
                Statement::Delete(v)
            })
            .collect(),
        Statement::Insert(ins) => {
            let mut out = Vec::new();
            if ins.rows.len() > 1 {
                for i in 0..ins.rows.len() {
                    let mut v = ins.clone();
                    v.rows.remove(i);
                    out.push(Statement::Insert(v));
                }
            }
            out
        }
        Statement::CreateIndex(ci) => shrink_clause(&ci.where_clause)
            .into_iter()
            .map(|w| Statement::CreateIndex(CreateIndex { where_clause: w, ..ci.clone() }))
            .collect(),
        _ => Vec::new(),
    }
}

/// All one-step shrinks of a query: a compound query shrinks to either
/// whole branch, or to the compound with one branch shrunk in place; a
/// plain `SELECT` shrinks via [`shrink_select`].
#[must_use]
pub fn shrink_query(query: &Query) -> Vec<Query> {
    match query {
        Query::Select(s) => shrink_select(s).into_iter().map(Query::select).collect(),
        Query::Compound { left, op, right } => {
            let mut out = vec![(**left).clone(), (**right).clone()];
            for l in shrink_query(left) {
                out.push(Query::Compound { left: Box::new(l), op: *op, right: right.clone() });
            }
            for r in shrink_query(right) {
                out.push(Query::Compound { left: left.clone(), op: *op, right: Box::new(r) });
            }
            out
        }
    }
}

/// All one-step shrinks of a `SELECT` body, in order: simplify the
/// `WHERE` clause (drop it, then each [`shrink_expr`] rewrite), simplify
/// `HAVING` the same way, drop one projected item (never the last one),
/// drop one join arm, drop one `GROUP BY` expression, drop one
/// `ORDER BY` term, drop `LIMIT`, drop `OFFSET`.
#[must_use]
pub fn shrink_select(select: &Select) -> Vec<Select> {
    let mut out = Vec::new();
    for w in shrink_clause(&select.where_clause) {
        let mut v = select.clone();
        v.where_clause = w;
        out.push(v);
    }
    for h in shrink_clause(&select.having) {
        let mut v = select.clone();
        v.having = h;
        out.push(v);
    }
    if select.items.len() > 1 {
        for i in 0..select.items.len() {
            let mut v = select.clone();
            v.items.remove(i);
            out.push(v);
        }
    }
    for i in 0..select.joins.len() {
        let mut v = select.clone();
        v.joins.remove(i);
        out.push(v);
    }
    for i in 0..select.group_by.len() {
        let mut v = select.clone();
        v.group_by.remove(i);
        out.push(v);
    }
    for i in 0..select.order_by.len() {
        let mut v = select.clone();
        v.order_by.remove(i);
        out.push(v);
    }
    if select.limit.is_some() {
        let mut v = select.clone();
        v.limit = None;
        out.push(v);
    }
    if select.offset.is_some() {
        let mut v = select.clone();
        v.offset = None;
        out.push(v);
    }
    out
}

/// Shrinks an optional clause: drop it entirely, then keep it with each
/// one-step expression shrink applied.
fn shrink_clause(clause: &Option<Expr>) -> Vec<Option<Expr>> {
    match clause {
        None => Vec::new(),
        Some(e) => std::iter::once(None).chain(shrink_expr(e).into_iter().map(Some)).collect(),
    }
}

/// Total number of expression nodes appearing anywhere in a statement —
/// the "expression size" half of the reduced-test-case metric
/// (statement count is the other half).
#[must_use]
pub fn statement_expr_nodes(stmt: &Statement) -> usize {
    let mut total = 0;
    for_each_statement_expr(stmt, &mut |e| total += e.node_count());
    total
}

/// A strictly decreasing measure over the shrink rewrites: expression
/// nodes plus every droppable structural element (items, joins,
/// `GROUP BY` / `ORDER BY` terms, `LIMIT` / `OFFSET`, `INSERT` rows,
/// `UPDATE` assignments).  Every candidate [`shrink_statement`] returns
/// weighs strictly less than its input, which is what guarantees the
/// expression pass terminates.
#[must_use]
pub fn statement_weight(stmt: &Statement) -> usize {
    let mut weight = statement_expr_nodes(stmt);
    let mut add_select = |s: &Select| {
        weight += s.items.len()
            + s.joins.len()
            + s.group_by.len()
            + s.order_by.len()
            + usize::from(s.limit.is_some())
            + usize::from(s.offset.is_some())
            + usize::from(s.where_clause.is_some())
            + usize::from(s.having.is_some());
    };
    fn walk_query(q: &Query, f: &mut impl FnMut(&Select)) {
        match q {
            Query::Select(s) => f(s),
            Query::Compound { left, right, .. } => {
                walk_query(left, f);
                walk_query(right, f);
            }
        }
    }
    match stmt {
        Statement::Select(q) | Statement::Explain(q) => walk_query(q, &mut add_select),
        Statement::CreateView { query, .. } => add_select(query),
        Statement::Insert(ins) => weight += ins.rows.len(),
        Statement::Update(u) => {
            weight += u.assignments.len() + usize::from(u.where_clause.is_some());
        }
        Statement::Delete(d) => weight += usize::from(d.where_clause.is_some()),
        Statement::CreateIndex(ci) => weight += usize::from(ci.where_clause.is_some()),
        _ => {}
    }
    weight
}

/// Visits every expression tree rooted in the statement (clauses,
/// projections, value rows, index columns, constraints).
fn for_each_statement_expr(stmt: &Statement, f: &mut impl FnMut(&Expr)) {
    use crate::ast::stmt::{ColumnConstraint, SelectItem, TableConstraint};
    let visit_select = |s: &Select, f: &mut dyn FnMut(&Expr)| {
        for item in &s.items {
            if let SelectItem::Expr { expr, .. } = item {
                f(expr);
            }
        }
        for join in &s.joins {
            if let Some(on) = &join.on {
                f(on);
            }
        }
        if let Some(w) = &s.where_clause {
            f(w);
        }
        for g in &s.group_by {
            f(g);
        }
        if let Some(h) = &s.having {
            f(h);
        }
        for o in &s.order_by {
            f(&o.expr);
        }
    };
    fn visit_query(q: &Query, f: &mut impl FnMut(&Select)) {
        match q {
            Query::Select(s) => f(s),
            Query::Compound { left, right, .. } => {
                visit_query(left, f);
                visit_query(right, f);
            }
        }
    }
    match stmt {
        Statement::Select(q) | Statement::Explain(q) => {
            visit_query(q, &mut |s| visit_select(s, f));
        }
        Statement::CreateView { query, .. } => visit_select(query, f),
        Statement::Insert(ins) => {
            for row in &ins.rows {
                for e in row {
                    f(e);
                }
            }
        }
        Statement::Update(u) => {
            for (_, e) in &u.assignments {
                f(e);
            }
            if let Some(w) = &u.where_clause {
                f(w);
            }
        }
        Statement::Delete(d) => {
            if let Some(w) = &d.where_clause {
                f(w);
            }
        }
        Statement::CreateIndex(ci) => {
            for c in &ci.columns {
                f(&c.expr);
            }
            if let Some(w) = &ci.where_clause {
                f(w);
            }
        }
        Statement::CreateTable(ct) => {
            for col in &ct.columns {
                for c in &col.constraints {
                    if let ColumnConstraint::Check(e) = c {
                        f(e);
                    }
                }
            }
            for c in &ct.constraints {
                if let TableConstraint::Check(e) = c {
                    f(e);
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, parse_statement};

    /// Dialect-shaped statements covering every shrink arm: SQLite
    /// (partial indexes, `WITHOUT ROWID`, `IS NOT`), MySQL (`<=>`,
    /// `ENGINE = MEMORY`, multi-row inserts), PostgreSQL (compound
    /// queries, `SERIAL`-style DDL idioms) and DuckDB (plain analytic
    /// shapes with grouping and ordering).
    const DIALECT_STATEMENTS: &[&str] = &[
        // SQLite-shaped (Listing 1 of the paper lives here).
        "SELECT t0.c0 FROM t0 WHERE ((t0.c0 IS NOT 1) AND (LENGTH(t0.c0) > 0)) ORDER BY t0.c0 DESC LIMIT 10 OFFSET 2",
        "CREATE INDEX i0 ON t0(c0 DESC) WHERE ((c0 NOT NULL) AND (c0 > 3))",
        "UPDATE t0 SET c0 = (t0.c0 + 1), c1 = 'x' WHERE (t0.c0 BETWEEN 1 AND (3 + 4))",
        "DELETE FROM t0 WHERE (t0.c0 IN (1, 2, (3 * 4)))",
        // MySQL-shaped.
        "SELECT t0.c0, t1.c1 FROM t0 INNER JOIN t1 ON (t0.c0 <=> t1.c0) LEFT JOIN t2 ON (t2.c0 = t0.c0) WHERE (NOT (t0.c0 = 0))",
        "INSERT INTO t0(c0, c1) VALUES (1, 'a'), ((2 + 3), UPPER('b')), (NULL, 'c')",
        // PostgreSQL-shaped.
        "SELECT t0.c0 FROM t0 WHERE (t0.c0 > 0) UNION ALL SELECT t1.c0 FROM t1 WHERE (t1.c0 IS NULL)",
        "SELECT COUNT(*), t0.c0 FROM t0 GROUP BY t0.c0, t0.c1 HAVING (COUNT(*) > 1)",
        // DuckDB-shaped.
        "SELECT DISTINCT t0.c0, (t0.c1 * 2) FROM t0 WHERE (CASE WHEN (t0.c0 > 0) THEN (t0.c1 = 1) ELSE (t0.c1 IS NULL) END) ORDER BY t0.c0, t0.c1 DESC",
        "CREATE VIEW v0 AS SELECT t0.c0, MIN(t0.c1, 0) FROM t0 WHERE ((t0.c0 LIKE 'a%') OR (t0.c0 = CAST(1 AS TEXT)))",
    ];

    /// Recursively explores shrink candidates (every candidate plus the
    /// candidates of accepted candidates, to a fixpoint) and applies the
    /// check to each.  Because every shrink strictly reduces the weight,
    /// the exploration always terminates.
    fn for_all_shrinks(stmt: &Statement, check: &mut impl FnMut(&Statement)) {
        for candidate in shrink_statement(stmt) {
            check(&candidate);
            for_all_shrinks(&candidate, check);
        }
    }

    #[test]
    fn every_shrink_step_round_trips_through_the_parser() {
        for sql in DIALECT_STATEMENTS {
            let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let mut shrinks = 0;
            for_all_shrinks(&stmt, &mut |candidate| {
                shrinks += 1;
                let rendered = candidate.to_string();
                let reparsed = parse_statement(&rendered).unwrap_or_else(|e| {
                    panic!("shrink of {sql:?} does not reparse: {rendered:?}: {e}")
                });
                assert_eq!(
                    reparsed.to_string(),
                    rendered,
                    "display/parse round-trip unstable for a shrink of {sql:?}"
                );
            });
            assert!(shrinks > 0, "no shrink explored for {sql:?}");
        }
    }

    #[test]
    fn every_shrink_step_strictly_reduces_the_weight() {
        for sql in DIALECT_STATEMENTS {
            let stmt = parse_statement(sql).unwrap();
            let weight = statement_weight(&stmt);
            for candidate in shrink_statement(&stmt) {
                assert!(
                    statement_weight(&candidate) < weight,
                    "shrink did not reduce weight: {candidate} (from {sql})"
                );
            }
        }
    }

    #[test]
    fn expr_shrinks_are_children_then_literals() {
        let e = parse_expression("((c0 = 1) AND (c1 IS NULL))").unwrap();
        let shrinks = shrink_expr(&e);
        assert_eq!(shrinks[0].to_string(), "(c0 = 1)");
        assert_eq!(shrinks[1].to_string(), "(c1 IS NULL)");
        assert_eq!(shrinks[2].to_string(), "NULL");
        assert_eq!(shrinks[3].to_string(), "0");
        assert_eq!(shrinks[4].to_string(), "1");
        assert!(shrinks.iter().all(|s| s.node_count() < e.node_count()));
    }

    #[test]
    fn leaves_do_not_shrink() {
        assert!(shrink_expr(&Expr::int(3)).is_empty());
        assert!(shrink_expr(&Expr::col("c0")).is_empty());
        // Duplicate children and literal children are deduplicated.
        let e = parse_expression("(0 AND 0)").unwrap();
        assert_eq!(shrink_expr(&e).len(), 3, "0 appears once: {:?}", shrink_expr(&e));
    }

    #[test]
    fn select_never_shrinks_to_zero_items() {
        let stmt = parse_statement("SELECT t0.c0 FROM t0 WHERE (t0.c0 = 1)").unwrap();
        let mut seen = 0;
        for_all_shrinks(&stmt, &mut |candidate| {
            seen += 1;
            if let Statement::Select(Query::Select(s)) = candidate {
                assert!(!s.items.is_empty());
            }
        });
        assert!(seen > 0);
    }

    #[test]
    fn expr_node_counting_covers_all_clauses() {
        let stmt = parse_statement(
            "SELECT (t0.c0 + 1) FROM t0 INNER JOIN t1 ON (t0.c0 = t1.c0) \
             WHERE (t0.c0 > 0) GROUP BY t0.c0 HAVING (COUNT(*) > 1) ORDER BY (t0.c0 * 2)",
        )
        .unwrap();
        // items: 3, join on: 3, where: 3, group: 1, having: 3 (agg+lit+binary), order: 3.
        assert_eq!(statement_expr_nodes(&stmt), 16);
        assert_eq!(statement_expr_nodes(&parse_statement("COMMIT").unwrap()), 0);
    }
}
