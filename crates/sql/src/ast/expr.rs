//! SQL expression AST.
//!
//! The node set mirrors the expression generator in the paper (Algorithm 1):
//! literals, column references, unary and binary operators, `BETWEEN`, `IN`,
//! `CASE`, `CAST`, `LIKE`, `COLLATE`, scalar functions and aggregate
//! functions.  The same nodes are evaluated by two *independent*
//! implementations: the DBMS engine (`lancer-engine`) and the PQS ground-truth
//! interpreter (`lancer-core::interp`), exactly as in SQLancer.

use serde::{Deserialize, Serialize};

use crate::collation::Collation;
use crate::value::Value;

/// A reference to a column, optionally qualified with a table name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// The table (or alias) qualifier, if any.
    pub table: Option<String>,
    /// The column name.
    pub column: String,
}

impl ColumnRef {
    /// Creates an unqualified column reference.
    #[must_use]
    pub fn unqualified(column: impl Into<String>) -> Self {
        ColumnRef { table: None, column: column.into() }
    }

    /// Creates a table-qualified column reference.
    #[must_use]
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef { table: Some(table.into()), column: column.into() }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical negation (`NOT`).
    Not,
    /// Arithmetic negation (`-`).
    Neg,
    /// Arithmetic identity (`+`).
    Plus,
    /// Bitwise complement (`~`).
    BitNot,
}

impl UnaryOp {
    /// All unary operators, for random selection by generators.
    pub const ALL: [UnaryOp; 4] = [UnaryOp::Not, UnaryOp::Neg, UnaryOp::Plus, UnaryOp::BitNot];
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||` string concatenation.
    Concat,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `<<`
    ShiftLeft,
    /// `>>`
    ShiftRight,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `IS` — null-safe equality (SQLite).
    Is,
    /// `IS NOT` — null-safe inequality (SQLite; the operator behind the
    /// motivating bug in Listing 1 of the paper).
    IsNot,
    /// `<=>` — MySQL's null-safe equality operator.
    NullSafeEq,
    /// Logical `AND`.
    And,
    /// Logical `OR`.
    Or,
}

impl BinaryOp {
    /// Comparison operators that always produce a boolean-typed result.
    pub const COMPARISONS: [BinaryOp; 6] =
        [BinaryOp::Eq, BinaryOp::Ne, BinaryOp::Lt, BinaryOp::Le, BinaryOp::Gt, BinaryOp::Ge];

    /// Arithmetic operators.
    pub const ARITHMETIC: [BinaryOp; 5] =
        [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div, BinaryOp::Mod];

    /// Returns `true` if the operator yields a boolean-like result.
    #[must_use]
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::Is
                | BinaryOp::IsNot
                | BinaryOp::NullSafeEq
                | BinaryOp::And
                | BinaryOp::Or
        )
    }
}

/// Declared column / cast target types.
///
/// The set is the union of what the three dialect profiles support; each
/// dialect restricts which of these it accepts (e.g. `Unsigned` and
/// `TinyInt` are MySQL-only, `Serial` is PostgreSQL-only, omitting the type
/// entirely is SQLite-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeName {
    /// Generic signed 64-bit integer (`INT` / `INTEGER`).
    Integer,
    /// MySQL `TINYINT` (range -128..=127).
    TinyInt,
    /// MySQL `INT UNSIGNED` (range 0..=u32::MAX modelled as 0..=2^63-1 clamp).
    Unsigned,
    /// Double-precision float (`REAL` / `DOUBLE`).
    Real,
    /// Character data (`TEXT` / `VARCHAR`).
    Text,
    /// Binary data (`BLOB` / `BYTEA`).
    Blob,
    /// Boolean (`BOOLEAN`).
    Boolean,
    /// PostgreSQL auto-incrementing `SERIAL`.
    Serial,
}

impl TypeName {
    /// All type names, for random selection by generators.
    pub const ALL: [TypeName; 8] = [
        TypeName::Integer,
        TypeName::TinyInt,
        TypeName::Unsigned,
        TypeName::Real,
        TypeName::Text,
        TypeName::Blob,
        TypeName::Boolean,
        TypeName::Serial,
    ];
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarFunc {
    /// `ABS(x)`
    Abs,
    /// `LENGTH(x)`
    Length,
    /// `LOWER(x)`
    Lower,
    /// `UPPER(x)`
    Upper,
    /// `COALESCE(x, ...)`
    Coalesce,
    /// `IFNULL(x, y)`
    IfNull,
    /// `NULLIF(x, y)`
    NullIf,
    /// Scalar `MIN(x, ...)` (SQLite multi-argument min).
    Min,
    /// Scalar `MAX(x, ...)` (SQLite multi-argument max).
    Max,
    /// `HEX(x)`
    Hex,
    /// `TYPEOF(x)`
    TypeOf,
    /// `TRIM(x)`
    Trim,
    /// `LTRIM(x)`
    Ltrim,
    /// `RTRIM(x)`
    Rtrim,
    /// `REPLACE(x, from, to)`
    Replace,
    /// `SUBSTR(x, start[, len])`
    Substr,
    /// `INSTR(haystack, needle)`
    Instr,
}

impl ScalarFunc {
    /// All scalar functions, for random selection by generators.
    pub const ALL: [ScalarFunc; 17] = [
        ScalarFunc::Abs,
        ScalarFunc::Length,
        ScalarFunc::Lower,
        ScalarFunc::Upper,
        ScalarFunc::Coalesce,
        ScalarFunc::IfNull,
        ScalarFunc::NullIf,
        ScalarFunc::Min,
        ScalarFunc::Max,
        ScalarFunc::Hex,
        ScalarFunc::TypeOf,
        ScalarFunc::Trim,
        ScalarFunc::Ltrim,
        ScalarFunc::Rtrim,
        ScalarFunc::Replace,
        ScalarFunc::Substr,
        ScalarFunc::Instr,
    ];

    /// The SQL name of the function.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Length => "LENGTH",
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Coalesce => "COALESCE",
            ScalarFunc::IfNull => "IFNULL",
            ScalarFunc::NullIf => "NULLIF",
            ScalarFunc::Min => "MIN",
            ScalarFunc::Max => "MAX",
            ScalarFunc::Hex => "HEX",
            ScalarFunc::TypeOf => "TYPEOF",
            ScalarFunc::Trim => "TRIM",
            ScalarFunc::Ltrim => "LTRIM",
            ScalarFunc::Rtrim => "RTRIM",
            ScalarFunc::Replace => "REPLACE",
            ScalarFunc::Substr => "SUBSTR",
            ScalarFunc::Instr => "INSTR",
        }
    }

    /// The accepted argument-count range for this function.
    #[must_use]
    pub fn arity(self) -> (usize, usize) {
        match self {
            ScalarFunc::Abs
            | ScalarFunc::Length
            | ScalarFunc::Lower
            | ScalarFunc::Upper
            | ScalarFunc::Hex
            | ScalarFunc::TypeOf
            | ScalarFunc::Trim
            | ScalarFunc::Ltrim
            | ScalarFunc::Rtrim => (1, 1),
            ScalarFunc::IfNull | ScalarFunc::NullIf | ScalarFunc::Instr => (2, 2),
            ScalarFunc::Replace => (3, 3),
            ScalarFunc::Substr => (2, 3),
            ScalarFunc::Coalesce => (1, 4),
            // Single-argument MIN/MAX is the aggregate form; the scalar
            // functions require at least two arguments, which also keeps the
            // rendered SQL unambiguous.
            ScalarFunc::Min | ScalarFunc::Max => (2, 4),
        }
    }

    /// Parses a function name (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<ScalarFunc> {
        let upper = name.to_ascii_uppercase();
        ScalarFunc::ALL.into_iter().find(|f| f.name() == upper)
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(x)` / `COUNT(*)`
    Count,
    /// `SUM(x)`
    Sum,
    /// `AVG(x)`
    Avg,
    /// `MIN(x)`
    Min,
    /// `MAX(x)`
    Max,
}

impl AggFunc {
    /// All aggregate functions, for random selection by generators.
    pub const ALL: [AggFunc; 5] =
        [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];

    /// The SQL name of the aggregate.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Parses an aggregate name (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<AggFunc> {
        let upper = name.to_ascii_uppercase();
        AggFunc::ALL.into_iter().find(|f| f.name() == upper)
    }
}

/// A SQL expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal constant.
    Literal(Value),
    /// A column reference.
    Column(ColumnRef),
    /// A unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operator application.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `x [NOT] LIKE pattern`
    Like {
        /// Whether the result is negated.
        negated: bool,
        /// The matched expression.
        expr: Box<Expr>,
        /// The pattern expression.
        pattern: Box<Expr>,
    },
    /// `x [NOT] BETWEEN low AND high`
    Between {
        /// Whether the result is negated.
        negated: bool,
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
    /// `x [NOT] IN (a, b, ...)`
    InList {
        /// Whether the result is negated.
        negated: bool,
        /// The tested expression.
        expr: Box<Expr>,
        /// The list members.
        list: Vec<Expr>,
    },
    /// `x IS [NOT] NULL`
    IsNull {
        /// Whether this is `IS NOT NULL`.
        negated: bool,
        /// The tested expression.
        expr: Box<Expr>,
    },
    /// `CAST(x AS type)`
    Cast {
        /// The cast operand.
        expr: Box<Expr>,
        /// The target type.
        type_name: TypeName,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`
    Case {
        /// Optional operand for the "simple" CASE form.
        operand: Option<Box<Expr>>,
        /// `WHEN cond THEN result` pairs.
        branches: Vec<(Expr, Expr)>,
        /// Optional `ELSE` result.
        else_expr: Option<Box<Expr>>,
    },
    /// A scalar function call.
    Function {
        /// The function.
        func: ScalarFunc,
        /// The arguments.
        args: Vec<Expr>,
    },
    /// An aggregate function call (only valid in `SELECT` / `HAVING`).
    Aggregate {
        /// The aggregate.
        func: AggFunc,
        /// The aggregated expression; `None` means `COUNT(*)`.
        arg: Option<Box<Expr>>,
        /// Whether `DISTINCT` applies to the aggregated values.
        distinct: bool,
    },
    /// `expr COLLATE collation`
    Collate {
        /// The collated expression.
        expr: Box<Expr>,
        /// The collation.
        collation: Collation,
    },
}

impl Expr {
    /// Literal constructor.
    #[must_use]
    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    /// Integer literal constructor.
    #[must_use]
    pub fn int(i: i64) -> Expr {
        Expr::Literal(Value::Integer(i))
    }

    /// Text literal constructor.
    #[must_use]
    pub fn text(s: impl Into<String>) -> Expr {
        Expr::Literal(Value::Text(s.into()))
    }

    /// NULL literal constructor.
    #[must_use]
    pub fn null() -> Expr {
        Expr::Literal(Value::Null)
    }

    /// Unqualified column constructor.
    #[must_use]
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::unqualified(name))
    }

    /// Qualified column constructor.
    #[must_use]
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::qualified(table, name))
    }

    /// Wraps the expression in a `NOT`.
    ///
    /// A builder, not a logic operator — the AST builder API reads as
    /// `expr.not()`, so the trait-method name collision is intentional.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Expr {
        Expr::Unary { op: UnaryOp::Not, expr: Box::new(self) }
    }

    /// Appends `IS NULL`.
    #[must_use]
    pub fn is_null(self) -> Expr {
        Expr::IsNull { negated: false, expr: Box::new(self) }
    }

    /// Combines two expressions with `AND`.
    #[must_use]
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary { op: BinaryOp::And, left: Box::new(self), right: Box::new(other) }
    }

    /// Combines two expressions with `OR`.
    #[must_use]
    pub fn or(self, other: Expr) -> Expr {
        Expr::Binary { op: BinaryOp::Or, left: Box::new(self), right: Box::new(other) }
    }

    /// Builds a binary comparison.
    #[must_use]
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// Builds `left = right`.
    #[must_use]
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, self, other)
    }

    /// Builds a single-branch searched case:
    /// `CASE WHEN when THEN then ELSE else_expr END`.
    ///
    /// This is the shape of the NoREC rewrite (Rigger & Su): wrapping a
    /// predicate `p` as `CASE WHEN p THEN 1 ELSE 0 END` moves it out of
    /// the `WHERE` clause — and therefore out of the reach of every
    /// filter-level optimisation — while preserving its ternary logic
    /// (`NULL` falls through to the `ELSE` arm).
    #[must_use]
    pub fn case_when(when: Expr, then: Expr, else_expr: Expr) -> Expr {
        Expr::Case {
            operand: None,
            branches: vec![(when, then)],
            else_expr: Some(Box::new(else_expr)),
        }
    }

    /// Returns the number of nodes in the expression tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        let mut count = 1;
        self.for_each_child(&mut |child| count += child.node_count());
        count
    }

    /// Returns the maximum depth of the expression tree.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut max_child = 0;
        self.for_each_child(&mut |child| max_child = max_child.max(child.depth()));
        1 + max_child
    }

    /// Visits every direct child expression.
    pub fn for_each_child<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match self {
            Expr::Literal(_) | Expr::Column(_) => {}
            Expr::Unary { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Collate { expr, .. } => f(expr),
            Expr::Binary { left, right, .. } => {
                f(left);
                f(right);
            }
            Expr::Like { expr, pattern, .. } => {
                f(expr);
                f(pattern);
            }
            Expr::Between { expr, low, high, .. } => {
                f(expr);
                f(low);
                f(high);
            }
            Expr::InList { expr, list, .. } => {
                f(expr);
                for e in list {
                    f(e);
                }
            }
            Expr::Case { operand, branches, else_expr } => {
                if let Some(op) = operand {
                    f(op);
                }
                for (w, t) in branches {
                    f(w);
                    f(t);
                }
                if let Some(e) = else_expr {
                    f(e);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
        }
    }

    /// Collects all column references in the expression.
    #[must_use]
    pub fn column_refs(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a ColumnRef>) {
            if let Expr::Column(c) = e {
                out.push(c);
            }
            e.for_each_child(&mut |child| walk(child, out));
        }
        walk(self, &mut out);
        out
    }

    /// Returns `true` if the expression contains an aggregate function call.
    #[must_use]
    pub fn contains_aggregate(&self) -> bool {
        if matches!(self, Expr::Aggregate { .. }) {
            return true;
        }
        let mut found = false;
        self.for_each_child(&mut |child| found = found || child.contains_aggregate());
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_helpers_produce_expected_shapes() {
        let e = Expr::col("c0").eq(Expr::int(3)).and(Expr::qcol("t0", "c1").not());
        assert_eq!(e.node_count(), 6);
        assert_eq!(e.depth(), 3);
        assert_eq!(e.column_refs().len(), 2);
        assert!(!e.contains_aggregate());
    }

    #[test]
    fn aggregate_detection_is_recursive() {
        let e = Expr::Function {
            func: ScalarFunc::Coalesce,
            args: vec![
                Expr::Aggregate {
                    func: AggFunc::Sum,
                    arg: Some(Box::new(Expr::col("c0"))),
                    distinct: false,
                },
                Expr::int(0),
            ],
        };
        assert!(e.contains_aggregate());
    }

    #[test]
    fn function_arity_covers_all() {
        for f in ScalarFunc::ALL {
            let (lo, hi) = f.arity();
            assert!(lo >= 1 && hi >= lo, "bad arity for {f:?}");
            assert_eq!(ScalarFunc::parse(f.name()), Some(f));
            assert_eq!(ScalarFunc::parse(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(ScalarFunc::parse("NOPE"), None);
    }

    #[test]
    fn agg_parse_round_trip() {
        for f in AggFunc::ALL {
            assert_eq!(AggFunc::parse(f.name()), Some(f));
        }
    }

    #[test]
    fn case_when_builds_the_norec_shape() {
        let e = Expr::case_when(Expr::col("c0").eq(Expr::int(1)), Expr::int(1), Expr::int(0));
        assert_eq!(e.to_string(), "CASE WHEN (c0 = 1) THEN 1 ELSE 0 END");
        match e {
            Expr::Case { operand: None, branches, else_expr: Some(_) } => {
                assert_eq!(branches.len(), 1);
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn between_children_visited() {
        let e = Expr::Between {
            negated: true,
            expr: Box::new(Expr::col("a")),
            low: Box::new(Expr::int(1)),
            high: Box::new(Expr::int(2)),
        };
        let mut n = 0;
        e.for_each_child(&mut |_| n += 1);
        assert_eq!(n, 3);
    }
}
