//! The SQL value model shared by the engine, the storage layer and the PQS
//! AST interpreter.
//!
//! The model follows SQLite's *storage class* design: a value is one of
//! `NULL`, `INTEGER`, `REAL`, `TEXT`, `BLOB` or `BOOLEAN`.  The `BOOLEAN`
//! storage class only exists in the PostgreSQL-like dialect; the SQLite-like
//! and MySQL-like dialects represent booleans as the integers `0` and `1`.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::collation::Collation;

/// A single SQL scalar value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// The SQL `NULL` marker.
    Null,
    /// A 64-bit signed integer.
    Integer(i64),
    /// A double-precision floating point number.
    Real(f64),
    /// A text string.
    Text(String),
    /// A binary blob.
    Blob(Vec<u8>),
    /// A boolean (PostgreSQL-like dialect only).
    Boolean(bool),
}

/// The storage class of a [`Value`], mirroring SQLite's `typeof()` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageClass {
    /// `NULL`.
    Null,
    /// `INTEGER`.
    Integer,
    /// `REAL`.
    Real,
    /// `TEXT`.
    Text,
    /// `BLOB`.
    Blob,
    /// `BOOLEAN` (PostgreSQL-like dialect only).
    Boolean,
}

impl fmt::Display for StorageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StorageClass::Null => "null",
            StorageClass::Integer => "integer",
            StorageClass::Real => "real",
            StorageClass::Text => "text",
            StorageClass::Blob => "blob",
            StorageClass::Boolean => "boolean",
        };
        f.write_str(s)
    }
}

/// SQL three-valued logic: `TRUE`, `FALSE`, or `NULL` (unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TriBool {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (`NULL` in a boolean context).
    Unknown,
}

impl TriBool {
    /// Three-valued logical AND.
    #[must_use]
    pub fn and(self, other: TriBool) -> TriBool {
        match (self, other) {
            (TriBool::False, _) | (_, TriBool::False) => TriBool::False,
            (TriBool::True, TriBool::True) => TriBool::True,
            _ => TriBool::Unknown,
        }
    }

    /// Three-valued logical OR.
    #[must_use]
    pub fn or(self, other: TriBool) -> TriBool {
        match (self, other) {
            (TriBool::True, _) | (_, TriBool::True) => TriBool::True,
            (TriBool::False, TriBool::False) => TriBool::False,
            _ => TriBool::Unknown,
        }
    }

    /// Three-valued logical NOT.
    ///
    /// Also available as the `!` operator; the method form reads better in
    /// evaluator code chained off comparisons.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> TriBool {
        match self {
            TriBool::True => TriBool::False,
            TriBool::False => TriBool::True,
            TriBool::Unknown => TriBool::Unknown,
        }
    }

    /// Returns `true` only for [`TriBool::True`].
    #[must_use]
    pub fn is_true(self) -> bool {
        self == TriBool::True
    }

    /// Converts the tri-state back into a [`Value`] using integers for
    /// true/false (SQLite/MySQL convention).
    #[must_use]
    pub fn to_int_value(self) -> Value {
        match self {
            TriBool::True => Value::Integer(1),
            TriBool::False => Value::Integer(0),
            TriBool::Unknown => Value::Null,
        }
    }

    /// Converts the tri-state back into a [`Value`] using booleans
    /// (PostgreSQL convention).
    #[must_use]
    pub fn to_bool_value(self) -> Value {
        match self {
            TriBool::True => Value::Boolean(true),
            TriBool::False => Value::Boolean(false),
            TriBool::Unknown => Value::Null,
        }
    }

    /// Builds a tri-state from an optional boolean.
    #[must_use]
    pub fn from_option(b: Option<bool>) -> TriBool {
        match b {
            Some(true) => TriBool::True,
            Some(false) => TriBool::False,
            None => TriBool::Unknown,
        }
    }
}

impl std::ops::Not for TriBool {
    type Output = TriBool;

    fn not(self) -> TriBool {
        TriBool::not(self)
    }
}

impl From<bool> for TriBool {
    fn from(b: bool) -> Self {
        if b {
            TriBool::True
        } else {
            TriBool::False
        }
    }
}

impl Value {
    /// Returns the storage class of this value.
    #[must_use]
    pub fn storage_class(&self) -> StorageClass {
        match self {
            Value::Null => StorageClass::Null,
            Value::Integer(_) => StorageClass::Integer,
            Value::Real(_) => StorageClass::Real,
            Value::Text(_) => StorageClass::Text,
            Value::Blob(_) => StorageClass::Blob,
            Value::Boolean(_) => StorageClass::Boolean,
        }
    }

    /// Returns `true` if the value is `NULL`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` if the value is numeric (integer, real or boolean).
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Integer(_) | Value::Real(_) | Value::Boolean(_))
    }

    /// Interprets the value in a boolean context, the way SQLite does:
    /// numbers are true iff non-zero, text is converted via a numeric prefix
    /// parse, `NULL` and blobs are unknown/false-ish.
    ///
    /// This is the *lenient* conversion used by dialects with implicit
    /// conversions.  The strict (PostgreSQL-like) dialect refuses most of
    /// these conversions at a higher level.
    #[must_use]
    pub fn to_tribool_lenient(&self) -> TriBool {
        match self {
            Value::Null => TriBool::Unknown,
            Value::Boolean(b) => (*b).into(),
            Value::Integer(i) => (*i != 0).into(),
            Value::Real(r) => (*r != 0.0).into(),
            Value::Text(t) => {
                let n = text_numeric_prefix(t);
                (n != 0.0).into()
            }
            Value::Blob(_) => TriBool::False,
        }
    }

    /// Numeric interpretation of the value (SQLite `CAST(x AS REAL)`-style).
    #[must_use]
    pub fn to_real_lenient(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Integer(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            Value::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Text(t) => Some(text_numeric_prefix(t)),
            Value::Blob(_) => Some(0.0),
        }
    }

    /// Integer interpretation of the value (SQLite `CAST(x AS INTEGER)`-style).
    #[must_use]
    pub fn to_integer_lenient(&self) -> Option<i64> {
        match self {
            Value::Null => None,
            Value::Integer(i) => Some(*i),
            Value::Real(r) => Some(real_to_int_saturating(*r)),
            Value::Boolean(b) => Some(i64::from(*b)),
            Value::Text(t) => Some(text_integer_prefix(t)),
            Value::Blob(_) => Some(0),
        }
    }

    /// Text interpretation of the value (SQLite `CAST(x AS TEXT)`-style).
    #[must_use]
    pub fn to_text_lenient(&self) -> Option<String> {
        match self {
            Value::Null => None,
            Value::Integer(i) => Some(i.to_string()),
            Value::Real(r) => Some(format_real(*r)),
            Value::Boolean(b) => Some(if *b { "1".to_owned() } else { "0".to_owned() }),
            Value::Text(t) => Some(t.clone()),
            Value::Blob(b) => Some(String::from_utf8_lossy(b).into_owned()),
        }
    }

    /// Structural equality used for result-set containment checks: `NULL`
    /// equals `NULL`, integers and reals compare numerically, text compares
    /// byte-wise, booleans compare against 0/1 integers.
    #[must_use]
    pub fn same_as(&self, other: &Value) -> bool {
        self.total_cmp(other, Collation::Binary) == Ordering::Equal
    }

    /// A total ordering over values, used for index keys, `ORDER BY`, and
    /// `DISTINCT`.  Mirrors SQLite's cross-class ordering:
    /// `NULL < (INTEGER|REAL|BOOLEAN) < TEXT < BLOB`.
    #[must_use]
    pub fn total_cmp(&self, other: &Value, collation: Collation) -> Ordering {
        use Value::{Blob, Boolean, Integer, Null, Real, Text};
        fn class_rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Integer(_) | Real(_) | Boolean(_) => 1,
                Text(_) => 2,
                Blob(_) => 3,
            }
        }
        let (ra, rb) = (class_rank(self), class_rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Integer(a), Integer(b)) => a.cmp(b),
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            (Text(a), Text(b)) => collation.compare(a, b),
            // Mixed numeric comparisons go through f64.
            _ => {
                let a = self.to_real_lenient().unwrap_or(0.0);
                let b = other.to_real_lenient().unwrap_or(0.0);
                a.partial_cmp(&b).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// Renders the value as a SQL literal that parses back to the same value.
    #[must_use]
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_owned(),
            // `i64::MIN` cannot be written as a plain literal (its absolute
            // value overflows before the unary minus applies), so it is
            // rendered as an expression that parses back to the same value.
            Value::Integer(i64::MIN) => "(-9223372036854775807 - 1)".to_owned(),
            Value::Integer(i) => i.to_string(),
            Value::Real(r) => {
                if r.is_nan() {
                    "(0.0 / 0.0)".to_owned()
                } else if r.is_infinite() {
                    if *r > 0.0 {
                        "(1e308 * 10)".to_owned()
                    } else {
                        "(-1e308 * 10)".to_owned()
                    }
                } else {
                    format_real(*r)
                }
            }
            Value::Text(t) => format!("'{}'", t.replace('\'', "''")),
            Value::Blob(b) => {
                let hex: String = b.iter().map(|byte| format!("{byte:02X}")).collect();
                format!("x'{hex}'")
            }
            Value::Boolean(b) => if *b { "TRUE" } else { "FALSE" }.to_owned(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.same_as(other)
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Integer(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Real(r) => {
                // Hash reals through their numeric comparison key so that
                // `1 == 1.0` also hash-equal.
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 9.2e18 {
                    1u8.hash(state);
                    (*r as i64).hash(state);
                } else {
                    2u8.hash(state);
                    r.to_bits().hash(state);
                }
            }
            Value::Text(t) => {
                3u8.hash(state);
                t.hash(state);
            }
            Value::Blob(b) => {
                4u8.hash(state);
                b.hash(state);
            }
            Value::Boolean(b) => {
                1u8.hash(state);
                i64::from(*b).hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Real(r) => f.write_str(&format_real(*r)),
            Value::Text(t) => f.write_str(t),
            Value::Blob(b) => {
                let hex: String = b.iter().map(|byte| format!("{byte:02X}")).collect();
                write!(f, "x'{hex}'")
            }
            Value::Boolean(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

/// Formats a real value the way SQLite prints it (always with a decimal point
/// or exponent so the text round-trips back to a REAL).
#[must_use]
pub fn format_real(r: f64) -> String {
    if r.is_nan() {
        return "NaN".to_owned();
    }
    if r.is_infinite() {
        return if r > 0.0 { "Inf".to_owned() } else { "-Inf".to_owned() };
    }
    if r == r.trunc() && r.abs() < 1e15 {
        format!("{r:.1}")
    } else {
        format!("{r}")
    }
}

/// Parses the longest numeric prefix of a string as a float (SQLite text →
/// numeric conversion).  Returns `0.0` if the string has no numeric prefix.
#[must_use]
pub fn text_numeric_prefix(s: &str) -> f64 {
    let t = s.trim_start();
    let bytes = t.as_bytes();
    let mut end = 0usize;
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    let mut i = 0usize;
    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
        i += 1;
    }
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_digit() {
            seen_digit = true;
            i += 1;
            end = i;
        } else if c == b'.' && !seen_dot && !seen_exp {
            seen_dot = true;
            i += 1;
            if seen_digit {
                end = i;
            }
        } else if (c == b'e' || c == b'E') && seen_digit && !seen_exp {
            // Look ahead for a valid exponent.
            let mut j = i + 1;
            if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                j += 1;
            }
            if j < bytes.len() && bytes[j].is_ascii_digit() {
                seen_exp = true;
                i = j;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse::<f64>().unwrap_or(0.0)
}

/// Parses the longest integer prefix of a string (SQLite text → integer
/// conversion).  Saturates on overflow.
#[must_use]
pub fn text_integer_prefix(s: &str) -> i64 {
    let t = s.trim_start();
    let bytes = t.as_bytes();
    let mut i = 0usize;
    let negative = if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
        let neg = bytes[i] == b'-';
        i += 1;
        neg
    } else {
        false
    };
    let mut acc: i128 = 0;
    let mut seen_digit = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        seen_digit = true;
        acc = acc * 10 + i128::from(bytes[i] - b'0');
        if acc > i64::MAX as i128 + 1 {
            acc = i64::MAX as i128 + 1;
            // Keep consuming digits but stop accumulating.
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            break;
        }
        i += 1;
    }
    if !seen_digit {
        return 0;
    }
    let signed = if negative { -acc } else { acc };
    signed.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// Converts a real to an integer with saturation (SQLite CAST semantics).
#[must_use]
pub fn real_to_int_saturating(r: f64) -> i64 {
    if r.is_nan() {
        0
    } else if r >= i64::MAX as f64 {
        i64::MAX
    } else if r <= i64::MIN as f64 {
        i64::MIN
    } else {
        r as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tribool_truth_tables() {
        use TriBool::{False, True, Unknown};
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(False.or(False), False);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
    }

    #[test]
    fn storage_classes() {
        assert_eq!(Value::Null.storage_class(), StorageClass::Null);
        assert_eq!(Value::Integer(3).storage_class(), StorageClass::Integer);
        assert_eq!(Value::Real(0.5).storage_class(), StorageClass::Real);
        assert_eq!(Value::Text("x".into()).storage_class(), StorageClass::Text);
        assert_eq!(Value::Blob(vec![1]).storage_class(), StorageClass::Blob);
        assert_eq!(Value::Boolean(true).storage_class(), StorageClass::Boolean);
    }

    #[test]
    fn lenient_boolean_conversion() {
        assert_eq!(Value::Integer(0).to_tribool_lenient(), TriBool::False);
        assert_eq!(Value::Integer(5).to_tribool_lenient(), TriBool::True);
        assert_eq!(Value::Real(0.5).to_tribool_lenient(), TriBool::True);
        assert_eq!(Value::Null.to_tribool_lenient(), TriBool::Unknown);
        assert_eq!(Value::Text("0.5abc".into()).to_tribool_lenient(), TriBool::True);
        assert_eq!(Value::Text("abc".into()).to_tribool_lenient(), TriBool::False);
    }

    #[test]
    fn numeric_prefix_parsing() {
        assert_eq!(text_numeric_prefix("12abc"), 12.0);
        assert_eq!(text_numeric_prefix("  -3.5e2xyz"), -350.0);
        assert_eq!(text_numeric_prefix("abc"), 0.0);
        assert_eq!(text_numeric_prefix(""), 0.0);
        assert_eq!(text_numeric_prefix("."), 0.0);
        assert_eq!(text_numeric_prefix("1e"), 1.0);
        assert_eq!(text_integer_prefix("42abc"), 42);
        assert_eq!(text_integer_prefix("-7"), -7);
        assert_eq!(text_integer_prefix("xyz"), 0);
        assert_eq!(text_integer_prefix("99999999999999999999999"), i64::MAX);
        assert_eq!(text_integer_prefix("-99999999999999999999999"), i64::MIN);
    }

    #[test]
    fn ordering_across_classes() {
        let null = Value::Null;
        let int = Value::Integer(5);
        let text = Value::Text("a".into());
        let blob = Value::Blob(vec![0]);
        assert_eq!(null.total_cmp(&int, Collation::Binary), Ordering::Less);
        assert_eq!(int.total_cmp(&text, Collation::Binary), Ordering::Less);
        assert_eq!(text.total_cmp(&blob, Collation::Binary), Ordering::Less);
    }

    #[test]
    fn numeric_equality_across_int_and_real() {
        assert!(Value::Integer(1).same_as(&Value::Real(1.0)));
        assert!(!Value::Integer(1).same_as(&Value::Real(1.5)));
        assert!(Value::Boolean(true).same_as(&Value::Integer(1)));
    }

    #[test]
    fn sql_literal_round_trip_shapes() {
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Integer(-3).to_sql_literal(), "-3");
        assert_eq!(Value::Text("a'b".into()).to_sql_literal(), "'a''b'");
        assert_eq!(Value::Blob(vec![0xAB, 0x01]).to_sql_literal(), "x'AB01'");
        assert_eq!(Value::Real(2.0).to_sql_literal(), "2.0");
        assert_eq!(Value::Boolean(false).to_sql_literal(), "FALSE");
    }

    #[test]
    fn real_to_int_saturation() {
        assert_eq!(real_to_int_saturating(1e30), i64::MAX);
        assert_eq!(real_to_int_saturating(-1e30), i64::MIN);
        assert_eq!(real_to_int_saturating(f64::NAN), 0);
        assert_eq!(real_to_int_saturating(3.9), 3);
    }
}
