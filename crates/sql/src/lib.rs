//! # lancer-sql
//!
//! SQL front-end shared by the whole PQS reproduction stack: the value model
//! ([`Value`], [`TriBool`]), collations ([`Collation`]), the abstract syntax
//! tree ([`ast`]), a tokenizer ([`lexer`]) and a recursive-descent parser
//! ([`parser`]), plus SQL rendering for every AST node.
//!
//! The crate is deliberately free of any execution semantics: both the DBMS
//! engine under test (`lancer-engine`) and SQLancer's ground-truth AST
//! interpreter (`lancer-core`) consume these types and implement their own,
//! independent evaluation — which is exactly what gives Pivoted Query
//! Synthesis its oracle.

#![warn(missing_docs)]

pub mod ast;
pub mod collation;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod value;

pub use ast::{Expr, Query, Select, Statement, StatementKind};
pub use collation::Collation;
pub use error::{ParseError, ParseResult};
pub use parser::{parse_expression, parse_script, parse_statement};
pub use value::{StorageClass, TriBool, Value};
