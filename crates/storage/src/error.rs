//! Storage-layer errors.
//!
//! The error messages intentionally mimic the wording of the real DBMS
//! ("UNIQUE constraint failed", "database disk image is malformed", ...)
//! because the PQS *error oracle* classifies bugs by matching error messages
//! against per-statement whitelists, exactly as described in §3.3 of the
//! paper.

use std::fmt;

/// An error raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists.
    TableExists(String),
    /// The referenced table does not exist.
    NoSuchTable(String),
    /// The referenced column does not exist.
    NoSuchColumn(String),
    /// A column with this name already exists in the table.
    DuplicateColumn(String),
    /// An index with this name already exists.
    IndexExists(String),
    /// The referenced index does not exist.
    NoSuchIndex(String),
    /// A view with this name already exists.
    ViewExists(String),
    /// The referenced view does not exist.
    NoSuchView(String),
    /// A `UNIQUE` or `PRIMARY KEY` constraint was violated.
    UniqueViolation {
        /// The constraint or index that was violated.
        constraint: String,
    },
    /// A `NOT NULL` constraint was violated.
    NotNullViolation {
        /// The violating column.
        column: String,
    },
    /// The on-disk image (here: the in-memory image) is corrupted.  This is
    /// what the error oracle treats as always-unexpected.
    Corruption(String),
    /// Any other internal error.
    Internal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(t) => write!(f, "table {t} already exists"),
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StorageError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            StorageError::DuplicateColumn(c) => write!(f, "duplicate column name: {c}"),
            StorageError::IndexExists(i) => write!(f, "index {i} already exists"),
            StorageError::NoSuchIndex(i) => write!(f, "no such index: {i}"),
            StorageError::ViewExists(v) => write!(f, "view {v} already exists"),
            StorageError::NoSuchView(v) => write!(f, "no such view: {v}"),
            StorageError::UniqueViolation { constraint } => {
                write!(f, "UNIQUE constraint failed: {constraint}")
            }
            StorageError::NotNullViolation { column } => {
                write!(f, "NOT NULL constraint failed: {column}")
            }
            StorageError::Corruption(detail) => {
                write!(f, "database disk image is malformed ({detail})")
            }
            StorageError::Internal(detail) => write!(f, "internal storage error: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_match_dbms_wording() {
        assert_eq!(
            StorageError::UniqueViolation { constraint: "t0.c0".into() }.to_string(),
            "UNIQUE constraint failed: t0.c0"
        );
        assert!(StorageError::Corruption("index i0".into())
            .to_string()
            .contains("database disk image is malformed"));
        assert_eq!(StorageError::NoSuchTable("t9".into()).to_string(), "no such table: t9");
    }
}
