//! Row storage for a single table.

use std::collections::BTreeMap;
use std::sync::Arc;

use lancer_sql::value::Value;
use serde::{Deserialize, Serialize};

use crate::cow;
use crate::error::{StorageError, StorageResult};
use crate::schema::TableSchema;

/// An opaque row identifier (the SQLite `rowid` analogue).
pub type RowId = u64;

/// A stored row together with its identifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// The row identifier.
    pub id: RowId,
    /// Column values in schema order.
    pub values: Vec<Value>,
}

/// A table: schema plus rows.
///
/// The row block lives behind an [`Arc`], so cloning a table (directly or
/// through a [`Database`](crate::Database) snapshot) shares it structurally;
/// the first mutation after a clone deep-copies the block via
/// [`Arc::make_mut`] (counted in [`cow`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// The table schema.
    pub schema: TableSchema,
    rows: Arc<BTreeMap<RowId, Vec<Value>>>,
    next_row_id: RowId,
}

impl Table {
    /// Creates an empty table with the given schema.
    #[must_use]
    pub fn new(schema: TableSchema) -> Table {
        Table { schema, rows: Arc::new(BTreeMap::new()), next_row_id: 1 }
    }

    /// The row block, unsharing (and counting) it if a snapshot still
    /// holds the same block.
    fn rows_mut(&mut self) -> &mut BTreeMap<RowId, Vec<Value>> {
        cow::make_mut_rows(&mut self.rows)
    }

    /// Whether this table still shares its row block with another handle
    /// (a snapshot or clone).  Test/diagnostic hook for CoW invariants.
    #[must_use]
    pub fn shares_rows(&self) -> bool {
        Arc::strong_count(&self.rows) > 1
    }

    /// Number of rows currently stored.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row (values must already be in schema order and affinity-
    /// converted by the engine).  Returns the new row id.
    ///
    /// # Errors
    ///
    /// Returns an error if the value count does not match the schema.
    pub fn insert(&mut self, values: Vec<Value>) -> StorageResult<RowId> {
        if values.len() != self.schema.columns.len() {
            return Err(StorageError::Internal(format!(
                "table {} has {} columns but {} values were supplied",
                self.schema.name,
                self.schema.columns.len(),
                values.len()
            )));
        }
        let id = self.next_row_id;
        self.next_row_id += 1;
        self.rows_mut().insert(id, values);
        Ok(id)
    }

    /// Fetches a row by id.
    #[must_use]
    pub fn get(&self, id: RowId) -> Option<Row> {
        self.rows.get(&id).map(|values| Row { id, values: values.clone() })
    }

    /// Replaces the values of an existing row.
    ///
    /// # Errors
    ///
    /// Returns an error if the row does not exist or the value count is wrong.
    pub fn update(&mut self, id: RowId, values: Vec<Value>) -> StorageResult<()> {
        if values.len() != self.schema.columns.len() {
            return Err(StorageError::Internal("wrong number of values in update".into()));
        }
        if !self.rows.contains_key(&id) {
            return Err(StorageError::Internal(format!(
                "no row {id} in table {}",
                self.schema.name
            )));
        }
        if let Some(slot) = self.rows_mut().get_mut(&id) {
            *slot = values;
        }
        Ok(())
    }

    /// Deletes a row by id.  Returns `true` if the row existed.
    pub fn delete(&mut self, id: RowId) -> bool {
        if !self.rows.contains_key(&id) {
            return false;
        }
        self.rows_mut().remove(&id).is_some()
    }

    /// Iterates over all rows in rowid order.
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        self.rows.iter().map(|(id, values)| Row { id: *id, values: values.clone() })
    }

    /// Returns all row ids.
    #[must_use]
    pub fn row_ids(&self) -> Vec<RowId> {
        self.rows.keys().copied().collect()
    }

    /// Adds a new column to the schema, filling existing rows with the given
    /// default value.
    ///
    /// # Errors
    ///
    /// Returns an error if the column already exists.
    pub fn add_column(
        &mut self,
        meta: crate::schema::ColumnMeta,
        fill: Value,
    ) -> StorageResult<()> {
        if self.schema.column_index(&meta.name).is_some() {
            return Err(StorageError::DuplicateColumn(meta.name));
        }
        self.schema.columns.push(meta);
        for values in self.rows_mut().values_mut() {
            values.push(fill.clone());
        }
        Ok(())
    }

    /// Renames a column.
    ///
    /// # Errors
    ///
    /// Returns an error if the old column is missing or the new name clashes.
    pub fn rename_column(&mut self, old: &str, new: &str) -> StorageResult<()> {
        if self.schema.column_index(new).is_some() {
            return Err(StorageError::DuplicateColumn(new.to_owned()));
        }
        let idx = self
            .schema
            .column_index(old)
            .ok_or_else(|| StorageError::NoSuchColumn(old.to_owned()))?;
        self.schema.columns[idx].name = new.to_owned();
        for pk in &mut self.schema.primary_key {
            if pk.eq_ignore_ascii_case(old) {
                *pk = new.to_owned();
            }
        }
        for uc in &mut self.schema.unique_constraints {
            for c in uc {
                if c.eq_ignore_ascii_case(old) {
                    *c = new.to_owned();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnMeta;
    use lancer_sql::ast::stmt::{ColumnDef, CreateTable};

    fn table_with_cols(n: usize) -> Table {
        let cols = (0..n).map(|i| ColumnDef::new(format!("c{i}"), None)).collect();
        let ct = CreateTable::new("t0", cols);
        Table::new(TableSchema::from_create(&ct).unwrap())
    }

    #[test]
    fn insert_get_update_delete_round_trip() {
        let mut t = table_with_cols(2);
        let id = t.insert(vec![Value::Integer(1), Value::Text("a".into())]).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.get(id).unwrap().values[0], Value::Integer(1));
        t.update(id, vec![Value::Integer(2), Value::Null]).unwrap();
        assert_eq!(t.get(id).unwrap().values[1], Value::Null);
        assert!(t.delete(id));
        assert!(!t.delete(id));
        assert!(t.is_empty());
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut t = table_with_cols(2);
        assert!(t.insert(vec![Value::Integer(1)]).is_err());
        assert!(t.update(1, vec![Value::Integer(1)]).is_err());
    }

    #[test]
    fn row_ids_are_monotonic() {
        let mut t = table_with_cols(1);
        let a = t.insert(vec![Value::Integer(1)]).unwrap();
        let b = t.insert(vec![Value::Integer(2)]).unwrap();
        assert!(b > a);
        t.delete(a);
        let c = t.insert(vec![Value::Integer(3)]).unwrap();
        assert!(c > b, "row ids must not be reused");
    }

    #[test]
    fn add_and_rename_column() {
        let mut t = table_with_cols(1);
        t.insert(vec![Value::Integer(1)]).unwrap();
        let meta = ColumnMeta::from_def(&ColumnDef::new("c1", None));
        t.add_column(meta.clone(), Value::Null).unwrap();
        assert_eq!(t.schema.columns.len(), 2);
        assert_eq!(t.rows().next().unwrap().values.len(), 2);
        assert!(t.add_column(meta, Value::Null).is_err());
        t.rename_column("c1", "c9").unwrap();
        assert!(t.schema.column_index("c9").is_some());
        assert!(t.rename_column("zzz", "c10").is_err());
        assert!(t.rename_column("c0", "c9").is_err());
    }
}
