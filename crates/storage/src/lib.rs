//! # lancer-storage
//!
//! The in-memory relational storage engine underneath the DBMS under test:
//! table schemas ([`schema`]), row storage ([`table`]), secondary and
//! implicit constraint indexes ([`index`]) and the catalog ([`catalog`]) that
//! SQLancer's generators introspect.
//!
//! The storage layer is deliberately mechanism-only: it stores rows and
//! index entries and enforces uniqueness over *already-computed* keys.  All
//! expression evaluation, affinity conversion and dialect behaviour lives in
//! `lancer-engine`, which is also where faults are injected — so the storage
//! layer itself is trusted ground for the whole stack.

#![warn(missing_docs)]

pub mod catalog;
pub mod cow;
pub mod error;
pub mod index;
pub mod schema;
pub mod table;

pub use catalog::{Database, View};
pub use cow::{cow_stats, CowStats};
pub use error::{StorageError, StorageResult};
pub use index::{Index, IndexDef, IndexEntry};
pub use schema::{Affinity, ColumnMeta, TableSchema};
pub use table::{Row, RowId, Table};
