//! Copy-on-write bookkeeping for the structurally-shared catalog.
//!
//! [`Database`](crate::Database) holds tables and indexes behind [`Arc`]s
//! and [`Table`](crate::Table) holds its row block behind another, so a
//! database clone — the per-statement atomicity snapshot, `BEGIN`'s
//! workspace snapshot, a replay-cache resume — is a handful of
//! reference-count bumps.  The deep copies that copy-on-write *does* pay
//! (the first mutation of a shared node via [`Arc::make_mut`]) are counted
//! here, per thread, so campaign reports can show how much cloning the
//! sharing absorbed.
//!
//! The counters are thread-local cumulative sums: callers sample them
//! before and after a region of work and fold the delta.  Thread-locals
//! (rather than process-global atomics) keep concurrently-running
//! campaigns — `cargo test` runs many in one process — from bleeding
//! copies into each other's stats.
//!
//! [`Arc`]: std::sync::Arc
//! [`Arc::make_mut`]: std::sync::Arc::make_mut

use std::cell::Cell;
use std::sync::Arc;

/// Cumulative copy-on-write deep-copy counts for the current thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Shared [`Table`](crate::Table) nodes deep-copied on first mutation
    /// (schema + row-block handle; the rows themselves copy separately).
    pub table_copies: u64,
    /// Shared row blocks deep-copied on first row mutation — the O(rows)
    /// cost a snapshot defers until a statement actually writes the table.
    pub row_block_copies: u64,
    /// Shared [`Index`](crate::Index) nodes deep-copied on first mutation
    /// (definition + materialized entries).
    pub index_copies: u64,
}

impl CowStats {
    /// The counts accrued since an earlier [`cow_stats`] sample.
    #[must_use]
    pub fn since(self, earlier: CowStats) -> CowStats {
        CowStats {
            table_copies: self.table_copies.saturating_sub(earlier.table_copies),
            row_block_copies: self.row_block_copies.saturating_sub(earlier.row_block_copies),
            index_copies: self.index_copies.saturating_sub(earlier.index_copies),
        }
    }
}

thread_local! {
    static TABLE_COPIES: Cell<u64> = const { Cell::new(0) };
    static ROW_BLOCK_COPIES: Cell<u64> = const { Cell::new(0) };
    static INDEX_COPIES: Cell<u64> = const { Cell::new(0) };
}

/// Samples the current thread's cumulative copy-on-write counters.
#[must_use]
pub fn cow_stats() -> CowStats {
    CowStats {
        table_copies: TABLE_COPIES.with(Cell::get),
        row_block_copies: ROW_BLOCK_COPIES.with(Cell::get),
        index_copies: INDEX_COPIES.with(Cell::get),
    }
}

/// [`Arc::make_mut`] with copy accounting: bumps `counter` when the node
/// is shared and the call will therefore deep-copy it.
pub(crate) fn make_mut_counted<'a, T: Clone>(
    arc: &'a mut Arc<T>,
    counter: &'static std::thread::LocalKey<Cell<u64>>,
) -> &'a mut T {
    if Arc::strong_count(arc) > 1 {
        counter.with(|c| c.set(c.get() + 1));
    }
    Arc::make_mut(arc)
}

pub(crate) fn make_mut_table<T: Clone>(arc: &mut Arc<T>) -> &mut T {
    make_mut_counted(arc, &TABLE_COPIES)
}

pub(crate) fn make_mut_rows<T: Clone>(arc: &mut Arc<T>) -> &mut T {
    make_mut_counted(arc, &ROW_BLOCK_COPIES)
}

pub(crate) fn make_mut_index<T: Clone>(arc: &mut Arc<T>) -> &mut T {
    make_mut_counted(arc, &INDEX_COPIES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_only_count_shared_nodes() {
        let before = cow_stats();
        let mut solo = Arc::new(vec![1]);
        make_mut_table(&mut solo).push(2);
        assert_eq!(cow_stats().since(before).table_copies, 0, "sole owner never copies");
        let shared = Arc::clone(&solo);
        make_mut_table(&mut solo).push(3);
        assert_eq!(cow_stats().since(before).table_copies, 1, "shared node copies once");
        assert_eq!(*shared, vec![1, 2], "the snapshot keeps the pre-mutation state");
        assert_eq!(*solo, vec![1, 2, 3]);
    }
}
