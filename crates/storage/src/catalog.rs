//! The database catalog: tables, indexes, views and run-time options.
//!
//! The catalog doubles as the *schema introspection* surface that SQLancer's
//! generators query dynamically (the `sqlite_master` /
//! `information_schema.tables` analogue described in §3.4 of the paper).

use std::collections::BTreeMap;

use lancer_sql::ast::Select;
use lancer_sql::value::Value;
use serde::{Deserialize, Serialize};

use crate::error::{StorageError, StorageResult};
use crate::index::{Index, IndexDef};
use crate::schema::TableSchema;
use crate::table::Table;

/// A stored view definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct View {
    /// View name.
    pub name: String,
    /// The defining query.
    pub query: Select,
}

/// An in-memory database: the unit a single PQS worker thread owns.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    indexes: BTreeMap<String, Index>,
    views: BTreeMap<String, View>,
    options: BTreeMap<String, Value>,
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Database {
        Database::default()
    }

    // ---------------------------------------------------------------- tables

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Returns an error if a table or view with that name already exists.
    pub fn create_table(&mut self, schema: TableSchema) -> StorageResult<()> {
        let key = schema.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(StorageError::TableExists(schema.name));
        }
        self.tables.insert(key, Table::new(schema));
        Ok(())
    }

    /// Drops a table and every index defined on it.
    ///
    /// # Errors
    ///
    /// Returns an error if the table does not exist.
    pub fn drop_table(&mut self, name: &str) -> StorageResult<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.remove(&key).is_none() {
            return Err(StorageError::NoSuchTable(name.to_owned()));
        }
        self.indexes.retain(|_, idx| !idx.def.table.eq_ignore_ascii_case(name));
        Ok(())
    }

    /// Renames a table, updating indexes that reference it.
    ///
    /// # Errors
    ///
    /// Returns an error if the source is missing or the target exists.
    pub fn rename_table(&mut self, old: &str, new: &str) -> StorageResult<()> {
        let old_key = old.to_ascii_lowercase();
        let new_key = new.to_ascii_lowercase();
        if self.tables.contains_key(&new_key) || self.views.contains_key(&new_key) {
            return Err(StorageError::TableExists(new.to_owned()));
        }
        let mut table = self
            .tables
            .remove(&old_key)
            .ok_or_else(|| StorageError::NoSuchTable(old.to_owned()))?;
        table.schema.name = new.to_owned();
        self.tables.insert(new_key, table);
        for idx in self.indexes.values_mut() {
            if idx.def.table.eq_ignore_ascii_case(old) {
                idx.def.table = new.to_owned();
            }
        }
        Ok(())
    }

    /// Returns a table by name.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Returns a mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase())
    }

    /// Returns a table or a [`StorageError::NoSuchTable`] error.
    ///
    /// # Errors
    ///
    /// Returns an error if the table does not exist.
    pub fn require_table(&self, name: &str) -> StorageResult<&Table> {
        self.table(name).ok_or_else(|| StorageError::NoSuchTable(name.to_owned()))
    }

    /// Returns a mutable table or a [`StorageError::NoSuchTable`] error.
    ///
    /// # Errors
    ///
    /// Returns an error if the table does not exist.
    pub fn require_table_mut(&mut self, name: &str) -> StorageResult<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| StorageError::NoSuchTable(name.to_owned()))
    }

    /// All table names (schema introspection).
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.schema.name.clone()).collect()
    }

    /// Child tables that inherit from the given parent (PostgreSQL-like
    /// table inheritance).
    #[must_use]
    pub fn children_of(&self, parent: &str) -> Vec<String> {
        self.tables
            .values()
            .filter(|t| {
                t.schema.inherits.as_deref().is_some_and(|p| p.eq_ignore_ascii_case(parent))
            })
            .map(|t| t.schema.name.clone())
            .collect()
    }

    /// Whether any table inherits from the given parent — the
    /// allocation-free form of `!children_of(parent).is_empty()`, for
    /// per-probe checks on hot executor/planner paths.
    #[must_use]
    pub fn has_children(&self, parent: &str) -> bool {
        self.tables
            .values()
            .any(|t| t.schema.inherits.as_deref().is_some_and(|p| p.eq_ignore_ascii_case(parent)))
    }

    // --------------------------------------------------------------- indexes

    /// Registers an index.
    ///
    /// # Errors
    ///
    /// Returns an error if an index with that name exists or the table is
    /// missing.
    pub fn create_index(&mut self, index: Index) -> StorageResult<()> {
        let key = index.def.name.to_ascii_lowercase();
        if self.indexes.contains_key(&key) {
            return Err(StorageError::IndexExists(index.def.name.clone()));
        }
        if self.table(&index.def.table).is_none() {
            return Err(StorageError::NoSuchTable(index.def.table.clone()));
        }
        self.indexes.insert(key, index);
        Ok(())
    }

    /// Drops an explicit index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is missing or implicit.
    pub fn drop_index(&mut self, name: &str) -> StorageResult<()> {
        let key = name.to_ascii_lowercase();
        match self.indexes.get(&key) {
            None => Err(StorageError::NoSuchIndex(name.to_owned())),
            Some(idx) if idx.def.implicit => Err(StorageError::Internal(format!(
                "index {name} is implicitly created and cannot be dropped"
            ))),
            Some(_) => {
                self.indexes.remove(&key);
                Ok(())
            }
        }
    }

    /// Returns an index by name.
    #[must_use]
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.get(&name.to_ascii_lowercase())
    }

    /// Returns a mutable index by name.
    pub fn index_mut(&mut self, name: &str) -> Option<&mut Index> {
        self.indexes.get_mut(&name.to_ascii_lowercase())
    }

    /// All indexes on a table.
    #[must_use]
    pub fn indexes_on(&self, table: &str) -> Vec<&Index> {
        self.indexes.values().filter(|i| i.def.table.eq_ignore_ascii_case(table)).collect()
    }

    /// All indexes on a table, mutably.
    pub fn indexes_on_mut(&mut self, table: &str) -> Vec<&mut Index> {
        self.indexes.values_mut().filter(|i| i.def.table.eq_ignore_ascii_case(table)).collect()
    }

    /// All index names.
    #[must_use]
    pub fn index_names(&self) -> Vec<String> {
        self.indexes.values().map(|i| i.def.name.clone()).collect()
    }

    /// All index definitions (for the generator).
    #[must_use]
    pub fn index_defs(&self) -> Vec<&IndexDef> {
        self.indexes.values().map(|i| &i.def).collect()
    }

    // ----------------------------------------------------------------- views

    /// Creates a view.
    ///
    /// # Errors
    ///
    /// Returns an error if a table or view with that name already exists.
    pub fn create_view(&mut self, view: View) -> StorageResult<()> {
        let key = view.name.to_ascii_lowercase();
        if self.views.contains_key(&key) || self.tables.contains_key(&key) {
            return Err(StorageError::ViewExists(view.name));
        }
        self.views.insert(key, view);
        Ok(())
    }

    /// Drops a view.
    ///
    /// # Errors
    ///
    /// Returns an error if the view does not exist.
    pub fn drop_view(&mut self, name: &str) -> StorageResult<()> {
        self.views
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| StorageError::NoSuchView(name.to_owned()))
    }

    /// Returns a view by name.
    #[must_use]
    pub fn view(&self, name: &str) -> Option<&View> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// All view names.
    #[must_use]
    pub fn view_names(&self) -> Vec<String> {
        self.views.values().map(|v| v.name.clone()).collect()
    }

    // --------------------------------------------------------------- options

    /// Sets a run-time option (`PRAGMA` / `SET`).
    pub fn set_option(&mut self, name: &str, value: Value) {
        self.options.insert(name.to_ascii_lowercase(), value);
    }

    /// Reads a run-time option.
    #[must_use]
    pub fn option(&self, name: &str) -> Option<&Value> {
        self.options.get(&name.to_ascii_lowercase())
    }

    /// Reads a boolean-ish option with a default.
    #[must_use]
    pub fn option_bool(&self, name: &str, default: bool) -> bool {
        match self.option(name) {
            Some(v) => v.to_tribool_lenient().is_true(),
            None => default,
        }
    }

    /// Total number of rows across all tables (used by throughput reports).
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::row_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancer_sql::ast::stmt::{ColumnDef, CreateTable};
    use lancer_sql::ast::Expr;
    use lancer_sql::collation::Collation;

    fn simple_schema(name: &str) -> TableSchema {
        TableSchema::from_create(&CreateTable::new(name, vec![ColumnDef::new("c0", None)])).unwrap()
    }

    fn simple_index(name: &str, table: &str) -> Index {
        Index::new(IndexDef {
            name: name.into(),
            table: table.into(),
            exprs: vec![Expr::col("c0")],
            collations: vec![Collation::Binary],
            unique: false,
            where_clause: None,
            implicit: false,
        })
    }

    #[test]
    fn table_lifecycle() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        assert!(db.create_table(simple_schema("T0")).is_err(), "names are case-insensitive");
        assert_eq!(db.table_names(), vec!["t0"]);
        db.rename_table("t0", "t1").unwrap();
        assert!(db.table("t0").is_none());
        assert!(db.table("t1").is_some());
        db.drop_table("t1").unwrap();
        assert!(matches!(db.drop_table("t1"), Err(StorageError::NoSuchTable(_))));
    }

    #[test]
    fn index_lifecycle_and_cascade_on_drop_table() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        db.create_index(simple_index("i0", "t0")).unwrap();
        assert!(db.create_index(simple_index("i0", "t0")).is_err());
        assert!(db.create_index(simple_index("i1", "missing")).is_err());
        assert_eq!(db.indexes_on("t0").len(), 1);
        db.drop_table("t0").unwrap();
        assert!(db.index("i0").is_none(), "indexes are dropped with their table");
    }

    #[test]
    fn implicit_indexes_cannot_be_dropped() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        let mut idx = simple_index("sqlite_autoindex_t0_1", "t0");
        idx.def.implicit = true;
        db.create_index(idx).unwrap();
        assert!(db.drop_index("sqlite_autoindex_t0_1").is_err());
        assert!(matches!(db.drop_index("zzz"), Err(StorageError::NoSuchIndex(_))));
    }

    #[test]
    fn rename_table_updates_indexes() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        db.create_index(simple_index("i0", "t0")).unwrap();
        db.rename_table("t0", "t5").unwrap();
        assert_eq!(db.index("i0").unwrap().def.table, "t5");
        assert_eq!(db.indexes_on("t5").len(), 1);
    }

    #[test]
    fn views_and_options() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        db.create_view(View { name: "v0".into(), query: Select::star(vec!["t0".into()]) }).unwrap();
        assert!(db
            .create_view(View { name: "t0".into(), query: Select::star(vec!["t0".into()]) })
            .is_err());
        assert_eq!(db.view_names(), vec!["v0"]);
        db.drop_view("v0").unwrap();
        assert!(db.drop_view("v0").is_err());

        db.set_option("case_sensitive_like", Value::Integer(1));
        assert!(db.option_bool("case_sensitive_like", false));
        assert!(!db.option_bool("missing", false));
        assert_eq!(db.option("case_sensitive_like"), Some(&Value::Integer(1)));
    }

    #[test]
    fn inheritance_children_lookup() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        let mut child = CreateTable::new("t1", vec![ColumnDef::new("c0", None)]);
        child.inherits = Some("t0".into());
        db.create_table(TableSchema::from_create(&child).unwrap()).unwrap();
        assert_eq!(db.children_of("t0"), vec!["t1"]);
        assert!(db.children_of("t1").is_empty());
    }
}
