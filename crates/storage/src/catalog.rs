//! The database catalog: tables, indexes, views and run-time options.
//!
//! The catalog doubles as the *schema introspection* surface that SQLancer's
//! generators query dynamically (the `sqlite_master` /
//! `information_schema.tables` analogue described in §3.4 of the paper).

use std::collections::BTreeMap;
use std::sync::Arc;

use lancer_sql::ast::Select;
use lancer_sql::value::Value;
use serde::{Deserialize, Serialize};

use crate::cow;
use crate::error::{StorageError, StorageResult};
use crate::index::{Index, IndexDef};
use crate::schema::TableSchema;
use crate::table::Table;

/// A stored view definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct View {
    /// View name.
    pub name: String,
    /// The defining query.
    pub query: Select,
}

/// An in-memory database: the unit a single PQS worker thread owns.
///
/// Tables and indexes live behind [`Arc`]s (and each table's row block
/// behind another), and the four catalog maps live behind [`Arc`]s of
/// their own, so `Database::clone` — the per-statement atomicity
/// snapshot, `BEGIN`'s workspace snapshot, a replay-cache resume — is
/// exactly four reference-count bumps.  Mutable accessors go through
/// [`Arc::make_mut`], deep-copying only the map a statement touches and
/// only the node it actually writes (node copies are counted in
/// [`cow`]); failed lookups never unshare anything.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: Arc<BTreeMap<String, Arc<Table>>>,
    indexes: Arc<BTreeMap<String, Arc<Index>>>,
    views: Arc<BTreeMap<String, View>>,
    options: Arc<BTreeMap<String, Value>>,
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Database {
        Database::default()
    }

    // ---------------------------------------------------------------- tables

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Returns an error if a table or view with that name already exists.
    pub fn create_table(&mut self, schema: TableSchema) -> StorageResult<()> {
        let key = schema.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(StorageError::TableExists(schema.name));
        }
        Arc::make_mut(&mut self.tables).insert(key, Arc::new(Table::new(schema)));
        Ok(())
    }

    /// Drops a table and every index defined on it.
    ///
    /// # Errors
    ///
    /// Returns an error if the table does not exist.
    pub fn drop_table(&mut self, name: &str) -> StorageResult<()> {
        let key = name.to_ascii_lowercase();
        if !self.tables.contains_key(&key) {
            return Err(StorageError::NoSuchTable(name.to_owned()));
        }
        Arc::make_mut(&mut self.tables).remove(&key);
        if self.indexes.values().any(|idx| idx.def.table.eq_ignore_ascii_case(name)) {
            Arc::make_mut(&mut self.indexes)
                .retain(|_, idx| !idx.def.table.eq_ignore_ascii_case(name));
        }
        Ok(())
    }

    /// Renames a table, updating indexes that reference it.
    ///
    /// # Errors
    ///
    /// Returns an error if the source is missing or the target exists.
    pub fn rename_table(&mut self, old: &str, new: &str) -> StorageResult<()> {
        let old_key = old.to_ascii_lowercase();
        let new_key = new.to_ascii_lowercase();
        if self.tables.contains_key(&new_key) || self.views.contains_key(&new_key) {
            return Err(StorageError::TableExists(new.to_owned()));
        }
        if !self.tables.contains_key(&old_key) {
            return Err(StorageError::NoSuchTable(old.to_owned()));
        }
        let tables = Arc::make_mut(&mut self.tables);
        let mut table = tables.remove(&old_key).expect("checked above");
        // Renaming copies the table node (schema + row-block handle) but
        // not the rows themselves — they stay behind the inner Arc.
        cow::make_mut_table(&mut table).schema.name = new.to_owned();
        tables.insert(new_key, table);
        if self.indexes.values().any(|idx| idx.def.table.eq_ignore_ascii_case(old)) {
            for idx in Arc::make_mut(&mut self.indexes).values_mut() {
                if idx.def.table.eq_ignore_ascii_case(old) {
                    cow::make_mut_index(idx).def.table = new.to_owned();
                }
            }
        }
        Ok(())
    }

    /// Returns a table by name.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase()).map(Arc::as_ref)
    }

    /// Returns a mutable table by name, unsharing it from any snapshot
    /// that still holds the same node.  A missing table never unshares
    /// the map.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        let key = name.to_ascii_lowercase();
        if !self.tables.contains_key(&key) {
            return None;
        }
        Arc::make_mut(&mut self.tables).get_mut(&key).map(cow::make_mut_table)
    }

    /// Returns a table or a [`StorageError::NoSuchTable`] error.
    ///
    /// # Errors
    ///
    /// Returns an error if the table does not exist.
    pub fn require_table(&self, name: &str) -> StorageResult<&Table> {
        self.table(name).ok_or_else(|| StorageError::NoSuchTable(name.to_owned()))
    }

    /// Returns a mutable table or a [`StorageError::NoSuchTable`] error.
    ///
    /// # Errors
    ///
    /// Returns an error if the table does not exist.
    pub fn require_table_mut(&mut self, name: &str) -> StorageResult<&mut Table> {
        self.table_mut(name).ok_or_else(|| StorageError::NoSuchTable(name.to_owned()))
    }

    /// All table names (schema introspection).
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.schema.name.clone()).collect()
    }

    /// Child tables that inherit from the given parent (PostgreSQL-like
    /// table inheritance).
    #[must_use]
    pub fn children_of(&self, parent: &str) -> Vec<String> {
        self.tables
            .values()
            .filter(|t| {
                t.schema.inherits.as_deref().is_some_and(|p| p.eq_ignore_ascii_case(parent))
            })
            .map(|t| t.schema.name.clone())
            .collect()
    }

    /// Whether any table inherits from the given parent — the
    /// allocation-free form of `!children_of(parent).is_empty()`, for
    /// per-probe checks on hot executor/planner paths.
    #[must_use]
    pub fn has_children(&self, parent: &str) -> bool {
        self.tables
            .values()
            .any(|t| t.schema.inherits.as_deref().is_some_and(|p| p.eq_ignore_ascii_case(parent)))
    }

    // --------------------------------------------------------------- indexes

    /// Registers an index.
    ///
    /// # Errors
    ///
    /// Returns an error if an index with that name exists or the table is
    /// missing.
    pub fn create_index(&mut self, index: Index) -> StorageResult<()> {
        let key = index.def.name.to_ascii_lowercase();
        if self.indexes.contains_key(&key) {
            return Err(StorageError::IndexExists(index.def.name.clone()));
        }
        if self.table(&index.def.table).is_none() {
            return Err(StorageError::NoSuchTable(index.def.table.clone()));
        }
        Arc::make_mut(&mut self.indexes).insert(key, Arc::new(index));
        Ok(())
    }

    /// Drops an explicit index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is missing or implicit.
    pub fn drop_index(&mut self, name: &str) -> StorageResult<()> {
        let key = name.to_ascii_lowercase();
        match self.indexes.get(&key) {
            None => Err(StorageError::NoSuchIndex(name.to_owned())),
            Some(idx) if idx.def.implicit => Err(StorageError::Internal(format!(
                "index {name} is implicitly created and cannot be dropped"
            ))),
            Some(_) => {
                Arc::make_mut(&mut self.indexes).remove(&key);
                Ok(())
            }
        }
    }

    /// Returns an index by name.
    #[must_use]
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.get(&name.to_ascii_lowercase()).map(Arc::as_ref)
    }

    /// Returns a mutable index by name, unsharing it from any snapshot.
    /// A missing index never unshares the map.
    pub fn index_mut(&mut self, name: &str) -> Option<&mut Index> {
        let key = name.to_ascii_lowercase();
        if !self.indexes.contains_key(&key) {
            return None;
        }
        Arc::make_mut(&mut self.indexes).get_mut(&key).map(cow::make_mut_index)
    }

    /// All indexes on a table.
    #[must_use]
    pub fn indexes_on(&self, table: &str) -> Vec<&Index> {
        self.indexes
            .values()
            .filter(|i| i.def.table.eq_ignore_ascii_case(table))
            .map(Arc::as_ref)
            .collect()
    }

    /// All indexes on a table, mutably (each unshared from any snapshot).
    /// A table with no indexes never unshares the map.
    pub fn indexes_on_mut(&mut self, table: &str) -> Vec<&mut Index> {
        if !self.indexes.values().any(|i| i.def.table.eq_ignore_ascii_case(table)) {
            return Vec::new();
        }
        Arc::make_mut(&mut self.indexes)
            .values_mut()
            .filter(|i| i.def.table.eq_ignore_ascii_case(table))
            .map(cow::make_mut_index)
            .collect()
    }

    /// All index names.
    #[must_use]
    pub fn index_names(&self) -> Vec<String> {
        self.indexes.values().map(|i| i.def.name.clone()).collect()
    }

    /// All index definitions (for the generator).
    #[must_use]
    pub fn index_defs(&self) -> Vec<&IndexDef> {
        self.indexes.values().map(|i| &i.def).collect()
    }

    // ----------------------------------------------------------------- views

    /// Creates a view.
    ///
    /// # Errors
    ///
    /// Returns an error if a table or view with that name already exists.
    pub fn create_view(&mut self, view: View) -> StorageResult<()> {
        let key = view.name.to_ascii_lowercase();
        if self.views.contains_key(&key) || self.tables.contains_key(&key) {
            return Err(StorageError::ViewExists(view.name));
        }
        Arc::make_mut(&mut self.views).insert(key, view);
        Ok(())
    }

    /// Drops a view.
    ///
    /// # Errors
    ///
    /// Returns an error if the view does not exist.
    pub fn drop_view(&mut self, name: &str) -> StorageResult<()> {
        let key = name.to_ascii_lowercase();
        if !self.views.contains_key(&key) {
            return Err(StorageError::NoSuchView(name.to_owned()));
        }
        Arc::make_mut(&mut self.views).remove(&key);
        Ok(())
    }

    /// Returns a view by name.
    #[must_use]
    pub fn view(&self, name: &str) -> Option<&View> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// All view names.
    #[must_use]
    pub fn view_names(&self) -> Vec<String> {
        self.views.values().map(|v| v.name.clone()).collect()
    }

    // --------------------------------------------------------------- options

    /// Sets a run-time option (`PRAGMA` / `SET`).
    pub fn set_option(&mut self, name: &str, value: Value) {
        Arc::make_mut(&mut self.options).insert(name.to_ascii_lowercase(), value);
    }

    /// Reads a run-time option.
    #[must_use]
    pub fn option(&self, name: &str) -> Option<&Value> {
        self.options.get(&name.to_ascii_lowercase())
    }

    /// Reads a boolean-ish option with a default.
    #[must_use]
    pub fn option_bool(&self, name: &str, default: bool) -> bool {
        match self.option(name) {
            Some(v) => v.to_tribool_lenient().is_true(),
            None => default,
        }
    }

    /// Total number of rows across all tables (used by throughput reports).
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.row_count()).sum()
    }

    /// Number of table nodes this database still shares with `other`
    /// (same `Arc`, i.e. neither side has mutated the table since the
    /// clone).  Diagnostic hook for CoW tests and reports.
    #[must_use]
    pub fn tables_shared_with(&self, other: &Database) -> usize {
        if Arc::ptr_eq(&self.tables, &other.tables) {
            return self.tables.len();
        }
        self.tables
            .iter()
            .filter(|(name, table)| other.tables.get(*name).is_some_and(|o| Arc::ptr_eq(table, o)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancer_sql::ast::stmt::{ColumnDef, CreateTable};
    use lancer_sql::ast::Expr;
    use lancer_sql::collation::Collation;

    fn simple_schema(name: &str) -> TableSchema {
        TableSchema::from_create(&CreateTable::new(name, vec![ColumnDef::new("c0", None)])).unwrap()
    }

    fn simple_index(name: &str, table: &str) -> Index {
        Index::new(IndexDef {
            name: name.into(),
            table: table.into(),
            exprs: vec![Expr::col("c0")],
            collations: vec![Collation::Binary],
            unique: false,
            where_clause: None,
            implicit: false,
        })
    }

    #[test]
    fn table_lifecycle() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        assert!(db.create_table(simple_schema("T0")).is_err(), "names are case-insensitive");
        assert_eq!(db.table_names(), vec!["t0"]);
        db.rename_table("t0", "t1").unwrap();
        assert!(db.table("t0").is_none());
        assert!(db.table("t1").is_some());
        db.drop_table("t1").unwrap();
        assert!(matches!(db.drop_table("t1"), Err(StorageError::NoSuchTable(_))));
    }

    #[test]
    fn index_lifecycle_and_cascade_on_drop_table() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        db.create_index(simple_index("i0", "t0")).unwrap();
        assert!(db.create_index(simple_index("i0", "t0")).is_err());
        assert!(db.create_index(simple_index("i1", "missing")).is_err());
        assert_eq!(db.indexes_on("t0").len(), 1);
        db.drop_table("t0").unwrap();
        assert!(db.index("i0").is_none(), "indexes are dropped with their table");
    }

    #[test]
    fn implicit_indexes_cannot_be_dropped() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        let mut idx = simple_index("sqlite_autoindex_t0_1", "t0");
        idx.def.implicit = true;
        db.create_index(idx).unwrap();
        assert!(db.drop_index("sqlite_autoindex_t0_1").is_err());
        assert!(matches!(db.drop_index("zzz"), Err(StorageError::NoSuchIndex(_))));
    }

    #[test]
    fn rename_table_updates_indexes() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        db.create_index(simple_index("i0", "t0")).unwrap();
        db.rename_table("t0", "t5").unwrap();
        assert_eq!(db.index("i0").unwrap().def.table, "t5");
        assert_eq!(db.indexes_on("t5").len(), 1);
    }

    #[test]
    fn views_and_options() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        db.create_view(View { name: "v0".into(), query: Select::star(vec!["t0".into()]) }).unwrap();
        assert!(db
            .create_view(View { name: "t0".into(), query: Select::star(vec!["t0".into()]) })
            .is_err());
        assert_eq!(db.view_names(), vec!["v0"]);
        db.drop_view("v0").unwrap();
        assert!(db.drop_view("v0").is_err());

        db.set_option("case_sensitive_like", Value::Integer(1));
        assert!(db.option_bool("case_sensitive_like", false));
        assert!(!db.option_bool("missing", false));
        assert_eq!(db.option("case_sensitive_like"), Some(&Value::Integer(1)));
    }

    #[test]
    fn inheritance_children_lookup() {
        let mut db = Database::new();
        db.create_table(simple_schema("t0")).unwrap();
        let mut child = CreateTable::new("t1", vec![ColumnDef::new("c0", None)]);
        child.inherits = Some("t0".into());
        db.create_table(TableSchema::from_create(&child).unwrap()).unwrap();
        assert_eq!(db.children_of("t0"), vec!["t1"]);
        assert!(db.children_of("t1").is_empty());
    }
}
