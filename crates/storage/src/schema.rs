//! Table schemas and column metadata.

use lancer_sql::ast::expr::TypeName;
use lancer_sql::ast::stmt::{
    ColumnConstraint, ColumnDef, CreateTable, TableConstraint, TableEngine,
};
use lancer_sql::ast::Expr;
use lancer_sql::collation::Collation;
use lancer_sql::value::Value;
use serde::{Deserialize, Serialize};

use crate::error::{StorageError, StorageResult};

/// The *type affinity* of a column, which governs implicit conversions on
/// insertion in the SQLite-like dialect (and strict typing in the others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Affinity {
    /// Prefer integers.
    Integer,
    /// Prefer reals.
    Real,
    /// Prefer text.
    Text,
    /// Store anything as-is (BLOB affinity / no declared type).
    Blob,
    /// Boolean affinity (PostgreSQL-like dialect).
    Boolean,
    /// Numeric affinity (integer if lossless, else real).
    Numeric,
}

impl Affinity {
    /// Derives the affinity from a declared type, following SQLite's
    /// affinity rules extended with the MySQL/PostgreSQL-specific types.
    #[must_use]
    pub fn from_type(t: Option<TypeName>) -> Affinity {
        match t {
            None => Affinity::Blob,
            Some(TypeName::Integer | TypeName::TinyInt | TypeName::Unsigned | TypeName::Serial) => {
                Affinity::Integer
            }
            Some(TypeName::Real) => Affinity::Real,
            Some(TypeName::Text) => Affinity::Text,
            Some(TypeName::Blob) => Affinity::Blob,
            Some(TypeName::Boolean) => Affinity::Boolean,
        }
    }
}

/// Metadata describing a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column name.
    pub name: String,
    /// Declared type (absent only in the SQLite-like dialect).
    pub type_name: Option<TypeName>,
    /// Collation for text comparisons.
    pub collation: Collation,
    /// `NOT NULL` constraint.
    pub not_null: bool,
    /// Column-level `PRIMARY KEY`.
    pub primary_key: bool,
    /// Column-level `UNIQUE`.
    pub unique: bool,
    /// `DEFAULT` value.
    pub default: Option<Value>,
    /// Column-level `CHECK` expression (evaluated by the engine).
    pub check: Option<Expr>,
}

impl ColumnMeta {
    /// Builds column metadata from an AST column definition.
    #[must_use]
    pub fn from_def(def: &ColumnDef) -> ColumnMeta {
        let mut meta = ColumnMeta {
            name: def.name.clone(),
            type_name: def.type_name,
            collation: Collation::Binary,
            not_null: false,
            primary_key: false,
            unique: false,
            default: None,
            check: None,
        };
        for c in &def.constraints {
            match c {
                ColumnConstraint::PrimaryKey => meta.primary_key = true,
                ColumnConstraint::Unique => meta.unique = true,
                ColumnConstraint::NotNull => meta.not_null = true,
                ColumnConstraint::Collate(coll) => meta.collation = *coll,
                ColumnConstraint::Default(v) => meta.default = Some(v.clone()),
                ColumnConstraint::Check(e) => meta.check = Some(e.clone()),
            }
        }
        meta
    }

    /// The column's affinity.
    #[must_use]
    pub fn affinity(&self) -> Affinity {
        Affinity::from_type(self.type_name)
    }
}

/// The schema of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnMeta>,
    /// Columns participating in a table-level `PRIMARY KEY`, in order.
    pub primary_key: Vec<String>,
    /// Table-level `UNIQUE` constraints (each a list of columns).
    pub unique_constraints: Vec<Vec<String>>,
    /// Table-level `CHECK` expressions.
    pub checks: Vec<Expr>,
    /// SQLite `WITHOUT ROWID`.
    pub without_rowid: bool,
    /// MySQL storage engine.
    pub engine: TableEngine,
    /// PostgreSQL parent table (`INHERITS`).
    pub inherits: Option<String>,
}

impl TableSchema {
    /// Builds a schema from an AST `CREATE TABLE`, validating column
    /// uniqueness and constraint references.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate column names or constraints referencing
    /// unknown columns.
    pub fn from_create(ct: &CreateTable) -> StorageResult<TableSchema> {
        let mut columns = Vec::with_capacity(ct.columns.len());
        for def in &ct.columns {
            if columns.iter().any(|c: &ColumnMeta| c.name.eq_ignore_ascii_case(&def.name)) {
                return Err(StorageError::DuplicateColumn(def.name.clone()));
            }
            columns.push(ColumnMeta::from_def(def));
        }
        let mut primary_key: Vec<String> =
            columns.iter().filter(|c| c.primary_key).map(|c| c.name.clone()).collect();
        let mut unique_constraints = Vec::new();
        let mut checks = Vec::new();
        for constraint in &ct.constraints {
            match constraint {
                TableConstraint::PrimaryKey(cols) => {
                    for c in cols {
                        if !columns.iter().any(|m| m.name.eq_ignore_ascii_case(c)) {
                            return Err(StorageError::NoSuchColumn(c.clone()));
                        }
                    }
                    primary_key = cols.clone();
                }
                TableConstraint::Unique(cols) => {
                    for c in cols {
                        if !columns.iter().any(|m| m.name.eq_ignore_ascii_case(c)) {
                            return Err(StorageError::NoSuchColumn(c.clone()));
                        }
                    }
                    unique_constraints.push(cols.clone());
                }
                TableConstraint::Check(e) => checks.push(e.clone()),
            }
        }
        Ok(TableSchema {
            name: ct.name.clone(),
            columns,
            primary_key,
            unique_constraints,
            checks,
            without_rowid: ct.without_rowid,
            engine: ct.engine,
            inherits: ct.inherits.clone(),
        })
    }

    /// Looks up a column index by name (case-insensitive).
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Looks up column metadata by name (case-insensitive).
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.iter().find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// All column names in declaration order.
    #[must_use]
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Returns `true` if the table has an explicit primary key.
    #[must_use]
    pub fn has_primary_key(&self) -> bool {
        !self.primary_key.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancer_sql::parser::parse_statement;
    use lancer_sql::Statement;

    fn schema_of(sql: &str) -> StorageResult<TableSchema> {
        match parse_statement(sql).unwrap() {
            Statement::CreateTable(ct) => TableSchema::from_create(&ct),
            other => panic!("not a CREATE TABLE: {other:?}"),
        }
    }

    #[test]
    fn affinity_rules() {
        assert_eq!(Affinity::from_type(None), Affinity::Blob);
        assert_eq!(Affinity::from_type(Some(TypeName::Integer)), Affinity::Integer);
        assert_eq!(Affinity::from_type(Some(TypeName::Serial)), Affinity::Integer);
        assert_eq!(Affinity::from_type(Some(TypeName::Boolean)), Affinity::Boolean);
        assert_eq!(Affinity::from_type(Some(TypeName::Text)), Affinity::Text);
    }

    #[test]
    fn builds_schema_with_column_constraints() {
        let s = schema_of("CREATE TABLE t0(c0 INT PRIMARY KEY, c1 TEXT NOT NULL COLLATE NOCASE, c2 REAL DEFAULT 1.5)").unwrap();
        assert_eq!(s.columns.len(), 3);
        assert!(s.columns[0].primary_key);
        assert_eq!(s.primary_key, vec!["c0"]);
        assert!(s.columns[1].not_null);
        assert_eq!(s.columns[1].collation, Collation::NoCase);
        assert_eq!(s.columns[2].default, Some(Value::Real(1.5)));
    }

    #[test]
    fn builds_schema_with_table_constraints() {
        let s = schema_of(
            "CREATE TABLE t0(c0 COLLATE RTRIM, c1 BLOB UNIQUE, PRIMARY KEY (c0, c1)) WITHOUT ROWID",
        )
        .unwrap();
        assert_eq!(s.primary_key, vec!["c0", "c1"]);
        assert!(s.without_rowid);
        assert!(s.columns[1].unique);
    }

    #[test]
    fn rejects_duplicate_columns_and_bad_refs() {
        assert!(matches!(
            schema_of("CREATE TABLE t0(c0, c0)"),
            Err(StorageError::DuplicateColumn(_))
        ));
        assert!(matches!(
            schema_of("CREATE TABLE t0(c0, PRIMARY KEY (nope))"),
            Err(StorageError::NoSuchColumn(_))
        ));
        assert!(matches!(
            schema_of("CREATE TABLE t0(c0, UNIQUE (missing))"),
            Err(StorageError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = schema_of("CREATE TABLE t0(C0 INT, c1 TEXT)").unwrap();
        assert_eq!(s.column_index("c0"), Some(0));
        assert_eq!(s.column_index("C1"), Some(1));
        assert!(s.column("zzz").is_none());
        assert_eq!(s.column_names(), vec!["C0", "c1"]);
    }
}
