//! Secondary (and implicit constraint) indexes.
//!
//! Index *entries* are materialised key tuples per row; the engine computes
//! the keys (it owns expression evaluation) and the index stores and queries
//! them.  Indexes can be explicitly marked *corrupted*, which is how injected
//! faults surface "database disk image is malformed" errors for the error
//! oracle (§3.3, Listing 10 of the paper).

use lancer_sql::ast::Expr;
use lancer_sql::collation::Collation;
use lancer_sql::value::Value;
use serde::{Deserialize, Serialize};

use crate::error::{StorageError, StorageResult};
use crate::table::RowId;

/// The definition of an index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed expressions (usually plain column references).
    pub exprs: Vec<Expr>,
    /// Per-key collations (parallel to `exprs`).
    pub collations: Vec<Collation>,
    /// Whether the index enforces uniqueness.
    pub unique: bool,
    /// Partial-index predicate; rows for which it does not hold are absent.
    pub where_clause: Option<Expr>,
    /// Whether this index was implicitly created for a `PRIMARY KEY` or
    /// `UNIQUE` column constraint (it then cannot be dropped directly).
    pub implicit: bool,
}

/// One index entry: the computed key for a row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// The key values (parallel to [`IndexDef::exprs`]).
    pub key: Vec<Value>,
    /// The indexed row.
    pub row_id: RowId,
}

/// An index: definition plus materialised entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Index {
    /// The index definition.
    pub def: IndexDef,
    entries: Vec<IndexEntry>,
    corrupted: Option<String>,
}

impl Index {
    /// Creates an empty index.
    #[must_use]
    pub fn new(def: IndexDef) -> Index {
        Index { def, entries: Vec::new(), corrupted: None }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the index has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks the index as corrupted with a reason; subsequent integrity
    /// checks will surface a corruption error.
    pub fn corrupt(&mut self, reason: impl Into<String>) {
        self.corrupted = Some(reason.into());
    }

    /// Clears the corruption flag (e.g. after `REINDEX` rebuilds the index).
    pub fn clear_corruption(&mut self) {
        self.corrupted = None;
    }

    /// Returns the corruption reason, if the index is corrupted.
    #[must_use]
    pub fn corruption(&self) -> Option<&str> {
        self.corrupted.as_deref()
    }

    /// Compares two keys component-wise under the index collations.
    #[must_use]
    pub fn keys_equal(&self, a: &[Value], b: &[Value]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.iter().zip(b.iter()).enumerate().all(|(i, (x, y))| {
            let coll = self.def.collations.get(i).copied().unwrap_or_default();
            match (x, y) {
                (Value::Text(sx), Value::Text(sy)) => coll.equal(sx, sy),
                _ => x.same_as(y),
            }
        })
    }

    /// Inserts an entry, enforcing uniqueness for unique indexes.
    ///
    /// A key containing `NULL` never conflicts (SQL `UNIQUE` semantics).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UniqueViolation`] on a duplicate key in a
    /// unique index.
    pub fn insert(&mut self, key: Vec<Value>, row_id: RowId) -> StorageResult<()> {
        if self.def.unique && !key.iter().any(Value::is_null) {
            if let Some(existing) =
                self.entries.iter().find(|e| e.row_id != row_id && self.keys_equal(&e.key, &key))
            {
                let _ = existing;
                return Err(StorageError::UniqueViolation {
                    constraint: format!("index {}", self.def.name),
                });
            }
        }
        self.entries.push(IndexEntry { key, row_id });
        Ok(())
    }

    /// Inserts an entry without any uniqueness check (used by injected
    /// faults that skip constraint maintenance).
    pub fn insert_unchecked(&mut self, key: Vec<Value>, row_id: RowId) {
        self.entries.push(IndexEntry { key, row_id });
    }

    /// Removes all entries for a row.
    pub fn remove_row(&mut self, row_id: RowId) {
        self.entries.retain(|e| e.row_id != row_id);
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Returns the row ids whose key equals the probe key.
    #[must_use]
    pub fn lookup(&self, key: &[Value]) -> Vec<RowId> {
        self.entries.iter().filter(|e| self.keys_equal(&e.key, key)).map(|e| e.row_id).collect()
    }

    /// Returns all entries (for index scans).
    #[must_use]
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Returns all row ids present in the index.
    #[must_use]
    pub fn row_ids(&self) -> Vec<RowId> {
        self.entries.iter().map(|e| e.row_id).collect()
    }

    /// Verifies the unique property over the stored entries, returning a
    /// corruption error if it is violated or if the index was flagged
    /// corrupted.  Used by `REINDEX`, `CHECK TABLE` and `VACUUM`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Corruption`] if the index was marked
    /// corrupted, or [`StorageError::UniqueViolation`] if duplicate keys are
    /// present in a unique index.
    pub fn verify(&self) -> StorageResult<()> {
        if let Some(reason) = &self.corrupted {
            return Err(StorageError::Corruption(format!("index {}: {reason}", self.def.name)));
        }
        if self.def.unique {
            for (i, a) in self.entries.iter().enumerate() {
                if a.key.iter().any(Value::is_null) {
                    continue;
                }
                for b in &self.entries[i + 1..] {
                    if self.keys_equal(&a.key, &b.key) {
                        return Err(StorageError::UniqueViolation {
                            constraint: format!("index {}", self.def.name),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancer_sql::ast::Expr;

    fn unique_index(collation: Collation) -> Index {
        Index::new(IndexDef {
            name: "i0".into(),
            table: "t0".into(),
            exprs: vec![Expr::col("c0")],
            collations: vec![collation],
            unique: true,
            where_clause: None,
            implicit: false,
        })
    }

    #[test]
    fn unique_violation_detected() {
        let mut idx = unique_index(Collation::Binary);
        idx.insert(vec![Value::Integer(1)], 1).unwrap();
        assert!(matches!(
            idx.insert(vec![Value::Integer(1)], 2),
            Err(StorageError::UniqueViolation { .. })
        ));
        // NULL keys never conflict.
        idx.insert(vec![Value::Null], 3).unwrap();
        idx.insert(vec![Value::Null], 4).unwrap();
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn collation_aware_uniqueness() {
        let mut idx = unique_index(Collation::NoCase);
        idx.insert(vec![Value::Text("A".into())], 1).unwrap();
        assert!(idx.insert(vec![Value::Text("a".into())], 2).is_err());
        let mut rtrim = unique_index(Collation::Rtrim);
        rtrim.insert(vec![Value::Text("x".into())], 1).unwrap();
        assert!(rtrim.insert(vec![Value::Text("x   ".into())], 2).is_err());
    }

    #[test]
    fn lookup_and_removal() {
        let mut idx = unique_index(Collation::Binary);
        idx.insert(vec![Value::Integer(1)], 1).unwrap();
        idx.insert(vec![Value::Integer(2)], 2).unwrap();
        assert_eq!(idx.lookup(&[Value::Integer(2)]), vec![2]);
        assert_eq!(idx.lookup(&[Value::Real(1.0)]), vec![1], "numeric equality across classes");
        idx.remove_row(1);
        assert!(idx.lookup(&[Value::Integer(1)]).is_empty());
        idx.clear();
        assert!(idx.is_empty());
    }

    #[test]
    fn verify_detects_corruption_and_duplicates() {
        let mut idx = unique_index(Collation::Binary);
        idx.insert(vec![Value::Integer(1)], 1).unwrap();
        assert!(idx.verify().is_ok());
        idx.insert_unchecked(vec![Value::Integer(1)], 2);
        assert!(matches!(idx.verify(), Err(StorageError::UniqueViolation { .. })));
        let mut idx2 = unique_index(Collation::Binary);
        idx2.corrupt("fault injection");
        assert!(matches!(idx2.verify(), Err(StorageError::Corruption(_))));
        idx2.clear_corruption();
        assert!(idx2.verify().is_ok());
        assert!(idx2.corruption().is_none());
    }
}
