//! The injected fault registry — the population of bugs that stands in for
//! the real, unknown DBMS bugs the paper discovered.
//!
//! Each fault is modelled on a bug class the paper describes (§4.4–§4.6 and
//! the listings) and is tagged with:
//!
//! * the dialect profile it applies to,
//! * the oracle expected to expose it (containment / error / crash),
//! * the classification it would receive on a bug tracker (fixed, verified,
//!   intended behaviour, duplicate) — this is what drives the Table 2
//!   reproduction,
//! * a pointer to the paper listing / section it is modelled on.
//!
//! The engine consults [`BugProfile::is_enabled`] at the specific code paths
//! where each fault manifests.  With an empty profile the engine is
//! reference-correct, which the cross-crate property tests rely on.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::dialect::Dialect;

/// The oracle expected to expose an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Oracle {
    /// The pivot-row containment oracle (logic bug).
    Containment,
    /// The unexpected-error oracle.
    Error,
    /// A simulated crash (SEGFAULT).
    Crash,
    /// The NoREC optimisation-consistency oracle (logic bug that only an
    /// optimised execution path exhibits).
    Norec,
    /// The serializability/atomicity oracle (transaction bug: the final
    /// state of an interleaving matches no serial order of the committed
    /// sessions, or a rolled-back session's effects are visible).
    Serializability,
}

impl Oracle {
    /// Label used in Table 3.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Oracle::Containment => "Contains",
            Oracle::Error => "Error",
            Oracle::Crash => "SEGFAULT",
            Oracle::Norec => "NoREC",
            Oracle::Serializability => "Serial",
        }
    }
}

/// The tracker classification a report of this fault would receive
/// (Table 2 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BugStatus {
    /// Fixed by the developers (a true bug).
    Fixed,
    /// Verified but not yet fixed (a true bug).
    Verified,
    /// Works as intended / documented behaviour (a false bug).
    Intended,
    /// Duplicate of another report (a false bug).
    Duplicate,
}

impl BugStatus {
    /// Returns `true` for classifications the paper counts as true bugs.
    #[must_use]
    pub fn is_true_bug(self) -> bool {
        matches!(self, BugStatus::Fixed | BugStatus::Verified)
    }
}

macro_rules! define_bugs {
    ($( $variant:ident => {
        dialect: $dialect:expr,
        oracle: $oracle:expr,
        status: $status:expr,
        paper: $paper:expr,
        desc: $desc:expr
    } ),+ $(,)?) => {
        /// Identifiers for every injected fault.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum BugId {
            $( $variant, )+
        }

        impl BugId {
            /// Every registered fault.
            pub const ALL: &'static [BugId] = &[ $( BugId::$variant, )+ ];

            /// Metadata for this fault.
            #[must_use]
            pub fn info(self) -> BugInfo {
                match self {
                    $( BugId::$variant => BugInfo {
                        id: self,
                        dialect: $dialect,
                        oracle: $oracle,
                        status: $status,
                        paper_ref: $paper,
                        description: $desc,
                    }, )+
                }
            }
        }
    };
}

/// Metadata describing an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugInfo {
    /// The fault identifier.
    pub id: BugId,
    /// The dialect profile the fault applies to.
    pub dialect: Dialect,
    /// The oracle expected to expose the fault.
    pub oracle: Oracle,
    /// The tracker classification a report would receive.
    pub status: BugStatus,
    /// The paper listing / section the fault is modelled on.
    pub paper_ref: &'static str,
    /// Human-readable description.
    pub description: &'static str,
}

define_bugs! {
    // ------------------------------------------------------- SQLite profile
    SqlitePartialIndexImpliesNotNull => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Listing 1",
        desc: "partial index is used for `c0 IS NOT <literal>` on the wrong assumption that it implies `c0 NOT NULL`, dropping NULL pivot rows"
    },
    SqliteNoCaseWithoutRowidDedup => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Listing 4",
        desc: "a NOCASE index on a WITHOUT ROWID table treats case-differing keys as duplicates and hides one row"
    },
    SqliteRtrimComparisonTrimsBothSides => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Listing 5",
        desc: "RTRIM collation is implemented as full trim, so comparisons against leading-space keys miss rows"
    },
    SqliteSkipScanDistinct => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Listing 6",
        desc: "the skip-scan optimisation applied to DISTINCT queries after ANALYZE drops result rows"
    },
    SqliteLikeIntAffinityOptimisation => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Listing 7",
        desc: "the LIKE optimisation on non-TEXT-affinity UNIQUE NOCASE columns rejects exact matches"
    },
    SqliteTextMinusIntegerPrecision => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Listing 2",
        desc: "subtracting a large integer from a TEXT value goes through floating point and loses precision"
    },
    SqliteDoubleQuotedStringIndex => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Listing 8",
        desc: "double-quoted strings in index expressions re-bind to a renamed column and change query results"
    },
    SqliteCaseSensitiveLikePragmaSchema => {
        dialect: Dialect::Sqlite, oracle: Oracle::Error, status: BugStatus::Intended,
        paper: "Listing 9",
        desc: "changing PRAGMA case_sensitive_like with a LIKE index makes VACUUM report a malformed schema (documented as a design defect)"
    },
    SqliteRealPrimaryKeyUpdateCorruption => {
        dialect: Dialect::Sqlite, oracle: Oracle::Error, status: BugStatus::Fixed,
        paper: "Listing 10",
        desc: "UPDATE OR REPLACE on a REAL PRIMARY KEY column corrupts the implicit index (malformed disk image)"
    },
    SqliteReindexSpuriousUniqueFailure => {
        dialect: Dialect::Sqlite, oracle: Oracle::Error, status: BugStatus::Fixed,
        paper: "Section 4.4 (REINDEX bugs)",
        desc: "REINDEX reports a spurious UNIQUE constraint failure for NOCASE unique indexes"
    },
    SqliteIndexStaleAfterUpdate => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Section 4.4 (index bugs)",
        desc: "index entries are not updated when the indexed column is modified, so index scans miss rows"
    },
    SqliteCollateIndexBinaryKeys => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Section 4.4 (COLLATE bugs)",
        desc: "indexes on NOCASE columns are built with BINARY keys, so equality probes miss case-differing rows"
    },
    SqliteLikeOnBlobAlwaysFalse => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Verified,
        paper: "Section 4.4 (type flexibility)",
        desc: "LIKE applied to BLOB values yields FALSE instead of matching their text conversion"
    },
    SqliteDistinctNegativeZero => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Section 4.4 (type flexibility)",
        desc: "DISTINCT separates 0.0 and -0.0 into two rows while comparisons treat them as equal"
    },
    SqliteVacuumExpressionIndexCorruption => {
        dialect: Dialect::Sqlite, oracle: Oracle::Error, status: BugStatus::Fixed,
        paper: "Section 4.4 (error oracle)",
        desc: "VACUUM with expression indexes present corrupts the rebuilt index (malformed disk image)"
    },
    SqliteAlterRenameBreaksIndex => {
        dialect: Dialect::Sqlite, oracle: Oracle::Error, status: BugStatus::Fixed,
        paper: "Section 4.4 (error oracle)",
        desc: "ALTER TABLE RENAME COLUMN leaves index expressions referring to the old name, later reported as a malformed schema"
    },
    SqliteIntRealComparisonTruncates => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Section 4.4 (type flexibility)",
        desc: "comparing an INTEGER-affinity column with a REAL constant truncates the constant before comparing"
    },
    SqliteGroupByNoCaseDuplicates => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Section 4.4 (COLLATE bugs)",
        desc: "GROUP BY on a NOCASE column produces separate groups for case-differing values"
    },
    SqliteLikeEscapeCrash => {
        dialect: Dialect::Sqlite, oracle: Oracle::Crash, status: BugStatus::Fixed,
        paper: "Section 4.2 (crash bugs)",
        desc: "a LIKE pattern ending in an escape character crashes the pattern compiler"
    },
    SqliteTypeofCastQuirk => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Intended,
        paper: "Section 4.2 (intended behaviour)",
        desc: "TYPEOF of a CAST BLOB reports 'text'; documented storage-class behaviour, reported but intended"
    },
    SqliteLikeIntAffinityOptimisationGlob => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Duplicate,
        paper: "Listing 7 (duplicate family)",
        desc: "a second manifestation of the LIKE optimisation family; reported separately, closed as duplicate"
    },
    SqliteRowidAliasInsertMismatch => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Section 4.4",
        desc: "INTEGER PRIMARY KEY rowid aliasing stores the wrong value when inserting text that looks numeric"
    },
    SqliteNotNullDefaultAltered => {
        dialect: Dialect::Sqlite, oracle: Oracle::Error, status: BugStatus::Fixed,
        paper: "Section 4.4 (error oracle)",
        desc: "ALTER TABLE ADD COLUMN with NOT NULL DEFAULT leaves existing rows NULL, detected by REINDEX as corruption"
    },
    SqliteUpdateOrReplaceDeletesTooMany => {
        dialect: Dialect::Sqlite, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Section 4.4",
        desc: "UPDATE OR REPLACE removes conflicting rows even when the conflict involves NULL keys"
    },
    SqliteTornRollbackIndexed => {
        dialect: Dialect::Sqlite, oracle: Oracle::Serializability, status: BugStatus::Fixed,
        paper: "transaction extension (torn rollback)",
        desc: "ROLLBACK re-applies the undone statements that touch indexed tables, leaving a rolled-back session's writes visible"
    },

    // -------------------------------------------------------- MySQL profile
    MysqlMemoryEngineJoinMiss => {
        dialect: Dialect::Mysql, oracle: Oracle::Containment, status: BugStatus::Verified,
        paper: "Listing 11",
        desc: "joins between default-engine and MEMORY-engine tables drop rows whose join key needs an implicit cast"
    },
    MysqlUnsignedCastNegativeCompare => {
        dialect: Dialect::Mysql, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Listing 11 / §4.5 unsigned bugs",
        desc: "CAST(negative AS UNSIGNED) compares as a negative value instead of wrapping to the unsigned domain"
    },
    MysqlNullSafeEqOutOfRange => {
        dialect: Dialect::Mysql, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Listing 12",
        desc: "`<=>` against a constant outside the column type's range yields FALSE instead of comparing the stored value"
    },
    MysqlDoubleNegationFolded => {
        dialect: Dialect::Mysql, oracle: Oracle::Containment, status: BugStatus::Duplicate,
        paper: "Listing 13",
        desc: "NOT(NOT x) is folded to x for integer operands; already fixed upstream, closed as duplicate"
    },
    MysqlSmallDoubleTextFalse => {
        dialect: Dialect::Mysql, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Section 4.5 (value range bugs)",
        desc: "small doubles stored in TEXT columns evaluate to FALSE in boolean contexts"
    },
    MysqlTinyIntRangeCompare => {
        dialect: Dialect::Mysql, oracle: Oracle::Containment, status: BugStatus::Verified,
        paper: "Section 4.5 (value range bugs)",
        desc: "comparisons of TINYINT columns against out-of-range constants are clamped before comparing"
    },
    MysqlSetOptionNondeterministicError => {
        dialect: Dialect::Mysql, oracle: Oracle::Error, status: BugStatus::Fixed,
        paper: "Listing 3",
        desc: "SET GLOBAL key_cache_division_limit nondeterministically fails with 'Incorrect arguments to SET'"
    },
    MysqlCheckTableExpressionIndexCrash => {
        dialect: Dialect::Mysql, oracle: Oracle::Crash, status: BugStatus::Fixed,
        paper: "Listing 14 (CVE-2019-2879)",
        desc: "CHECK TABLE ... FOR UPGRADE on a table with an expression index dereferences a dangling pointer"
    },
    MysqlRepairTableMarksCrashed => {
        dialect: Dialect::Mysql, oracle: Oracle::Error, status: BugStatus::Verified,
        paper: "Section 4.3 (REPAIR TABLE)",
        desc: "REPAIR TABLE on a MEMORY-engine table marks the table as crashed"
    },
    MysqlUnsignedSubtractionWraps => {
        dialect: Dialect::Mysql, oracle: Oracle::Containment, status: BugStatus::Intended,
        paper: "Section 4.5",
        desc: "unsigned subtraction wrapping reported as a bug, documented as intended BIGINT UNSIGNED semantics"
    },
    MysqlLostUpdate => {
        dialect: Dialect::Mysql, oracle: Oracle::Serializability, status: BugStatus::Verified,
        paper: "transaction extension (lost update)",
        desc: "COMMIT publishes the session's private workspace wholesale, clobbering writes other sessions committed since its BEGIN"
    },

    // --------------------------------------------------- PostgreSQL profile
    PostgresInheritanceGroupByMissingRow => {
        dialect: Dialect::Postgres, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "Listing 15",
        desc: "GROUP BY over an inheritance parent assumes the child respects the parent's PRIMARY KEY and merges distinct rows"
    },
    PostgresStatisticsNegativeBitmapset => {
        dialect: Dialect::Postgres, oracle: Oracle::Error, status: BugStatus::Fixed,
        paper: "Listing 16",
        desc: "extended statistics plus an expression index make predicate evaluation fail with 'negative bitmapset member not allowed'"
    },
    PostgresIndexUnexpectedNull => {
        dialect: Dialect::Postgres, oracle: Oracle::Error, status: BugStatus::Fixed,
        paper: "Listing 17",
        desc: "a range comparison over an index built after UPDATE reports 'found unexpected null value in index'"
    },
    PostgresVacuumIntegerOverflow => {
        dialect: Dialect::Postgres, oracle: Oracle::Error, status: BugStatus::Intended,
        paper: "Listing 18",
        desc: "VACUUM FULL fails with 'integer out of range' via an expression index; declared acceptable by the developers"
    },
    PostgresVacuumFullDeadlock => {
        dialect: Dialect::Postgres, oracle: Oracle::Error, status: BugStatus::Intended,
        paper: "Section 4.6 (false positives)",
        desc: "concurrent VACUUM FULL deadlocks across databases; closed as routine-use guidance"
    },
    PostgresStatisticsCrashDuplicate => {
        dialect: Dialect::Postgres, oracle: Oracle::Crash, status: BugStatus::Duplicate,
        paper: "Listing 16 (duplicate family)",
        desc: "a crash with the same root cause as the negative-bitmapset error; closed as duplicate"
    },
    PostgresSerialNotNullBypass => {
        dialect: Dialect::Postgres, oracle: Oracle::Containment, status: BugStatus::Verified,
        paper: "Section 4.6",
        desc: "rows inserted through an inheritance child are skipped by parent scans when the parent column is SERIAL"
    },
    PostgresSerialCounterSurvivesRollback => {
        dialect: Dialect::Postgres, oracle: Oracle::Serializability, status: BugStatus::Intended,
        paper: "transaction extension (sequences ignore rollback)",
        desc: "ROLLBACK keeps SERIAL counter advances made inside the transaction, so later inserts skip values; matches documented sequence semantics"
    },

    // ------------------------------------------- DuckDB-like profile
    // Extends the population beyond the paper's census with faults whose
    // root cause only exists in a columnar executor: per-lane selection
    // bitmaps, row-group statistics and lane-wide aggregate folds.
    DuckdbSelectionBitmapTailOffByOne => {
        dialect: Dialect::Duckdb, oracle: Oracle::Containment, status: BugStatus::Fixed,
        paper: "columnar extension (selection vectors)",
        desc: "the filter's selection bitmap mishandles the partial tail lane group, dropping the last qualifying row when the input length is not a lane multiple"
    },
    DuckdbAnalyzeRowGroupChecksum => {
        dialect: Dialect::Duckdb, oracle: Oracle::Error, status: BugStatus::Verified,
        paper: "columnar extension (row-group statistics)",
        desc: "ANALYZE validates per-row-group checksums and rejects tables whose row count leaves a partial tail row group"
    },
    DuckdbSumLaneWideningSkipsTail => {
        dialect: Dialect::Duckdb, oracle: Oracle::Norec, status: BugStatus::Fixed,
        paper: "columnar extension (vectorised aggregation)",
        desc: "the vectorised SUM fold widens lane-width blocks and skips the partial tail block, so SUM over a filtered column undercounts"
    },
    DuckdbCommitLaneAlignedPrefix => {
        dialect: Dialect::Duckdb, oracle: Oracle::Serializability, status: BugStatus::Fixed,
        paper: "transaction extension (lane-aligned commit)",
        desc: "COMMIT publishes only the lane-aligned prefix of the transaction's statement log, silently dropping the partial tail batch"
    },
}

impl BugId {
    /// The root-cause fault a duplicate report points at, if any.
    #[must_use]
    pub fn duplicate_of(self) -> Option<BugId> {
        match self {
            BugId::SqliteLikeIntAffinityOptimisationGlob => {
                Some(BugId::SqliteLikeIntAffinityOptimisation)
            }
            BugId::MysqlDoubleNegationFolded => Some(BugId::MysqlNullSafeEqOutOfRange),
            BugId::PostgresStatisticsCrashDuplicate => {
                Some(BugId::PostgresStatisticsNegativeBitmapset)
            }
            _ => None,
        }
    }

    /// All faults registered for a dialect.
    #[must_use]
    pub fn for_dialect(dialect: Dialect) -> Vec<BugId> {
        BugId::ALL.iter().copied().filter(|b| b.info().dialect == dialect).collect()
    }
}

/// The set of faults enabled in an engine instance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugProfile {
    enabled: BTreeSet<BugId>,
}

impl BugProfile {
    /// A profile with no faults: the reference-correct engine.
    #[must_use]
    pub fn none() -> BugProfile {
        BugProfile::default()
    }

    /// A profile with every fault registered for the dialect enabled — the
    /// configuration used by the evaluation campaigns.
    #[must_use]
    pub fn all_for(dialect: Dialect) -> BugProfile {
        BugProfile { enabled: BugId::for_dialect(dialect).into_iter().collect() }
    }

    /// A profile with exactly the given faults.
    #[must_use]
    pub fn with(bugs: &[BugId]) -> BugProfile {
        BugProfile { enabled: bugs.iter().copied().collect() }
    }

    /// Enables a fault.
    pub fn enable(&mut self, bug: BugId) {
        self.enabled.insert(bug);
    }

    /// Disables a fault.
    pub fn disable(&mut self, bug: BugId) {
        self.enabled.remove(&bug);
    }

    /// Returns `true` if the fault is enabled.
    #[must_use]
    pub fn is_enabled(&self, bug: BugId) -> bool {
        self.enabled.contains(&bug)
    }

    /// Number of enabled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// Returns `true` if no fault is enabled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }

    /// Iterates over the enabled faults.
    pub fn iter(&self) -> impl Iterator<Item = BugId> + '_ {
        self.enabled.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bug_has_consistent_metadata() {
        for &b in BugId::ALL {
            let info = b.info();
            assert_eq!(info.id, b);
            assert!(!info.description.is_empty());
            assert!(!info.paper_ref.is_empty());
            if let Some(root) = b.duplicate_of() {
                assert_eq!(info.status, BugStatus::Duplicate);
                assert_eq!(root.info().dialect, info.dialect, "duplicates stay within a DBMS");
            }
        }
    }

    #[test]
    fn dialect_bug_counts_follow_paper_ordering() {
        let sqlite = BugId::for_dialect(Dialect::Sqlite).len();
        let mysql = BugId::for_dialect(Dialect::Mysql).len();
        let postgres = BugId::for_dialect(Dialect::Postgres).len();
        let duckdb = BugId::for_dialect(Dialect::Duckdb).len();
        assert!(sqlite > mysql, "paper found most bugs in SQLite");
        assert!(mysql > postgres, "paper found fewest bugs in PostgreSQL");
        assert!(postgres > duckdb, "the columnar extension stays smaller than every paper dialect");
        assert!(duckdb >= 2, "the columnar profile needs at least two faults");
        assert_eq!(sqlite + mysql + postgres + duckdb, BugId::ALL.len());
    }

    #[test]
    fn oracle_distribution_matches_table3_shape() {
        let count = |o: Oracle| BugId::ALL.iter().filter(|b| b.info().oracle == o).count();
        let contains = count(Oracle::Containment);
        let error = count(Oracle::Error);
        let crash = count(Oracle::Crash);
        assert!(contains > error, "containment oracle finds the most bugs (Table 3)");
        assert!(error > crash, "error oracle finds more than crashes (Table 3)");
        assert!(crash >= 2);
    }

    #[test]
    fn profile_operations() {
        let mut p = BugProfile::none();
        assert!(p.is_empty());
        p.enable(BugId::SqliteSkipScanDistinct);
        assert!(p.is_enabled(BugId::SqliteSkipScanDistinct));
        assert!(!p.is_enabled(BugId::MysqlMemoryEngineJoinMiss));
        p.disable(BugId::SqliteSkipScanDistinct);
        assert!(p.is_empty());

        let all = BugProfile::all_for(Dialect::Sqlite);
        assert_eq!(all.len(), BugId::for_dialect(Dialect::Sqlite).len());
        assert!(all.iter().all(|b| b.info().dialect == Dialect::Sqlite));
    }

    #[test]
    fn true_bug_classification() {
        assert!(BugStatus::Fixed.is_true_bug());
        assert!(BugStatus::Verified.is_true_bug());
        assert!(!BugStatus::Intended.is_true_bug());
        assert!(!BugStatus::Duplicate.is_true_bug());
    }
}
