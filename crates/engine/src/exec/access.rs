//! Catalog facts shared by the executor and the planner.
//!
//! The planner (`crate::plan`) models the executor's access-path choices
//! from the catalog alone; the executor's pipeline assembly
//! (`crate::exec::pipeline`) makes the real choice.  Both read the *same*
//! facts from this module so the two can never drift apart:
//!
//! * [`find_equality_probe`] — the `col = literal` WHERE shape that makes
//!   a single-table query eligible for an index probe at all,
//! * [`probe_candidates`] — the non-partial indexes whose first key is
//!   the probed column, in catalog order.
//!
//! The executor probes the **first** candidate unconditionally — its fast
//! path is deliberately collation-oblivious, which is exactly the gap the
//! paper's §4.4 collation bugs hide in.  The planner walks the same
//! candidate list but additionally applies the soundness rule a real
//! planner would (a text probe requires the index's first-key collation
//! to match the column's) and the covering-index distinction.  Where the
//! two disagree, the plan reports the sound choice and the executor takes
//! the fast path — a documented divergence, not drift: both start from
//! the candidate list below.

use lancer_sql::ast::expr::{BinaryOp, Expr};
use lancer_sql::value::Value;
use lancer_storage::index::Index;
use lancer_storage::Database;

use crate::dialect::Dialect;

/// Detects a WHERE clause that is exactly `col = literal` (either operand
/// order) and returns the probed column and literal.  The WHERE root must
/// be the equality itself; conjunctions are not searched, mirroring the
/// narrow fast path the executor implements.
#[must_use]
pub(crate) fn find_equality_probe(expr: &Expr) -> Option<(String, Value)> {
    match expr {
        Expr::Binary { op: BinaryOp::Eq, left, right } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) if !v.is_null() => {
                Some((c.column.clone(), v.clone()))
            }
            (Expr::Literal(v), Expr::Column(c)) if !v.is_null() => {
                Some((c.column.clone(), v.clone()))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Returns `true` when an equality probe on `table` would be unsound
/// because the table is a PostgreSQL inheritance parent: its indexes only
/// cover its *own* rows, while a scan of the parent also returns child
/// rows, so serving the query from the index would silently drop every
/// matching child row.  (Found by the NoREC oracle on a fault-free
/// engine — the `WHERE p` side probed the parent index, the
/// `SUM(CASE WHEN p ...)` rewrite scanned parent + children.)  Shared by
/// both executors and the planner so all three refuse the probe
/// identically.
#[must_use]
pub(crate) fn probe_blocked_by_inheritance(db: &Database, dialect: Dialect, table: &str) -> bool {
    dialect == Dialect::Postgres && db.has_children(table)
}

/// The indexes on `table` that an equality probe on `col` could use:
/// non-partial, with the probed column as their first key expression, in
/// catalog order.  The executor probes the first entry; the planner
/// filters the same list further (collation soundness, covering
/// detection).
#[must_use]
pub(crate) fn probe_candidates<'a>(db: &'a Database, table: &str, col: &str) -> Vec<&'a Index> {
    db.indexes_on(table)
        .into_iter()
        .filter(|i| {
            i.def.where_clause.is_none()
                && matches!(
                    i.def.exprs.first(),
                    Some(Expr::Column(c)) if c.column.eq_ignore_ascii_case(col)
                )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;
    use crate::exec::Engine;

    #[test]
    fn equality_probe_requires_a_literal_root() {
        let probe = |sql: &str| {
            find_equality_probe(&lancer_sql::parser::parse_expression(sql).unwrap())
                .map(|(c, v)| (c, v.to_sql_literal()))
        };
        assert_eq!(probe("c0 = 1"), Some(("c0".into(), "1".into())));
        assert_eq!(probe("2 = c1"), Some(("c1".into(), "2".into())));
        assert_eq!(probe("c0 = NULL"), None, "NULL probes are never index-eligible");
        assert_eq!(probe("c0 = 1 AND c1 = 2"), None, "conjunctions are not searched");
        assert_eq!(probe("c0 > 1"), None);
    }

    #[test]
    fn probe_candidates_skip_partial_and_wrong_first_key() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_script(
            "CREATE TABLE t0(c0 INT, c1 INT);
             CREATE INDEX i_partial ON t0(c0) WHERE c0 IS NOT NULL;
             CREATE INDEX i_second ON t0(c1, c0);
             CREATE INDEX i_match ON t0(c0, c1);",
        )
        .unwrap();
        let names: Vec<&str> = probe_candidates(e.database(), "t0", "c0")
            .iter()
            .map(|i| i.def.name.as_str())
            .collect();
        assert_eq!(names, vec!["i_match"]);
        assert!(probe_candidates(e.database(), "t0", "nope").is_empty());
    }
}
