//! `SELECT` execution: row sources, joins, filtering, grouping, projection,
//! `DISTINCT`, ordering and compound queries.
//!
//! Most containment-oracle faults are injected here, because this is where a
//! real DBMS's planner and optimisations live — exactly the components the
//! paper found to be the richest source of logic bugs.

use lancer_sql::ast::expr::{BinaryOp, Expr, TypeName};
use lancer_sql::ast::stmt::{CompoundOp, JoinKind, Query, Select, SelectItem, TableEngine};
use lancer_sql::collation::Collation;
use lancer_sql::value::Value;
use lancer_storage::schema::ColumnMeta;
use lancer_storage::StorageError;

use crate::bugs::BugId;
use crate::dialect::Dialect;
use crate::error::{EngineError, EngineResult};
use crate::eval::{eval_aggregate, RowSchema, SourceSchema};
use crate::exec::{Engine, QueryResult};

/// Rows of one `FROM` source together with its schema.
struct SourceData {
    schema: SourceSchema,
    rows: Vec<Vec<Value>>,
    memory_engine: bool,
}

impl Engine {
    pub(crate) fn exec_query(&mut self, q: &Query) -> EngineResult<QueryResult> {
        match q {
            Query::Select(s) => self.exec_select(s),
            Query::Compound { left, op, right } => {
                let l = self.exec_query(left)?;
                let r = self.exec_query(right)?;
                if !l.rows.is_empty() && !r.rows.is_empty() && l.rows[0].len() != r.rows[0].len() {
                    return Err(EngineError::semantic(
                        "SELECTs to the left and right of a compound operator do not have the same number of result columns",
                    ));
                }
                // Both operands are owned, so dedup/concat moves rows into
                // the output instead of cloning them per row.
                let columns = l.columns;
                let rows = match op {
                    CompoundOp::Intersect => {
                        self.cover("exec.compound_intersect");
                        let mut out: Vec<Vec<Value>> = Vec::new();
                        for row in l.rows {
                            if r.contains_row(&row) && !contains(&out, &row) {
                                out.push(row);
                            }
                        }
                        out
                    }
                    CompoundOp::Union => {
                        self.cover("exec.compound_union");
                        let mut out: Vec<Vec<Value>> = Vec::new();
                        for row in l.rows.into_iter().chain(r.rows) {
                            if !contains(&out, &row) {
                                out.push(row);
                            }
                        }
                        out
                    }
                    CompoundOp::UnionAll => {
                        self.cover("exec.compound_union");
                        let mut out = l.rows;
                        out.extend(r.rows);
                        out
                    }
                    CompoundOp::Except => {
                        self.cover("exec.compound_except");
                        let mut out: Vec<Vec<Value>> = Vec::new();
                        for row in l.rows {
                            if !r.contains_row(&row) && !contains(&out, &row) {
                                out.push(row);
                            }
                        }
                        out
                    }
                };
                Ok(QueryResult { columns, rows, affected: 0 })
            }
        }
    }

    /// Loads the rows of one `FROM` source (table, view, or inheritance
    /// hierarchy).
    fn load_source(&mut self, name: &str) -> EngineResult<SourceData> {
        if let Some(view) = self.db.view(name).cloned() {
            self.cover("exec.view_expansion");
            let result = self.exec_select(&view.query)?;
            let columns = result
                .columns
                .iter()
                .map(|c| ColumnMeta {
                    name: c.clone(),
                    type_name: None,
                    collation: Collation::Binary,
                    not_null: false,
                    primary_key: false,
                    unique: false,
                    default: None,
                    check: None,
                })
                .collect();
            return Ok(SourceData {
                schema: SourceSchema { name: name.to_owned(), columns },
                rows: result.rows,
                memory_engine: false,
            });
        }
        self.cover("exec.table_scan");
        let table = self.db.require_table(name)?;
        let schema = table.schema.clone();
        let mut rows: Vec<Vec<Value>> = table.rows().map(|r| r.values).collect();

        // SQLite WITHOUT ROWID tables are physically the primary-key index;
        // the injected NOCASE dedup fault hides case-differing keys
        // (Listing 4).
        if schema.without_rowid
            && self.bugs().is_enabled(BugId::SqliteNoCaseWithoutRowidDedup)
            && self.table_has_nocase(&schema.name)
        {
            if let Some(pk_col) = schema.primary_key.first() {
                if let Some(pk_idx) = schema.column_index(pk_col) {
                    let mut seen: Vec<String> = Vec::new();
                    rows.retain(|r| match &r[pk_idx] {
                        Value::Text(t) => {
                            let key = t.to_ascii_lowercase();
                            if seen.contains(&key) {
                                false
                            } else {
                                seen.push(key);
                                true
                            }
                        }
                        _ => true,
                    });
                }
            }
        }

        // PostgreSQL table inheritance: scanning the parent includes child
        // rows projected onto the parent's columns.
        let children = self.db.children_of(name);
        if !children.is_empty() && self.dialect() == Dialect::Postgres {
            self.cover("exec.inheritance_expansion");
            let skip_children = self.bugs().is_enabled(BugId::PostgresSerialNotNullBypass)
                && schema.columns.iter().any(|c| c.type_name == Some(TypeName::Serial));
            if !skip_children {
                for child in children {
                    let child_table = self.db.require_table(&child)?;
                    let child_schema = child_table.schema.clone();
                    for row in child_table.rows() {
                        let projected: Vec<Value> = schema
                            .columns
                            .iter()
                            .map(|pc| {
                                child_schema
                                    .column_index(&pc.name)
                                    .map(|ci| row.values[ci].clone())
                                    .unwrap_or(Value::Null)
                            })
                            .collect();
                        rows.push(projected);
                    }
                }
            }
        }

        Ok(SourceData {
            schema: SourceSchema { name: schema.name.clone(), columns: schema.columns.clone() },
            rows,
            memory_engine: schema.engine == TableEngine::Memory,
        })
    }

    fn table_has_nocase(&self, table: &str) -> bool {
        let nocase_col = self
            .db
            .table(table)
            .map(|t| t.schema.columns.iter().any(|c| c.collation == Collation::NoCase))
            .unwrap_or(false);
        nocase_col
            || self
                .db
                .indexes_on(table)
                .iter()
                .any(|i| i.def.collations.contains(&Collation::NoCase))
    }

    /// Checks for corrupted indexes on a referenced table and reports the
    /// corruption, as a real DBMS would when the query touches them.
    fn check_corruption(&self, table: &str) -> EngineResult<()> {
        for idx in self.db.indexes_on(table) {
            if let Some(reason) = idx.corruption() {
                return Err(EngineError::corruption(format!(
                    "database disk image is malformed (index {}: {reason})",
                    idx.def.name
                )));
            }
        }
        Ok(())
    }

    /// Error-oracle faults that fire while *planning* a `SELECT`.
    fn planning_faults(&self, s: &Select) -> EngineResult<()> {
        if self.dialect() != Dialect::Postgres {
            return Ok(());
        }
        for table in &s.from {
            let has_stats = self.statistics.contains(&table.to_ascii_lowercase());
            let has_expr_index = self.db.indexes_on(table).iter().any(|i| {
                !i.def.implicit && i.def.exprs.iter().any(|e| !matches!(e, Expr::Column(_)))
            });
            if has_stats && has_expr_index {
                if let Some(w) = &s.where_clause {
                    let has_and =
                        expr_contains(w, &|e| matches!(e, Expr::Binary { op: BinaryOp::And, .. }));
                    let has_or =
                        expr_contains(w, &|e| matches!(e, Expr::Binary { op: BinaryOp::Or, .. }));
                    if has_or && self.bugs().is_enabled(BugId::PostgresStatisticsCrashDuplicate) {
                        return Err(EngineError::crash(
                            "server process terminated by signal 11: segmentation fault",
                        ));
                    }
                    if has_and && self.bugs().is_enabled(BugId::PostgresStatisticsNegativeBitmapset)
                    {
                        return Err(EngineError::internal("negative bitmapset member not allowed"));
                    }
                }
            }
            if self.bugs().is_enabled(BugId::PostgresIndexUnexpectedNull) {
                if let Some(w) = &s.where_clause {
                    for idx in self.db.indexes_on(table) {
                        if idx.def.implicit {
                            continue;
                        }
                        let Some(Expr::Column(col)) = idx.def.exprs.first() else { continue };
                        let has_null = self
                            .db
                            .table(table)
                            .map(|t| {
                                t.schema
                                    .column_index(&col.column)
                                    .is_some_and(|ci| t.rows().any(|r| r.values[ci].is_null()))
                            })
                            .unwrap_or(false);
                        let has_range = expr_contains(w, &|e| {
                            matches!(
                                e,
                                Expr::Binary { op: BinaryOp::Gt | BinaryOp::Lt, left, right }
                                    if expr_references_column(left, &col.column)
                                        || expr_references_column(right, &col.column)
                            )
                        });
                        if has_null && has_range {
                            return Err(EngineError::internal(format!(
                                "found unexpected null value in index \"{}\"",
                                idx.def.name
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    pub(crate) fn exec_select(&mut self, s: &Select) -> EngineResult<QueryResult> {
        for table in &s.from {
            if self.db.table(table).is_some() {
                self.check_corruption(table)?;
            } else if self.db.view(table).is_none() {
                return Err(StorageError::NoSuchTable(table.clone()).into());
            }
        }
        for j in &s.joins {
            if self.db.table(&j.table).is_some() {
                self.check_corruption(&j.table)?;
            }
        }
        self.planning_faults(s)?;

        // Load sources and build the joined row set.
        let mut sources: Vec<SourceData> = Vec::new();
        for name in &s.from {
            sources.push(self.load_source(name)?);
        }
        let multi_table = s.from.len() + s.joins.len() > 1;
        // Injected fault: joins with MEMORY-engine tables drop rows whose
        // key needs an implicit cast (negative integers) — Listing 11.
        if multi_table
            && s.where_clause.is_some()
            && self.bugs().is_enabled(BugId::MysqlMemoryEngineJoinMiss)
        {
            for src in &mut sources {
                if src.memory_engine {
                    src.rows
                        .retain(|r| !r.iter().any(|v| matches!(v, Value::Integer(i) if *i < 0)));
                }
            }
        }

        let mut schema = RowSchema::default();
        let multi_source = sources.len() > 1;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (i, src) in sources.into_iter().enumerate() {
            if multi_source {
                self.cover("exec.cross_join");
            }
            schema.sources.push(src.schema);
            // The first source's rows seed the join pipeline without any
            // copy; later sources pay exactly one allocation per output
            // row in `cross_product`.
            if i == 0 {
                rows = src.rows;
            } else {
                rows = cross_product(&rows, &src.rows);
            }
        }
        if schema.sources.is_empty() {
            // No FROM clause: a single constant row.
            rows = vec![Vec::new()];
        }
        // Explicit joins.
        for join in &s.joins {
            let right = self.load_source(&join.table)?;
            let right_width = right.schema.columns.len();
            schema.sources.push(right.schema.clone());
            match join.kind {
                JoinKind::Cross => self.cover("exec.cross_join"),
                JoinKind::Inner => self.cover("exec.inner_join"),
                JoinKind::Left => self.cover("exec.left_join"),
            }
            let ev = self.evaluator();
            let mut next: Vec<Vec<Value>> = Vec::new();
            match join.kind {
                JoinKind::Cross => {
                    next = cross_product(&rows, &right.rows);
                }
                JoinKind::Inner => {
                    for l in &rows {
                        for r in &right.rows {
                            let combined = concat_row(l, r);
                            let keep = match &join.on {
                                Some(on) => ev.eval_predicate(on, &schema, &combined)?.is_true(),
                                None => true,
                            };
                            if keep {
                                next.push(combined);
                            }
                        }
                    }
                }
                JoinKind::Left => {
                    for l in &rows {
                        let mut matched = false;
                        for r in &right.rows {
                            let combined = concat_row(l, r);
                            let keep = match &join.on {
                                Some(on) => ev.eval_predicate(on, &schema, &combined)?.is_true(),
                                None => true,
                            };
                            if keep {
                                matched = true;
                                next.push(combined);
                            }
                        }
                        if !matched {
                            let mut combined = Vec::with_capacity(l.len() + right_width);
                            combined.extend_from_slice(l);
                            combined.extend(std::iter::repeat_n(Value::Null, right_width));
                            next.push(combined);
                        }
                    }
                }
            }
            rows = next;
        }

        // Injected fault: a partial index whose predicate is `col NOT NULL`
        // is (incorrectly) used for `col IS NOT <literal>` conditions,
        // dropping NULL pivot rows (Listing 1).
        if self.bugs().is_enabled(BugId::SqlitePartialIndexImpliesNotNull) && s.from.len() == 1 {
            if let Some(w) = &s.where_clause {
                if let Some(col) = find_is_not_literal_column(w) {
                    let table = &s.from[0];
                    let has_partial = self.db.indexes_on(table).iter().any(|i| {
                        i.def.where_clause.as_ref().is_some_and(|p| {
                            matches!(p, Expr::IsNull { negated: true, expr }
                                if expr_references_column(expr, &col))
                        })
                    });
                    if has_partial {
                        self.cover("exec.partial_index");
                        if let Some((ci, _)) =
                            schema.resolve(&lancer_sql::ast::expr::ColumnRef::unqualified(&col))
                        {
                            rows.retain(|r| !r[ci].is_null());
                        }
                    }
                }
            }
        }

        // Index fast path for single-table equality predicates.  Without any
        // fault this is result-preserving; several faults corrupt it.
        if s.from.len() == 1 && s.joins.is_empty() {
            if let Some(w) = &s.where_clause {
                if let Some((col, lit)) = find_equality_probe(w) {
                    rows = self.index_equality_probe(&s.from[0], &col, &lit, &schema, rows)?;
                }
            }
        }

        // WHERE filter.
        if let Some(w) = &s.where_clause {
            self.cover("exec.where_filter");
            let mut where_clause = w.clone();
            // Injected fault: the LIKE optimisation on INTEGER-affinity
            // NOCASE columns rejects exact matches (Listing 7).
            if self.bugs().is_enabled(BugId::SqliteLikeIntAffinityOptimisation) {
                where_clause = rewrite_like_int_affinity(&where_clause, &schema);
            }
            let ev = self.evaluator();
            let mut kept = Vec::new();
            for r in rows {
                if ev.eval_predicate(&where_clause, &schema, &r)?.is_true() {
                    kept.push(r);
                }
            }
            rows = kept;
        }

        // Poisoned projection after RENAME COLUMN + double-quoted index
        // expression (Listing 8).
        if s.from.len() == 1 {
            let table = &s.from[0];
            let poisons: Vec<(String, String)> = self
                .poisoned_columns
                .iter()
                .filter(|(t, _, _)| t.eq_ignore_ascii_case(table))
                .map(|(_, new, old)| (new.clone(), old.clone()))
                .collect();
            for (new_name, old_name) in poisons {
                if let Some((ci, _)) =
                    schema.resolve(&lancer_sql::ast::expr::ColumnRef::unqualified(&new_name))
                {
                    for r in &mut rows {
                        r[ci] = Value::Text(old_name.to_ascii_uppercase());
                    }
                }
            }
        }

        // Aggregation or plain projection.
        let has_aggregate = s.group_by.iter().any(Expr::contains_aggregate)
            || s.having.as_ref().is_some_and(Expr::contains_aggregate)
            || s.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            });
        let (columns, mut projected) = if !s.group_by.is_empty() || has_aggregate {
            self.project_aggregate(s, &schema, &rows)?
        } else {
            self.project_plain(s, &schema, &rows)?
        };

        // DISTINCT.
        if s.distinct {
            self.cover("exec.distinct");
            projected = self.apply_distinct(s, projected)?;
        }

        // ORDER BY (ordering never affects the containment oracle, but the
        // engine still implements it for completeness).
        if !s.order_by.is_empty() {
            self.cover("exec.order_by");
            if !has_aggregate && s.group_by.is_empty() {
                // Already ordered during plain projection (see below).
            }
            projected.sort_by(|a, b| {
                for (i, term) in s.order_by.iter().enumerate() {
                    let (av, bv) = match (
                        a.get(i.min(a.len().saturating_sub(1))),
                        b.get(i.min(b.len().saturating_sub(1))),
                    ) {
                        (Some(x), Some(y)) => (x, y),
                        _ => continue,
                    };
                    let coll = term.collation.unwrap_or_default();
                    let ord = av.total_cmp(bv, coll);
                    let ord = if term.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        // LIMIT / OFFSET.
        if s.limit.is_some() || s.offset.is_some() {
            self.cover("exec.limit_offset");
            let offset = s.offset.unwrap_or(0) as usize;
            let limit = s.limit.map(|l| l as usize).unwrap_or(usize::MAX);
            projected = projected.into_iter().skip(offset).take(limit).collect();
        }

        Ok(QueryResult { columns, rows: projected, affected: 0 })
    }

    /// Uses an index to narrow down candidate rows for `col = literal`
    /// predicates on a single table.  The full WHERE clause is still applied
    /// afterwards, so with a correctly maintained index this is
    /// result-preserving.
    fn index_equality_probe(
        &mut self,
        table: &str,
        col: &str,
        lit: &Value,
        schema: &RowSchema,
        rows: Vec<Vec<Value>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        let Some(t) = self.db.table(table) else { return Ok(rows) };
        let table_schema = t.schema.clone();
        let Some(col_meta) = table_schema.column(col).cloned() else { return Ok(rows) };
        // Find a usable (non-partial) index whose first key is the column.
        let index_name = self
            .db
            .indexes_on(table)
            .iter()
            .find(|i| {
                i.def.where_clause.is_none()
                    && matches!(i.def.exprs.first(), Some(Expr::Column(c)) if c.column.eq_ignore_ascii_case(col))
            })
            .map(|i| i.def.name.clone());
        let Some(index_name) = index_name else { return Ok(rows) };
        self.cover("exec.index_lookup");
        let mut probe = lit.clone();
        // Injected fault: probes against an INTEGER PRIMARY KEY are coerced
        // to integers even when the stored value is text (§4.4).
        if self.bugs().is_enabled(BugId::SqliteRowidAliasInsertMismatch)
            && col_meta.primary_key
            && col_meta.type_name == Some(TypeName::Integer)
        {
            probe = Value::Integer(probe.to_integer_lenient().unwrap_or(0));
        }
        let binary_probe = self.bugs().is_enabled(BugId::SqliteCollateIndexBinaryKeys);
        let index = self.db.index(&index_name).expect("index just resolved");
        let matching: Vec<u64> = if binary_probe {
            index
                .entries()
                .iter()
                .filter(|e| {
                    e.key.first().is_some_and(|k| {
                        k.total_cmp(&probe, Collation::Binary) == std::cmp::Ordering::Equal
                    })
                })
                .map(|e| e.row_id)
                .collect()
        } else {
            index
                .entries()
                .iter()
                .filter(|e| {
                    e.key.first().is_some_and(|k| {
                        let coll = index.def.collations.first().copied().unwrap_or_default();
                        match (k, &probe) {
                            (Value::Text(a), Value::Text(b)) => coll.equal(a, b),
                            _ => k.same_as(&probe),
                        }
                    })
                })
                .map(|e| e.row_id)
                .collect()
        };
        // Map row ids back to full rows; fall back to the scan rows when the
        // id is gone (defensive).
        let t = self.db.require_table(table)?;
        let mut out = Vec::new();
        for rid in matching {
            if let Some(row) = t.get(rid) {
                out.push(row.values);
            }
        }
        // Keep rows that the index cannot serve (e.g. rows whose key the
        // comparison treats as equal across storage classes) out of the
        // result only if the index is authoritative; with schema width
        // mismatches (views), fall back to the original rows.
        if schema.width() != t.schema.columns.len() {
            return Ok(rows);
        }
        Ok(out)
    }

    fn project_plain(
        &mut self,
        s: &Select,
        schema: &RowSchema,
        rows: &[Vec<Value>],
    ) -> EngineResult<(Vec<String>, Vec<Vec<Value>>)> {
        let ev = self.evaluator();
        let mut columns: Vec<String> = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    for (_, c) in schema.flat_columns() {
                        columns.push(c.name);
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                }
            }
        }
        let mut projected = Vec::with_capacity(rows.len());
        for r in rows {
            let mut out_row = Vec::with_capacity(columns.len());
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => out_row.extend(r.iter().cloned()),
                    SelectItem::Expr { expr, .. } => out_row.push(ev.eval(expr, schema, r)?),
                }
            }
            projected.push(out_row);
        }
        Ok((columns, projected))
    }

    fn project_aggregate(
        &mut self,
        s: &Select,
        schema: &RowSchema,
        rows: &[Vec<Value>],
    ) -> EngineResult<(Vec<String>, Vec<Vec<Value>>)> {
        self.cover("exec.group_by");
        let ev = self.evaluator();
        // Build groups.
        let mut group_keys: Vec<Vec<Value>> = Vec::new();
        let mut groups: Vec<Vec<Vec<Value>>> = Vec::new();
        let mut input_rows: Vec<Vec<Value>> = rows.to_vec();

        // Injected fault: GROUP BY over an inheritance parent merges child
        // rows with parent rows that share the first grouping key
        // (Listing 15).
        if self.bugs().is_enabled(BugId::PostgresInheritanceGroupByMissingRow)
            && !s.group_by.is_empty()
            && s.from.len() == 1
            && !self.db.children_of(&s.from[0]).is_empty()
        {
            let mut seen: Vec<Value> = Vec::new();
            let mut filtered = Vec::new();
            for r in input_rows {
                let key = ev.eval(&s.group_by[0], schema, &r)?;
                if seen.iter().any(|k| k.same_as(&key)) {
                    continue;
                }
                seen.push(key);
                filtered.push(r);
            }
            input_rows = filtered;
        }

        if s.group_by.is_empty() {
            group_keys.push(Vec::new());
            groups.push(input_rows);
        } else {
            let drop_null_groups = self.bugs().is_enabled(BugId::SqliteGroupByNoCaseDuplicates)
                && s.group_by.iter().any(|g| ev.collation_of(g, schema) == Collation::NoCase);
            for r in input_rows {
                let mut key = Vec::with_capacity(s.group_by.len());
                for g in &s.group_by {
                    key.push(ev.eval(g, schema, &r)?);
                }
                // Injected fault: NULL-keyed groups are dropped when grouping
                // on a NOCASE column (§4.4 COLLATE bugs).
                if drop_null_groups && key.iter().any(Value::is_null) {
                    continue;
                }
                match group_keys.iter().position(|k| {
                    k.len() == key.len() && k.iter().zip(key.iter()).all(|(a, b)| a.same_as(b))
                }) {
                    Some(i) => groups[i].push(r),
                    None => {
                        group_keys.push(key);
                        groups.push(vec![r]);
                    }
                }
            }
        }

        let mut columns: Vec<String> = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    for (_, c) in schema.flat_columns() {
                        columns.push(c.name);
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                }
            }
        }

        let mut out_rows = Vec::new();
        for group in &groups {
            // HAVING.
            if let Some(h) = &s.having {
                self.cover("exec.having");
                let hv = self.eval_aggregate_expr(h, schema, group)?;
                if !self.evaluator().value_to_tribool(&hv)?.is_true() {
                    continue;
                }
            }
            let mut out_row = Vec::new();
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => {
                        if let Some(first) = group.first() {
                            out_row.extend(first.iter().cloned());
                        } else {
                            out_row.extend(std::iter::repeat_n(Value::Null, schema.width()));
                        }
                    }
                    SelectItem::Expr { expr, .. } => {
                        out_row.push(self.eval_aggregate_expr(expr, schema, group)?);
                    }
                }
            }
            out_rows.push(out_row);
        }
        // A query with aggregates but no GROUP BY always yields one row,
        // even over an empty input.
        if s.group_by.is_empty() && out_rows.is_empty() && s.having.is_none() {
            let mut out_row = Vec::new();
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => {
                        out_row.extend(std::iter::repeat_n(Value::Null, schema.width()));
                    }
                    SelectItem::Expr { expr, .. } => {
                        out_row.push(self.eval_aggregate_expr(expr, schema, &[])?);
                    }
                }
            }
            out_rows.push(out_row);
        }
        Ok((columns, out_rows))
    }

    /// Evaluates an expression that may contain aggregate calls over a group
    /// of rows.
    fn eval_aggregate_expr(
        &self,
        expr: &Expr,
        schema: &RowSchema,
        group: &[Vec<Value>],
    ) -> EngineResult<Value> {
        self.cover_const("expr.aggregate");
        let ev = self.evaluator();
        match expr {
            Expr::Aggregate { func, arg, distinct } => {
                let values: Vec<Value> = match arg {
                    None => group.iter().map(|_| Value::Integer(1)).collect(),
                    Some(a) => {
                        group.iter().map(|r| ev.eval(a, schema, r)).collect::<EngineResult<_>>()?
                    }
                };
                eval_aggregate(*func, &values, *distinct, self.dialect())
            }
            // Non-aggregate expressions are evaluated against the first row
            // of the group (the bare-column shortcut SQLite and MySQL allow).
            _ if !expr.contains_aggregate() => match group.first() {
                Some(r) => ev.eval(expr, schema, r),
                None => Ok(Value::Null),
            },
            Expr::Binary { op, left, right } => {
                let l = self.eval_aggregate_expr(left, schema, group)?;
                let r = self.eval_aggregate_expr(right, schema, group)?;
                ev.eval(
                    &Expr::Binary {
                        op: *op,
                        left: Box::new(Expr::Literal(l)),
                        right: Box::new(Expr::Literal(r)),
                    },
                    &RowSchema::empty(),
                    &[],
                )
            }
            Expr::Unary { op, expr: inner } => {
                let v = self.eval_aggregate_expr(inner, schema, group)?;
                ev.eval(
                    &Expr::Unary { op: *op, expr: Box::new(Expr::Literal(v)) },
                    &RowSchema::empty(),
                    &[],
                )
            }
            other => Err(EngineError::semantic(format!(
                "unsupported aggregate expression shape: {other}"
            ))),
        }
    }

    fn cover_const(&self, _feature: &str) {
        // Coverage requires &mut self; aggregate-expression coverage is
        // recorded by the callers that own mutable access.
    }

    fn apply_distinct(
        &mut self,
        s: &Select,
        rows: Vec<Vec<Value>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        // Injected fault: the skip-scan optimisation applied to DISTINCT
        // after ANALYZE dedupes on the first column only (Listing 6).
        let skip_scan = self.bugs().is_enabled(BugId::SqliteSkipScanDistinct)
            && s.from.len() == 1
            && self.analyzed.contains(&s.from[0].to_ascii_lowercase())
            && !self.db.indexes_on(&s.from[0]).is_empty();
        // Injected fault: DISTINCT treats NULL as a duplicate of zero
        // (§4.4 type flexibility).
        let null_zero = self.bugs().is_enabled(BugId::SqliteDistinctNegativeZero);
        let mut out: Vec<Vec<Value>> = Vec::new();
        for row in rows {
            let duplicate = out.iter().any(|existing| {
                if skip_scan {
                    match (existing.first(), row.first()) {
                        (Some(a), Some(b)) => a.same_as(b),
                        _ => existing.is_empty() && row.is_empty(),
                    }
                } else if null_zero {
                    existing.len() == row.len()
                        && existing.iter().zip(row.iter()).all(|(a, b)| {
                            a.same_as(b)
                                || (a.same_as(&Value::Integer(0)) && b.is_null())
                                || (a.is_null() && b.same_as(&Value::Integer(0)))
                        })
                } else {
                    existing.len() == row.len()
                        && existing.iter().zip(row.iter()).all(|(a, b)| a.same_as(b))
                }
            });
            if !duplicate {
                out.push(row);
            }
        }
        Ok(out)
    }
}

fn contains(rows: &[Vec<Value>], row: &[Value]) -> bool {
    rows.iter().any(|r| r.len() == row.len() && r.iter().zip(row.iter()).all(|(a, b)| a.same_as(b)))
}

fn cross_product(left: &[Vec<Value>], right: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out = Vec::with_capacity(left.len() * right.len().max(1));
    for l in left {
        for r in right {
            out.push(concat_row(l, r));
        }
    }
    out
}

/// Concatenates two row halves with a single exact-size allocation (the
/// clone-then-extend idiom this replaces paid a second allocation on the
/// `extend` growth path for every joined row pair).
fn concat_row(l: &[Value], r: &[Value]) -> Vec<Value> {
    let mut combined = Vec::with_capacity(l.len() + r.len());
    combined.extend_from_slice(l);
    combined.extend_from_slice(r);
    combined
}

/// Returns `true` if any node of the expression satisfies the predicate.
fn expr_contains(expr: &Expr, pred: &dyn Fn(&Expr) -> bool) -> bool {
    if pred(expr) {
        return true;
    }
    let mut found = false;
    expr.for_each_child(&mut |c| {
        if !found {
            found = expr_contains(c, pred);
        }
    });
    found
}

fn expr_references_column(expr: &Expr, column: &str) -> bool {
    expr.column_refs().iter().any(|c| c.column.eq_ignore_ascii_case(column))
}

/// Detects a top-level `col IS NOT <non-null literal>` condition and returns
/// the column name.
fn find_is_not_literal_column(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Binary { op: BinaryOp::IsNot, left, right } => {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) if !v.is_null() => Some(c.column.clone()),
                (Expr::Literal(v), Expr::Column(c)) if !v.is_null() => Some(c.column.clone()),
                _ => None,
            }
        }
        Expr::Binary { op: BinaryOp::And, left, right } => {
            find_is_not_literal_column(left).or_else(|| find_is_not_literal_column(right))
        }
        _ => None,
    }
}

/// Detects a WHERE clause that is exactly `col = literal` (possibly table
/// qualified or wrapped in a conjunction) and returns the probe.
fn find_equality_probe(expr: &Expr) -> Option<(String, Value)> {
    match expr {
        Expr::Binary { op: BinaryOp::Eq, left, right } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) if !v.is_null() => {
                Some((c.column.clone(), v.clone()))
            }
            (Expr::Literal(v), Expr::Column(c)) if !v.is_null() => {
                Some((c.column.clone(), v.clone()))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Rewrites `col LIKE pattern` into `0` when `col` is an INTEGER-affinity
/// NOCASE column and the pattern contains no wildcard — the shape of the
/// broken LIKE optimisation from Listing 7.
fn rewrite_like_int_affinity(expr: &Expr, schema: &RowSchema) -> Expr {
    match expr {
        Expr::Like { negated, expr: inner, pattern } => {
            if let (Expr::Column(c), Expr::Literal(Value::Text(p))) =
                (inner.as_ref(), pattern.as_ref())
            {
                if !p.contains('%') && !p.contains('_') {
                    if let Some((_, meta)) = schema.resolve(c) {
                        if meta.type_name == Some(TypeName::Integer)
                            && meta.collation == Collation::NoCase
                        {
                            return Expr::Literal(Value::Integer(i64::from(*negated)));
                        }
                    }
                }
            }
            expr.clone()
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_like_int_affinity(left, schema)),
            right: Box::new(rewrite_like_int_affinity(right, schema)),
        },
        Expr::Unary { op, expr: inner } => {
            Expr::Unary { op: *op, expr: Box::new(rewrite_like_int_affinity(inner, schema)) }
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugProfile;

    fn sqlite() -> Engine {
        Engine::new(Dialect::Sqlite)
    }

    #[test]
    fn listing1_pivot_row_is_fetched_without_the_fault() {
        let mut e = sqlite();
        e.execute_script(
            "CREATE TABLE t0(c0);
             CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;
             INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1").unwrap();
        assert_eq!(r.rows.len(), 4);
        assert!(r.contains_row(&[Value::Null]));
    }

    #[test]
    fn listing1_fault_drops_the_null_pivot_row() {
        let mut e = Engine::with_bugs(
            Dialect::Sqlite,
            BugProfile::with(&[BugId::SqlitePartialIndexImpliesNotNull]),
        );
        e.execute_script(
            "CREATE TABLE t0(c0);
             CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;
             INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1").unwrap();
        assert!(!r.contains_row(&[Value::Null]), "the fault must hide the NULL row");
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn projection_joins_where_order_limit() {
        let mut e = sqlite();
        e.execute_script(
            "CREATE TABLE t0(c0 INT, c1 TEXT);
             CREATE TABLE t1(c0 INT);
             INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b'), (3, 'c');
             INSERT INTO t1(c0) VALUES (2), (3), (4);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT t0.c1 FROM t0, t1 WHERE t0.c0 = t1.c0").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = e
            .execute_sql("SELECT t0.c0, t1.c0 FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 ORDER BY t0.c0")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0], vec![Value::Integer(1), Value::Null]);
        let r = e.execute_sql("SELECT c0 FROM t0 ORDER BY c0 DESC LIMIT 2").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Integer(3)], vec![Value::Integer(2)]]);
        let r = e.execute_sql("SELECT c0 FROM t0 ORDER BY c0 LIMIT 1 OFFSET 1").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Integer(2)]]);
        let r = e.execute_sql("SELECT * FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.columns, vec!["c0", "c1", "c0"]);
    }

    #[test]
    fn distinct_and_aggregates() {
        let mut e = sqlite();
        e.execute_script(
            "CREATE TABLE t0(c0 INT, c1 INT);
             INSERT INTO t0(c0, c1) VALUES (1, 1), (1, 1), (2, 1), (NULL, 2);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT DISTINCT c0, c1 FROM t0").unwrap();
        assert_eq!(r.rows.len(), 3);
        let r =
            e.execute_sql("SELECT COUNT(*), SUM(c0), MIN(c0), MAX(c0), AVG(c0) FROM t0").unwrap();
        assert_eq!(r.rows[0][0], Value::Integer(4));
        assert_eq!(r.rows[0][1], Value::Integer(4));
        assert_eq!(r.rows[0][2], Value::Integer(1));
        assert_eq!(r.rows[0][3], Value::Integer(2));
        let r = e.execute_sql("SELECT c1, COUNT(*) FROM t0 GROUP BY c1").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r =
            e.execute_sql("SELECT c1, COUNT(*) FROM t0 GROUP BY c1 HAVING COUNT(*) > 1").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], Value::Integer(3));
        let r = e.execute_sql("SELECT COUNT(*) FROM t0 WHERE c0 > 100").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Integer(0)]]);
    }

    #[test]
    fn views_and_compound_queries() {
        let mut e = sqlite();
        e.execute_script(
            "CREATE TABLE t0(c0 INT);
             INSERT INTO t0(c0) VALUES (1), (2), (3);
             CREATE VIEW v0 AS SELECT c0 FROM t0 WHERE c0 > 1;",
        )
        .unwrap();
        let r = e.execute_sql("SELECT * FROM v0").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = e.execute_sql("SELECT 2 INTERSECT SELECT c0 FROM t0").unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = e.execute_sql("SELECT 9 INTERSECT SELECT c0 FROM t0").unwrap();
        assert!(r.rows.is_empty());
        let r = e.execute_sql("SELECT c0 FROM t0 UNION SELECT c0 FROM t0").unwrap();
        assert_eq!(r.rows.len(), 3);
        let r = e.execute_sql("SELECT c0 FROM t0 UNION ALL SELECT c0 FROM t0").unwrap();
        assert_eq!(r.rows.len(), 6);
        let r = e.execute_sql("SELECT c0 FROM t0 EXCEPT SELECT 2").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn postgres_inheritance_scan_includes_children() {
        let mut e = Engine::new(Dialect::Postgres);
        e.execute_script(
            "CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT);
             CREATE TABLE t1(c0 INT, c1 INT) INHERITS (t0);
             INSERT INTO t0(c0, c1) VALUES (0, 0);
             INSERT INTO t1(c0, c1) VALUES (0, 1);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT c0, c1 FROM t0 GROUP BY c0, c1").unwrap();
        assert_eq!(r.rows.len(), 2, "both the parent and the child row form groups");
    }

    #[test]
    fn listing15_fault_merges_inherited_group() {
        let mut e = Engine::with_bugs(
            Dialect::Postgres,
            BugProfile::with(&[BugId::PostgresInheritanceGroupByMissingRow]),
        );
        e.execute_script(
            "CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT);
             CREATE TABLE t1(c0 INT, c1 INT) INHERITS (t0);
             INSERT INTO t0(c0, c1) VALUES (0, 0);
             INSERT INTO t1(c0, c1) VALUES (0, 1);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT c0, c1 FROM t0 GROUP BY c0, c1").unwrap();
        assert_eq!(r.rows.len(), 1, "the fault merges the child row into the parent group");
    }

    #[test]
    fn skip_scan_distinct_fault_requires_analyze() {
        let bugs = BugProfile::with(&[BugId::SqliteSkipScanDistinct]);
        let mut e = Engine::with_bugs(Dialect::Sqlite, bugs);
        e.execute_script(
            "CREATE TABLE t1(c1, c2, c3, c4, PRIMARY KEY (c4, c3));
             INSERT INTO t1(c3, c4) VALUES (0, 1), (1, 2), (0, 3);",
        )
        .unwrap();
        let before = e.execute_sql("SELECT DISTINCT c3, c4 FROM t1").unwrap();
        assert_eq!(before.rows.len(), 3, "fault is dormant before ANALYZE");
        e.execute_sql("ANALYZE t1").unwrap();
        let after = e.execute_sql("SELECT DISTINCT c3, c4 FROM t1").unwrap();
        assert!(after.rows.len() < 3, "fault drops rows after ANALYZE");
    }

    #[test]
    fn memory_engine_join_fault() {
        let bugs = BugProfile::with(&[BugId::MysqlMemoryEngineJoinMiss]);
        let mut e = Engine::with_bugs(Dialect::Mysql, bugs);
        e.execute_script(
            "CREATE TABLE t0(c0 INT);
             CREATE TABLE t1(c0 INT) ENGINE = MEMORY;
             INSERT INTO t0(c0) VALUES (0);
             INSERT INTO t1(c0) VALUES (-1);",
        )
        .unwrap();
        let r = e
            .execute_sql(
                "SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED)) > (IFNULL('u', t0.c0))",
            )
            .unwrap();
        assert!(r.rows.is_empty(), "the fault drops the negative MEMORY-engine row");
        // Without the fault the row is fetched.
        let mut clean = Engine::new(Dialect::Mysql);
        clean
            .execute_script(
                "CREATE TABLE t0(c0 INT);
                 CREATE TABLE t1(c0 INT) ENGINE = MEMORY;
                 INSERT INTO t0(c0) VALUES (0);
                 INSERT INTO t1(c0) VALUES (-1);",
            )
            .unwrap();
        let r = clean
            .execute_sql("SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED)) > (t0.c0)")
            .unwrap();
        assert_eq!(r.rows.len(), 1, "without the fault the MEMORY-engine row joins normally");
    }

    #[test]
    fn like_int_affinity_fault_listing7() {
        let mut clean = sqlite();
        clean
            .execute_script(
                "CREATE TABLE t0(c0 INT UNIQUE COLLATE NOCASE);
                 INSERT INTO t0(c0) VALUES ('./');",
            )
            .unwrap();
        let r = clean.execute_sql("SELECT * FROM t0 WHERE t0.c0 LIKE './'").unwrap();
        assert_eq!(r.rows.len(), 1);
        let mut buggy = Engine::with_bugs(
            Dialect::Sqlite,
            BugProfile::with(&[BugId::SqliteLikeIntAffinityOptimisation]),
        );
        buggy
            .execute_script(
                "CREATE TABLE t0(c0 INT UNIQUE COLLATE NOCASE);
                 INSERT INTO t0(c0) VALUES ('./');",
            )
            .unwrap();
        let r = buggy.execute_sql("SELECT * FROM t0 WHERE t0.c0 LIKE './'").unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn postgres_planning_fault_listing16() {
        let bugs = BugProfile::with(&[BugId::PostgresStatisticsNegativeBitmapset]);
        let mut e = Engine::with_bugs(Dialect::Postgres, bugs);
        e.execute_script(
            "CREATE TABLE t0(c0 SERIAL, c1 BOOLEAN);
             CREATE STATISTICS s1 ON c0, c1 FROM t0;
             INSERT INTO t0(c1) VALUES (TRUE);
             ANALYZE;
             CREATE INDEX i0 ON t0((t0.c1 AND t0.c1));",
        )
        .unwrap();
        let err =
            e.execute_sql("SELECT t0.c0 FROM t0 WHERE (t0.c1 AND t0.c1) OR FALSE").unwrap_err();
        assert!(err.message.contains("negative bitmapset member"), "{}", err.message);
    }

    #[test]
    fn where_filter_strictness_in_postgres() {
        let mut e = Engine::new(Dialect::Postgres);
        e.execute_script("CREATE TABLE t0(c0 INT); INSERT INTO t0(c0) VALUES (1);").unwrap();
        assert!(e.execute_sql("SELECT * FROM t0 WHERE c0 + 1").is_err());
        assert_eq!(e.execute_sql("SELECT * FROM t0 WHERE c0 = 1").unwrap().rows.len(), 1);
    }

    #[test]
    fn select_from_missing_table_errors() {
        let mut e = sqlite();
        assert!(e.execute_sql("SELECT * FROM nope").is_err());
    }
}
