//! Query execution: compound queries, `FROM`-source loading, the
//! planning-time error faults, and the leaf helpers shared by the batched
//! pipeline (`exec::pipeline`) and the retained reference evaluator
//! (`exec::reference`).
//!
//! Most containment-oracle faults fire inside `SELECT` execution, because
//! that is where a real DBMS's planner and optimisations live — exactly
//! the components the paper found to be the richest source of logic bugs.
//! A plain `SELECT` runs through the operator pipeline; this module owns
//! everything both evaluators share.

use lancer_sql::ast::expr::{AggFunc, BinaryOp, Expr, TypeName};
use lancer_sql::ast::stmt::{CompoundOp, Query, Select, TableEngine};
use lancer_sql::collation::Collation;
use lancer_sql::value::Value;
use lancer_storage::schema::ColumnMeta;
use lancer_storage::StorageError;

use crate::bugs::BugId;
use crate::dialect::Dialect;
use crate::error::{EngineError, EngineResult};
use crate::eval::{eval_aggregate, RowSchema, SourceSchema};
use crate::exec::{Engine, QueryResult};

/// Rows of one `FROM` source together with its schema.
pub(crate) struct SourceData {
    pub(crate) schema: SourceSchema,
    pub(crate) rows: Vec<Vec<Value>>,
    pub(crate) memory_engine: bool,
}

impl Engine {
    pub(crate) fn exec_query(&self, q: &Query) -> EngineResult<QueryResult> {
        match q {
            Query::Select(s) => self.exec_select(s),
            Query::Compound { left, op, right } => {
                let l = self.exec_query(left)?;
                let r = self.exec_query(right)?;
                if !l.rows.is_empty() && !r.rows.is_empty() && l.rows[0].len() != r.rows[0].len() {
                    return Err(EngineError::semantic(
                        "SELECTs to the left and right of a compound operator do not have the same number of result columns",
                    ));
                }
                // Both operands are owned, so dedup/concat moves rows into
                // the output instead of cloning them per row.
                let columns = l.columns;
                let rows = match op {
                    CompoundOp::Intersect => {
                        self.cover("exec.compound_intersect");
                        let mut out: Vec<Vec<Value>> = Vec::new();
                        for row in l.rows {
                            if r.contains_row(&row) && !contains(&out, &row) {
                                out.push(row);
                            }
                        }
                        out
                    }
                    CompoundOp::Union => {
                        self.cover("exec.compound_union");
                        let mut out: Vec<Vec<Value>> = Vec::new();
                        for row in l.rows.into_iter().chain(r.rows) {
                            if !contains(&out, &row) {
                                out.push(row);
                            }
                        }
                        out
                    }
                    CompoundOp::UnionAll => {
                        self.cover("exec.compound_union");
                        let mut out = l.rows;
                        out.extend(r.rows);
                        out
                    }
                    CompoundOp::Except => {
                        self.cover("exec.compound_except");
                        let mut out: Vec<Vec<Value>> = Vec::new();
                        for row in l.rows {
                            if !r.contains_row(&row) && !contains(&out, &row) {
                                out.push(row);
                            }
                        }
                        out
                    }
                };
                Ok(QueryResult { columns, rows, affected: 0 })
            }
        }
    }

    /// The checks every `SELECT` runs before any row is produced: source
    /// existence, index-corruption detection, and the planning-time error
    /// faults.  Shared verbatim by the pipeline and the reference
    /// evaluator so both report identical errors in identical order.
    pub(crate) fn select_preflight(&self, s: &Select) -> EngineResult<()> {
        for table in &s.from {
            if self.db.table(table).is_some() {
                self.check_corruption(table)?;
            } else if self.db.view(table).is_none() {
                return Err(StorageError::NoSuchTable(table.clone()).into());
            }
        }
        for j in &s.joins {
            if self.db.table(&j.table).is_some() {
                self.check_corruption(&j.table)?;
            }
        }
        self.planning_faults(s)
    }

    /// Loads the rows of one `FROM` source (table, view, or inheritance
    /// hierarchy), expanding views through the pipeline.
    pub(crate) fn load_source(&self, name: &str) -> EngineResult<SourceData> {
        if let Some(view) = self.db.view(name).cloned() {
            self.cover("exec.view_expansion");
            let result = self.exec_select(&view.query)?;
            let columns = result
                .columns
                .iter()
                .map(|c| ColumnMeta {
                    name: c.clone(),
                    type_name: None,
                    collation: Collation::Binary,
                    not_null: false,
                    primary_key: false,
                    unique: false,
                    default: None,
                    check: None,
                })
                .collect();
            return Ok(SourceData {
                schema: SourceSchema { name: name.to_owned(), columns },
                rows: result.rows,
                memory_engine: false,
            });
        }
        self.cover("exec.table_scan");
        let table = self.db.require_table(name)?;
        let schema = table.schema.clone();
        let mut rows: Vec<Vec<Value>> = table.rows().map(|r| r.values).collect();

        // SQLite WITHOUT ROWID tables are physically the primary-key index;
        // the injected NOCASE dedup fault hides case-differing keys
        // (Listing 4).
        if schema.without_rowid
            && self.bugs().is_enabled(BugId::SqliteNoCaseWithoutRowidDedup)
            && self.table_has_nocase(&schema.name)
        {
            if let Some(pk_col) = schema.primary_key.first() {
                if let Some(pk_idx) = schema.column_index(pk_col) {
                    let mut seen: Vec<String> = Vec::new();
                    rows.retain(|r| match &r[pk_idx] {
                        Value::Text(t) => {
                            let key = t.to_ascii_lowercase();
                            if seen.contains(&key) {
                                false
                            } else {
                                seen.push(key);
                                true
                            }
                        }
                        _ => true,
                    });
                }
            }
        }

        // PostgreSQL table inheritance: scanning the parent includes child
        // rows projected onto the parent's columns.
        let children = self.db.children_of(name);
        if !children.is_empty() && self.dialect() == Dialect::Postgres {
            self.cover("exec.inheritance_expansion");
            let skip_children = self.bugs().is_enabled(BugId::PostgresSerialNotNullBypass)
                && schema.columns.iter().any(|c| c.type_name == Some(TypeName::Serial));
            if !skip_children {
                for child in children {
                    let child_table = self.db.require_table(&child)?;
                    let child_schema = child_table.schema.clone();
                    for row in child_table.rows() {
                        let projected: Vec<Value> = schema
                            .columns
                            .iter()
                            .map(|pc| {
                                child_schema
                                    .column_index(&pc.name)
                                    .map(|ci| row.values[ci].clone())
                                    .unwrap_or(Value::Null)
                            })
                            .collect();
                        rows.push(projected);
                    }
                }
            }
        }

        Ok(SourceData {
            schema: SourceSchema { name: schema.name.clone(), columns: schema.columns.clone() },
            rows,
            memory_engine: schema.engine == TableEngine::Memory,
        })
    }

    pub(crate) fn table_has_nocase(&self, table: &str) -> bool {
        let nocase_col = self
            .db
            .table(table)
            .map(|t| t.schema.columns.iter().any(|c| c.collation == Collation::NoCase))
            .unwrap_or(false);
        nocase_col
            || self
                .db
                .indexes_on(table)
                .iter()
                .any(|i| i.def.collations.contains(&Collation::NoCase))
    }

    /// Checks for corrupted indexes on a referenced table and reports the
    /// corruption, as a real DBMS would when the query touches them.
    fn check_corruption(&self, table: &str) -> EngineResult<()> {
        for idx in self.db.indexes_on(table) {
            if let Some(reason) = idx.corruption() {
                return Err(EngineError::corruption(format!(
                    "database disk image is malformed (index {}: {reason})",
                    idx.def.name
                )));
            }
        }
        Ok(())
    }

    /// Error-oracle faults that fire while *planning* a `SELECT`.
    fn planning_faults(&self, s: &Select) -> EngineResult<()> {
        if self.dialect() != Dialect::Postgres {
            return Ok(());
        }
        for table in &s.from {
            let has_stats = self.statistics.contains(&table.to_ascii_lowercase());
            let has_expr_index = self.db.indexes_on(table).iter().any(|i| {
                !i.def.implicit && i.def.exprs.iter().any(|e| !matches!(e, Expr::Column(_)))
            });
            if has_stats && has_expr_index {
                if let Some(w) = &s.where_clause {
                    let has_and =
                        expr_contains(w, &|e| matches!(e, Expr::Binary { op: BinaryOp::And, .. }));
                    let has_or =
                        expr_contains(w, &|e| matches!(e, Expr::Binary { op: BinaryOp::Or, .. }));
                    if has_or && self.bugs().is_enabled(BugId::PostgresStatisticsCrashDuplicate) {
                        return Err(EngineError::crash(
                            "server process terminated by signal 11: segmentation fault",
                        ));
                    }
                    if has_and && self.bugs().is_enabled(BugId::PostgresStatisticsNegativeBitmapset)
                    {
                        return Err(EngineError::internal("negative bitmapset member not allowed"));
                    }
                }
            }
            if self.bugs().is_enabled(BugId::PostgresIndexUnexpectedNull) {
                if let Some(w) = &s.where_clause {
                    for idx in self.db.indexes_on(table) {
                        if idx.def.implicit {
                            continue;
                        }
                        let Some(Expr::Column(col)) = idx.def.exprs.first() else { continue };
                        let has_null = self
                            .db
                            .table(table)
                            .map(|t| {
                                t.schema
                                    .column_index(&col.column)
                                    .is_some_and(|ci| t.rows().any(|r| r.values[ci].is_null()))
                            })
                            .unwrap_or(false);
                        let has_range = expr_contains(w, &|e| {
                            matches!(
                                e,
                                Expr::Binary { op: BinaryOp::Gt | BinaryOp::Lt, left, right }
                                    if expr_references_column(left, &col.column)
                                        || expr_references_column(right, &col.column)
                            )
                        });
                        if has_null && has_range {
                            return Err(EngineError::internal(format!(
                                "found unexpected null value in index \"{}\"",
                                idx.def.name
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluates an expression that may contain aggregate calls over a group
    /// of rows.
    pub(crate) fn eval_aggregate_expr(
        &self,
        expr: &Expr,
        schema: &RowSchema,
        group: &[Vec<Value>],
    ) -> EngineResult<Value> {
        self.cover("expr.aggregate");
        let ev = self.evaluator();
        match expr {
            Expr::Aggregate { func, arg, distinct } => {
                let mut values: Vec<Value> = match arg {
                    None => group.iter().map(|_| Value::Integer(1)).collect(),
                    Some(a) => {
                        group.iter().map(|r| ev.eval(a, schema, r)).collect::<EngineResult<_>>()?
                    }
                };
                // Injected fault: the vectorised SUM fold processes whole
                // lane-width blocks and skips the partial tail block
                // (columnar extension).  Applied here so the pipeline's
                // row path and the reference evaluator undercount
                // identically; the columnar fold applies the same
                // truncation to its column slice.
                if *func == AggFunc::Sum
                    && !*distinct
                    && self.bugs().is_enabled(BugId::DuckdbSumLaneWideningSkipsTail)
                {
                    values.truncate(columnar_sum_tail_len(values.len()));
                }
                eval_aggregate(*func, &values, *distinct, self.dialect())
            }
            // Non-aggregate expressions are evaluated against the first row
            // of the group (the bare-column shortcut SQLite and MySQL allow).
            _ if !expr.contains_aggregate() => match group.first() {
                Some(r) => ev.eval(expr, schema, r),
                None => Ok(Value::Null),
            },
            Expr::Binary { op, left, right } => {
                let l = self.eval_aggregate_expr(left, schema, group)?;
                let r = self.eval_aggregate_expr(right, schema, group)?;
                ev.eval(
                    &Expr::Binary {
                        op: *op,
                        left: Box::new(Expr::Literal(l)),
                        right: Box::new(Expr::Literal(r)),
                    },
                    &RowSchema::empty(),
                    &[],
                )
            }
            Expr::Unary { op, expr: inner } => {
                let v = self.eval_aggregate_expr(inner, schema, group)?;
                ev.eval(
                    &Expr::Unary { op: *op, expr: Box::new(Expr::Literal(v)) },
                    &RowSchema::empty(),
                    &[],
                )
            }
            other => Err(EngineError::semantic(format!(
                "unsupported aggregate expression shape: {other}"
            ))),
        }
    }
}

/// Lane width of the simulated columnar executor.  The three columnar
/// faults all key off a table length that is not a multiple of this, so
/// a generated table with a "ragged" row count exposes them.
pub(crate) const COLUMNAR_LANE_WIDTH: usize = 8;

/// Number of values a lane-blocked SUM fold actually consumes when the
/// tail-skipping fault is enabled: the largest lane multiple ≤ `n`.
pub(crate) fn columnar_sum_tail_len(n: usize) -> usize {
    n - n % COLUMNAR_LANE_WIDTH
}

/// Injected fault support: which kept row the broken selection bitmap
/// drops (columnar extension).  `kept` holds the input-row indices that
/// passed the filter, ascending; the bitmap mishandles the partial tail
/// lane group, losing the **last** kept row whose input index falls in
/// it.  `None` when the input length is a lane multiple (no partial
/// group) or no kept row lands in the tail.  Shared by the pipeline's
/// row and columnar filters and by the reference evaluator so all three
/// drop the same row.
pub(crate) fn selection_tail_victim(kept: &[usize], input_len: usize) -> Option<usize> {
    let tail_start = columnar_sum_tail_len(input_len);
    if tail_start == input_len {
        return None;
    }
    kept.iter().rposition(|&i| i >= tail_start)
}

pub(crate) fn contains(rows: &[Vec<Value>], row: &[Value]) -> bool {
    rows.iter().any(|r| r.len() == row.len() && r.iter().zip(row.iter()).all(|(a, b)| a.same_as(b)))
}

pub(crate) fn cross_product(left: &[Vec<Value>], right: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out = Vec::with_capacity(left.len() * right.len().max(1));
    for l in left {
        for r in right {
            out.push(concat_row(l, r));
        }
    }
    out
}

/// Concatenates two row halves with a single exact-size allocation (the
/// clone-then-extend idiom this replaces paid a second allocation on the
/// `extend` growth path for every joined row pair).
pub(crate) fn concat_row(l: &[Value], r: &[Value]) -> Vec<Value> {
    let mut combined = Vec::with_capacity(l.len() + r.len());
    combined.extend_from_slice(l);
    combined.extend_from_slice(r);
    combined
}

/// Returns `true` if any node of the expression satisfies the predicate.
fn expr_contains(expr: &Expr, pred: &dyn Fn(&Expr) -> bool) -> bool {
    if pred(expr) {
        return true;
    }
    let mut found = false;
    expr.for_each_child(&mut |c| {
        if !found {
            found = expr_contains(c, pred);
        }
    });
    found
}

pub(crate) fn expr_references_column(expr: &Expr, column: &str) -> bool {
    expr.column_refs().iter().any(|c| c.column.eq_ignore_ascii_case(column))
}

/// Detects a top-level `col IS NOT <non-null literal>` condition and returns
/// the column name.
pub(crate) fn find_is_not_literal_column(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Binary { op: BinaryOp::IsNot, left, right } => {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) if !v.is_null() => Some(c.column.clone()),
                (Expr::Literal(v), Expr::Column(c)) if !v.is_null() => Some(c.column.clone()),
                _ => None,
            }
        }
        Expr::Binary { op: BinaryOp::And, left, right } => {
            find_is_not_literal_column(left).or_else(|| find_is_not_literal_column(right))
        }
        _ => None,
    }
}

/// Rewrites `col LIKE pattern` into `0` when `col` is an INTEGER-affinity
/// NOCASE column and the pattern contains no wildcard — the shape of the
/// broken LIKE optimisation from Listing 7.
pub(crate) fn rewrite_like_int_affinity(expr: &Expr, schema: &RowSchema) -> Expr {
    match expr {
        Expr::Like { negated, expr: inner, pattern } => {
            if let (Expr::Column(c), Expr::Literal(Value::Text(p))) =
                (inner.as_ref(), pattern.as_ref())
            {
                if !p.contains('%') && !p.contains('_') {
                    if let Some((_, meta)) = schema.resolve(c) {
                        if meta.type_name == Some(TypeName::Integer)
                            && meta.collation == Collation::NoCase
                        {
                            return Expr::Literal(Value::Integer(i64::from(*negated)));
                        }
                    }
                }
            }
            expr.clone()
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_like_int_affinity(left, schema)),
            right: Box::new(rewrite_like_int_affinity(right, schema)),
        },
        Expr::Unary { op, expr: inner } => {
            Expr::Unary { op: *op, expr: Box::new(rewrite_like_int_affinity(inner, schema)) }
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugProfile;

    fn sqlite() -> Engine {
        Engine::new(Dialect::Sqlite)
    }

    #[test]
    fn listing1_pivot_row_is_fetched_without_the_fault() {
        let mut e = sqlite();
        e.execute_script(
            "CREATE TABLE t0(c0);
             CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;
             INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1").unwrap();
        assert_eq!(r.rows.len(), 4);
        assert!(r.contains_row(&[Value::Null]));
    }

    #[test]
    fn listing1_fault_drops_the_null_pivot_row() {
        let mut e = Engine::with_bugs(
            Dialect::Sqlite,
            BugProfile::with(&[BugId::SqlitePartialIndexImpliesNotNull]),
        );
        e.execute_script(
            "CREATE TABLE t0(c0);
             CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;
             INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1").unwrap();
        assert!(!r.contains_row(&[Value::Null]), "the fault must hide the NULL row");
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn projection_joins_where_order_limit() {
        let mut e = sqlite();
        e.execute_script(
            "CREATE TABLE t0(c0 INT, c1 TEXT);
             CREATE TABLE t1(c0 INT);
             INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b'), (3, 'c');
             INSERT INTO t1(c0) VALUES (2), (3), (4);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT t0.c1 FROM t0, t1 WHERE t0.c0 = t1.c0").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = e
            .execute_sql("SELECT t0.c0, t1.c0 FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0 ORDER BY t0.c0")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0], vec![Value::Integer(1), Value::Null]);
        let r = e.execute_sql("SELECT c0 FROM t0 ORDER BY c0 DESC LIMIT 2").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Integer(3)], vec![Value::Integer(2)]]);
        let r = e.execute_sql("SELECT c0 FROM t0 ORDER BY c0 LIMIT 1 OFFSET 1").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Integer(2)]]);
        let r = e.execute_sql("SELECT * FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.columns, vec!["c0", "c1", "c0"]);
    }

    #[test]
    fn distinct_and_aggregates() {
        let mut e = sqlite();
        e.execute_script(
            "CREATE TABLE t0(c0 INT, c1 INT);
             INSERT INTO t0(c0, c1) VALUES (1, 1), (1, 1), (2, 1), (NULL, 2);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT DISTINCT c0, c1 FROM t0").unwrap();
        assert_eq!(r.rows.len(), 3);
        let r =
            e.execute_sql("SELECT COUNT(*), SUM(c0), MIN(c0), MAX(c0), AVG(c0) FROM t0").unwrap();
        assert_eq!(r.rows[0][0], Value::Integer(4));
        assert_eq!(r.rows[0][1], Value::Integer(4));
        assert_eq!(r.rows[0][2], Value::Integer(1));
        assert_eq!(r.rows[0][3], Value::Integer(2));
        let r = e.execute_sql("SELECT c1, COUNT(*) FROM t0 GROUP BY c1").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r =
            e.execute_sql("SELECT c1, COUNT(*) FROM t0 GROUP BY c1 HAVING COUNT(*) > 1").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], Value::Integer(3));
        let r = e.execute_sql("SELECT COUNT(*) FROM t0 WHERE c0 > 100").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Integer(0)]]);
    }

    #[test]
    fn views_and_compound_queries() {
        let mut e = sqlite();
        e.execute_script(
            "CREATE TABLE t0(c0 INT);
             INSERT INTO t0(c0) VALUES (1), (2), (3);
             CREATE VIEW v0 AS SELECT c0 FROM t0 WHERE c0 > 1;",
        )
        .unwrap();
        let r = e.execute_sql("SELECT * FROM v0").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = e.execute_sql("SELECT 2 INTERSECT SELECT c0 FROM t0").unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = e.execute_sql("SELECT 9 INTERSECT SELECT c0 FROM t0").unwrap();
        assert!(r.rows.is_empty());
        let r = e.execute_sql("SELECT c0 FROM t0 UNION SELECT c0 FROM t0").unwrap();
        assert_eq!(r.rows.len(), 3);
        let r = e.execute_sql("SELECT c0 FROM t0 UNION ALL SELECT c0 FROM t0").unwrap();
        assert_eq!(r.rows.len(), 6);
        let r = e.execute_sql("SELECT c0 FROM t0 EXCEPT SELECT 2").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn postgres_inheritance_scan_includes_children() {
        let mut e = Engine::new(Dialect::Postgres);
        e.execute_script(
            "CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT);
             CREATE TABLE t1(c0 INT, c1 INT) INHERITS (t0);
             INSERT INTO t0(c0, c1) VALUES (0, 0);
             INSERT INTO t1(c0, c1) VALUES (0, 1);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT c0, c1 FROM t0 GROUP BY c0, c1").unwrap();
        assert_eq!(r.rows.len(), 2, "both the parent and the child row form groups");
    }

    #[test]
    fn listing15_fault_merges_inherited_group() {
        let mut e = Engine::with_bugs(
            Dialect::Postgres,
            BugProfile::with(&[BugId::PostgresInheritanceGroupByMissingRow]),
        );
        e.execute_script(
            "CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT);
             CREATE TABLE t1(c0 INT, c1 INT) INHERITS (t0);
             INSERT INTO t0(c0, c1) VALUES (0, 0);
             INSERT INTO t1(c0, c1) VALUES (0, 1);",
        )
        .unwrap();
        let r = e.execute_sql("SELECT c0, c1 FROM t0 GROUP BY c0, c1").unwrap();
        assert_eq!(r.rows.len(), 1, "the fault merges the child row into the parent group");
    }

    #[test]
    fn skip_scan_distinct_fault_requires_analyze() {
        let bugs = BugProfile::with(&[BugId::SqliteSkipScanDistinct]);
        let mut e = Engine::with_bugs(Dialect::Sqlite, bugs);
        e.execute_script(
            "CREATE TABLE t1(c1, c2, c3, c4, PRIMARY KEY (c4, c3));
             INSERT INTO t1(c3, c4) VALUES (0, 1), (1, 2), (0, 3);",
        )
        .unwrap();
        let before = e.execute_sql("SELECT DISTINCT c3, c4 FROM t1").unwrap();
        assert_eq!(before.rows.len(), 3, "fault is dormant before ANALYZE");
        e.execute_sql("ANALYZE t1").unwrap();
        let after = e.execute_sql("SELECT DISTINCT c3, c4 FROM t1").unwrap();
        assert!(after.rows.len() < 3, "fault drops rows after ANALYZE");
    }

    #[test]
    fn memory_engine_join_fault() {
        let bugs = BugProfile::with(&[BugId::MysqlMemoryEngineJoinMiss]);
        let mut e = Engine::with_bugs(Dialect::Mysql, bugs);
        e.execute_script(
            "CREATE TABLE t0(c0 INT);
             CREATE TABLE t1(c0 INT) ENGINE = MEMORY;
             INSERT INTO t0(c0) VALUES (0);
             INSERT INTO t1(c0) VALUES (-1);",
        )
        .unwrap();
        let r = e
            .execute_sql(
                "SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED)) > (IFNULL('u', t0.c0))",
            )
            .unwrap();
        assert!(r.rows.is_empty(), "the fault drops the negative MEMORY-engine row");
        // Without the fault the row is fetched.
        let mut clean = Engine::new(Dialect::Mysql);
        clean
            .execute_script(
                "CREATE TABLE t0(c0 INT);
                 CREATE TABLE t1(c0 INT) ENGINE = MEMORY;
                 INSERT INTO t0(c0) VALUES (0);
                 INSERT INTO t1(c0) VALUES (-1);",
            )
            .unwrap();
        let r = clean
            .execute_sql("SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED)) > (t0.c0)")
            .unwrap();
        assert_eq!(r.rows.len(), 1, "without the fault the MEMORY-engine row joins normally");
    }

    #[test]
    fn like_int_affinity_fault_listing7() {
        let mut clean = sqlite();
        clean
            .execute_script(
                "CREATE TABLE t0(c0 INT UNIQUE COLLATE NOCASE);
                 INSERT INTO t0(c0) VALUES ('./');",
            )
            .unwrap();
        let r = clean.execute_sql("SELECT * FROM t0 WHERE t0.c0 LIKE './'").unwrap();
        assert_eq!(r.rows.len(), 1);
        let mut buggy = Engine::with_bugs(
            Dialect::Sqlite,
            BugProfile::with(&[BugId::SqliteLikeIntAffinityOptimisation]),
        );
        buggy
            .execute_script(
                "CREATE TABLE t0(c0 INT UNIQUE COLLATE NOCASE);
                 INSERT INTO t0(c0) VALUES ('./');",
            )
            .unwrap();
        let r = buggy.execute_sql("SELECT * FROM t0 WHERE t0.c0 LIKE './'").unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn postgres_planning_fault_listing16() {
        let bugs = BugProfile::with(&[BugId::PostgresStatisticsNegativeBitmapset]);
        let mut e = Engine::with_bugs(Dialect::Postgres, bugs);
        e.execute_script(
            "CREATE TABLE t0(c0 SERIAL, c1 BOOLEAN);
             CREATE STATISTICS s1 ON c0, c1 FROM t0;
             INSERT INTO t0(c1) VALUES (TRUE);
             ANALYZE;
             CREATE INDEX i0 ON t0((t0.c1 AND t0.c1));",
        )
        .unwrap();
        let err =
            e.execute_sql("SELECT t0.c0 FROM t0 WHERE (t0.c1 AND t0.c1) OR FALSE").unwrap_err();
        assert!(err.message.contains("negative bitmapset member"), "{}", err.message);
    }

    #[test]
    fn where_filter_strictness_in_postgres() {
        let mut e = Engine::new(Dialect::Postgres);
        e.execute_script("CREATE TABLE t0(c0 INT); INSERT INTO t0(c0) VALUES (1);").unwrap();
        assert!(e.execute_sql("SELECT * FROM t0 WHERE c0 + 1").is_err());
        assert_eq!(e.execute_sql("SELECT * FROM t0 WHERE c0 = 1").unwrap().rows.len(), 1);
    }

    #[test]
    fn select_from_missing_table_errors() {
        let mut e = sqlite();
        assert!(e.execute_sql("SELECT * FROM nope").is_err());
    }
}
