//! DML execution: `INSERT`, `UPDATE`, `DELETE`.

use lancer_sql::ast::expr::TypeName;
use lancer_sql::ast::stmt::{Delete, Insert, OnConflict, Update};
use lancer_sql::value::{real_to_int_saturating, text_integer_prefix, text_numeric_prefix, Value};
use lancer_storage::schema::{Affinity, ColumnMeta, TableSchema};
use lancer_storage::{RowId, StorageError};

use crate::bugs::BugId;
use crate::dialect::Dialect;
use crate::error::{EngineError, EngineResult};
use crate::eval::{RowSchema, SourceSchema};
use crate::exec::{Engine, QueryResult};

impl Engine {
    /// Applies the column's affinity / strict type to a freshly evaluated
    /// value, following the dialect's conversion rules.
    pub(crate) fn apply_affinity(&self, value: Value, col: &ColumnMeta) -> EngineResult<Value> {
        if value.is_null() {
            return Ok(Value::Null);
        }
        let affinity = col.affinity();
        match self.dialect() {
            Dialect::Sqlite => Ok(apply_sqlite_affinity(value, affinity)),
            Dialect::Mysql => apply_mysql_type(value, col),
            // Both strictly typed profiles share the no-affinity conversion
            // rules; DuckDB simply never declares SERIAL or BLOB columns.
            Dialect::Postgres | Dialect::Duckdb => apply_postgres_type(value, col),
        }
    }

    fn next_serial(&mut self, table: &str, column: &str) -> i64 {
        let key = (table.to_ascii_lowercase(), column.to_ascii_lowercase());
        let counter = self.serial_counters.entry(key).or_insert(0);
        *counter += 1;
        *counter
    }

    /// Checks NOT NULL and CHECK constraints for a candidate row.
    fn check_row_constraints(&self, schema: &TableSchema, values: &[Value]) -> EngineResult<()> {
        let row_schema = RowSchema::single(SourceSchema {
            name: schema.name.clone(),
            columns: schema.columns.clone(),
        });
        let ev = self.evaluator();
        for (i, col) in schema.columns.iter().enumerate() {
            if col.not_null && values[i].is_null() {
                return Err(EngineError::constraint(format!(
                    "NOT NULL constraint failed: {}.{}",
                    schema.name, col.name
                )));
            }
            if let Some(check) = &col.check {
                let t = ev.eval_predicate(check, &row_schema, values)?;
                if t == lancer_sql::TriBool::False {
                    return Err(EngineError::constraint(format!(
                        "CHECK constraint failed: {}.{}",
                        schema.name, col.name
                    )));
                }
            }
        }
        for check in &schema.checks {
            let t = ev.eval_predicate(check, &row_schema, values)?;
            if t == lancer_sql::TriBool::False {
                return Err(EngineError::constraint(format!(
                    "CHECK constraint failed: {}",
                    schema.name
                )));
            }
        }
        Ok(())
    }

    /// Finds rows whose unique-index keys conflict with the candidate row.
    fn find_conflicts(
        &self,
        schema: &TableSchema,
        values: &[Value],
        exclude: Option<RowId>,
    ) -> EngineResult<Vec<RowId>> {
        let mut conflicts = Vec::new();
        for index in self.database().indexes_on(&schema.name) {
            if !index.def.unique {
                continue;
            }
            if let Some(key) = self.index_key_for_row(&index.def, schema, values)? {
                if key.iter().any(Value::is_null) {
                    continue;
                }
                for rid in index.lookup(&key) {
                    if Some(rid) != exclude && !conflicts.contains(&rid) {
                        conflicts.push(rid);
                    }
                }
            }
        }
        Ok(conflicts)
    }

    /// Adds a row's entries to every index of its table.
    fn index_insert_row(
        &mut self,
        schema: &TableSchema,
        values: &[Value],
        row_id: RowId,
    ) -> EngineResult<()> {
        let keys: Vec<(String, Option<Vec<Value>>)> = self
            .database()
            .indexes_on(&schema.name)
            .iter()
            .map(|idx| {
                self.index_key_for_row(&idx.def, schema, values).map(|k| (idx.def.name.clone(), k))
            })
            .collect::<EngineResult<_>>()?;
        for (name, key) in keys {
            if let Some(key) = key {
                let idx = self
                    .db
                    .index_mut(&name)
                    .ok_or_else(|| StorageError::NoSuchIndex(name.clone()))?;
                idx.insert(key, row_id)?;
            }
        }
        Ok(())
    }

    /// Removes a row from the table and all its indexes.
    pub(crate) fn remove_row_everywhere(&mut self, table: &str, row_id: RowId) -> EngineResult<()> {
        for idx in self.db.indexes_on_mut(table) {
            idx.remove_row(row_id);
        }
        self.db.require_table_mut(table)?.delete(row_id);
        Ok(())
    }

    pub(crate) fn exec_insert(&mut self, ins: &Insert) -> EngineResult<QueryResult> {
        self.cover("stmt.insert");
        let schema = self.db.require_table(&ins.table)?.schema.clone();
        // Resolve target columns.
        let target_indices: Vec<usize> = if ins.columns.is_empty() {
            (0..schema.columns.len()).collect()
        } else {
            ins.columns
                .iter()
                .map(|c| {
                    schema
                        .column_index(c)
                        .ok_or_else(|| EngineError::from(StorageError::NoSuchColumn(c.clone())))
                })
                .collect::<EngineResult<_>>()?
        };
        let ev_schema = RowSchema::empty();
        let mut affected = 0usize;
        for row_exprs in &ins.rows {
            if row_exprs.len() != target_indices.len() {
                return Err(EngineError::semantic(format!(
                    "table {} has {} columns but {} values were supplied",
                    ins.table,
                    target_indices.len(),
                    row_exprs.len()
                )));
            }
            // Evaluate the supplied expressions in a constant context.
            let ev = self.evaluator();
            let mut supplied = Vec::with_capacity(row_exprs.len());
            for e in row_exprs {
                supplied.push(ev.eval(e, &ev_schema, &[])?);
            }
            // Assemble the full row with defaults / serial values.
            let mut values: Vec<Value> = Vec::with_capacity(schema.columns.len());
            for (ci, col) in schema.columns.iter().enumerate() {
                let supplied_pos = target_indices.iter().position(|&t| t == ci);
                let raw = match supplied_pos {
                    Some(p) => supplied[p].clone(),
                    None => match &col.default {
                        Some(d) => {
                            self.cover("constraint.default");
                            d.clone()
                        }
                        None if col.type_name == Some(TypeName::Serial) => {
                            Value::Integer(self.next_serial(&schema.name, &col.name))
                        }
                        None => Value::Null,
                    },
                };
                let converted = self.apply_affinity(raw, col)?;
                values.push(converted);
            }
            self.cover("constraint.not_null");
            if schema.columns.iter().any(|c| c.check.is_some()) || !schema.checks.is_empty() {
                self.cover("constraint.check");
            }
            // NOT NULL / CHECK.
            let constraint_result = self.check_row_constraints(&schema, &values);
            if let Err(e) = constraint_result {
                match ins.on_conflict {
                    OnConflict::Ignore => {
                        self.cover("constraint.on_conflict_ignore");
                        continue;
                    }
                    _ => return Err(e),
                }
            }
            // Uniqueness.
            let conflicts = self.find_conflicts(&schema, &values, None)?;
            if !conflicts.is_empty() {
                match ins.on_conflict {
                    OnConflict::Abort => {
                        return Err(EngineError::constraint(format!(
                            "UNIQUE constraint failed: {}",
                            schema.name
                        )));
                    }
                    OnConflict::Ignore => {
                        self.cover("constraint.on_conflict_ignore");
                        continue;
                    }
                    OnConflict::Replace => {
                        self.cover("constraint.on_conflict_replace");
                        for rid in conflicts {
                            self.remove_row_everywhere(&schema.name, rid)?;
                        }
                    }
                }
            }
            let row_id = self.db.require_table_mut(&schema.name)?.insert(values.clone())?;
            self.index_insert_row(&schema, &values, row_id)?;
            affected += 1;
        }
        Ok(QueryResult { columns: Vec::new(), rows: Vec::new(), affected })
    }

    pub(crate) fn exec_update(&mut self, upd: &Update) -> EngineResult<QueryResult> {
        self.cover("stmt.update");
        let schema = self.db.require_table(&upd.table)?.schema.clone();
        let row_schema = RowSchema::single(SourceSchema {
            name: schema.name.clone(),
            columns: schema.columns.clone(),
        });
        // Resolve assignment targets up front.
        let mut targets = Vec::with_capacity(upd.assignments.len());
        for (col, expr) in &upd.assignments {
            let idx = schema
                .column_index(col)
                .ok_or_else(|| EngineError::from(StorageError::NoSuchColumn(col.clone())))?;
            targets.push((idx, expr.clone()));
        }
        // Collect matching rows first, then mutate.
        let rows: Vec<(RowId, Vec<Value>)> = {
            let ev = self.evaluator();
            let table = self.db.require_table(&upd.table)?;
            let mut matching = Vec::new();
            for row in table.rows() {
                let keep = match &upd.where_clause {
                    Some(w) => ev.eval_predicate(w, &row_schema, &row.values)?.is_true(),
                    None => true,
                };
                if keep {
                    matching.push((row.id, row.values));
                }
            }
            matching
        };
        let stale_indexes = self.bugs().is_enabled(BugId::SqliteIndexStaleAfterUpdate);
        let real_pk_corruption =
            self.bugs().is_enabled(BugId::SqliteRealPrimaryKeyUpdateCorruption);
        let replace_null_corruption =
            self.bugs().is_enabled(BugId::SqliteUpdateOrReplaceDeletesTooMany);
        let mut affected = 0usize;
        for (row_id, old_values) in rows {
            let mut new_values = old_values.clone();
            {
                let ev = self.evaluator();
                for (idx, expr) in &targets {
                    let v = ev.eval(expr, &row_schema, &old_values)?;
                    new_values[*idx] = self.apply_affinity(v, &schema.columns[*idx])?;
                }
            }
            self.check_row_constraints(&schema, &new_values)?;
            let conflicts = self.find_conflicts(&schema, &new_values, Some(row_id))?;
            if !conflicts.is_empty() {
                match upd.on_conflict {
                    OnConflict::Abort => {
                        return Err(EngineError::constraint(format!(
                            "UNIQUE constraint failed: {}",
                            schema.name
                        )));
                    }
                    OnConflict::Ignore => {
                        self.cover("constraint.on_conflict_ignore");
                        continue;
                    }
                    OnConflict::Replace => {
                        self.cover("constraint.on_conflict_replace");
                        for rid in conflicts {
                            self.remove_row_everywhere(&schema.name, rid)?;
                        }
                    }
                }
            }
            // Injected fault: UPDATE OR REPLACE on a REAL PRIMARY KEY column
            // corrupts the implicit primary-key index (Listing 10).
            if real_pk_corruption
                && upd.on_conflict == OnConflict::Replace
                && schema
                    .primary_key
                    .iter()
                    .any(|pk| schema.column(pk).is_some_and(|c| c.affinity() == Affinity::Real))
            {
                let pk_index = format!("{}_pk", schema.name);
                if let Some(idx) = self.db.index_mut(&pk_index) {
                    idx.corrupt("rowid map out of sync after UPDATE OR REPLACE on REAL key");
                }
            }
            // Injected fault: UPDATE OR REPLACE involving NULL unique keys
            // leaves dangling index entries behind (error-oracle corruption).
            if replace_null_corruption
                && upd.on_conflict == OnConflict::Replace
                && new_values.iter().any(Value::is_null)
            {
                let names: Vec<String> = self
                    .database()
                    .indexes_on(&schema.name)
                    .iter()
                    .filter(|i| i.def.unique && !i.def.implicit)
                    .map(|i| i.def.name.clone())
                    .collect();
                for name in names {
                    if let Some(idx) = self.db.index_mut(&name) {
                        idx.corrupt("dangling entry after UPDATE OR REPLACE with NULL key");
                    }
                }
            }
            self.db.require_table_mut(&schema.name)?.update(row_id, new_values.clone())?;
            if !stale_indexes {
                for idx in self.db.indexes_on_mut(&schema.name) {
                    idx.remove_row(row_id);
                }
                self.index_insert_row(&schema, &new_values, row_id)?;
            }
            affected += 1;
        }
        Ok(QueryResult { columns: Vec::new(), rows: Vec::new(), affected })
    }

    pub(crate) fn exec_delete(&mut self, del: &Delete) -> EngineResult<QueryResult> {
        self.cover("stmt.delete");
        let schema = self.db.require_table(&del.table)?.schema.clone();
        let row_schema = RowSchema::single(SourceSchema {
            name: schema.name.clone(),
            columns: schema.columns.clone(),
        });
        let doomed: Vec<RowId> = {
            let ev = self.evaluator();
            let table = self.db.require_table(&del.table)?;
            let mut ids = Vec::new();
            for row in table.rows() {
                let matches = match &del.where_clause {
                    Some(w) => ev.eval_predicate(w, &row_schema, &row.values)?.is_true(),
                    None => true,
                };
                if matches {
                    ids.push(row.id);
                }
            }
            ids
        };
        let affected = doomed.len();
        for id in doomed {
            self.remove_row_everywhere(&schema.name, id)?;
        }
        Ok(QueryResult { columns: Vec::new(), rows: Vec::new(), affected })
    }
}

/// SQLite affinity conversion on insertion.
fn apply_sqlite_affinity(value: Value, affinity: Affinity) -> Value {
    match affinity {
        Affinity::Integer | Affinity::Numeric => match &value {
            Value::Text(t) => {
                let trimmed = t.trim();
                if !trimmed.is_empty() && trimmed.parse::<i64>().is_ok() {
                    Value::Integer(text_integer_prefix(trimmed))
                } else if !trimmed.is_empty() && trimmed.parse::<f64>().is_ok() {
                    let r = text_numeric_prefix(trimmed);
                    if r.fract() == 0.0 && r.abs() < 9.2e18 {
                        Value::Integer(r as i64)
                    } else {
                        Value::Real(r)
                    }
                } else {
                    value
                }
            }
            Value::Real(r) if r.fract() == 0.0 && r.abs() < 9.2e18 => Value::Integer(*r as i64),
            Value::Boolean(b) => Value::Integer(i64::from(*b)),
            _ => value,
        },
        Affinity::Real => match &value {
            Value::Integer(i) => Value::Real(*i as f64),
            Value::Text(t) => {
                let trimmed = t.trim();
                if !trimmed.is_empty() && trimmed.parse::<f64>().is_ok() {
                    Value::Real(text_numeric_prefix(trimmed))
                } else {
                    value
                }
            }
            Value::Boolean(b) => Value::Real(f64::from(u8::from(*b))),
            _ => value,
        },
        Affinity::Text => match &value {
            Value::Integer(_) | Value::Real(_) | Value::Boolean(_) => {
                Value::Text(value.to_text_lenient().unwrap_or_default())
            }
            _ => value,
        },
        // BLOB affinity (including untyped columns) stores values unchanged.
        Affinity::Blob | Affinity::Boolean => match value {
            Value::Boolean(b) => Value::Integer(i64::from(b)),
            other => other,
        },
    }
}

/// MySQL-style lenient but typed conversion.
fn apply_mysql_type(value: Value, col: &ColumnMeta) -> EngineResult<Value> {
    match col.type_name {
        Some(TypeName::Integer) | None => {
            Ok(Value::Integer(value.to_integer_lenient().unwrap_or(0)))
        }
        Some(TypeName::TinyInt) => {
            Ok(Value::Integer(value.to_integer_lenient().unwrap_or(0).clamp(-128, 127)))
        }
        Some(TypeName::Unsigned) => {
            Ok(Value::Integer(value.to_integer_lenient().unwrap_or(0).max(0)))
        }
        Some(TypeName::Real) => Ok(Value::Real(value.to_real_lenient().unwrap_or(0.0))),
        Some(TypeName::Text) => Ok(Value::Text(value.to_text_lenient().unwrap_or_default())),
        Some(TypeName::Blob) => match value {
            Value::Blob(b) => Ok(Value::Blob(b)),
            other => Ok(Value::Blob(other.to_text_lenient().unwrap_or_default().into_bytes())),
        },
        Some(TypeName::Boolean) | Some(TypeName::Serial) => {
            Ok(Value::Integer(value.to_integer_lenient().unwrap_or(0)))
        }
    }
}

/// PostgreSQL strict conversion: reject values that do not fit the type.
fn apply_postgres_type(value: Value, col: &ColumnMeta) -> EngineResult<Value> {
    let type_err = |t: &str, v: &Value| {
        Err(EngineError::semantic(format!(
            "column \"{}\" is of type {t} but expression is of type {}",
            col.name,
            v.storage_class()
        )))
    };
    match col.type_name {
        Some(TypeName::Integer) | Some(TypeName::Serial) => match &value {
            Value::Integer(_) => Ok(value),
            Value::Real(r) => Ok(Value::Integer(real_to_int_saturating(*r))),
            Value::Text(t) => match t.trim().parse::<i64>() {
                Ok(i) => Ok(Value::Integer(i)),
                Err(_) => Err(EngineError::semantic(format!(
                    "invalid input syntax for type integer: \"{t}\""
                ))),
            },
            Value::Boolean(_) | Value::Blob(_) => type_err("integer", &value),
            Value::Null => Ok(Value::Null),
        },
        Some(TypeName::Real) => match &value {
            Value::Integer(i) => Ok(Value::Real(*i as f64)),
            Value::Real(_) => Ok(value),
            Value::Text(t) => match t.trim().parse::<f64>() {
                Ok(r) => Ok(Value::Real(r)),
                Err(_) => Err(EngineError::semantic(format!(
                    "invalid input syntax for type double precision: \"{t}\""
                ))),
            },
            _ => type_err("double precision", &value),
        },
        Some(TypeName::Text) | None => Ok(Value::Text(value.to_text_lenient().unwrap_or_default())),
        Some(TypeName::Blob) => match value {
            Value::Blob(b) => Ok(Value::Blob(b)),
            other => Ok(Value::Blob(other.to_text_lenient().unwrap_or_default().into_bytes())),
        },
        Some(TypeName::Boolean) => match &value {
            Value::Boolean(_) => Ok(value),
            Value::Integer(i) => Ok(Value::Boolean(*i != 0)),
            Value::Text(t) => match t.trim().to_ascii_lowercase().as_str() {
                "t" | "true" | "yes" | "on" | "1" => Ok(Value::Boolean(true)),
                "f" | "false" | "no" | "off" | "0" => Ok(Value::Boolean(false)),
                _ => Err(EngineError::semantic(format!(
                    "invalid input syntax for type boolean: \"{t}\""
                ))),
            },
            _ => type_err("boolean", &value),
        },
        Some(TypeName::TinyInt) | Some(TypeName::Unsigned) => type_err("integer", &value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqlite_affinity_on_insert() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0 INT, c1 TEXT, c2 REAL, c3)").unwrap();
        e.execute_sql("INSERT INTO t0(c0, c1, c2, c3) VALUES ('42', 7, '3', 'abc')").unwrap();
        let r = e.execute_sql("SELECT * FROM t0").unwrap();
        assert_eq!(r.rows[0][0], Value::Integer(42));
        assert_eq!(r.rows[0][1], Value::Text("7".into()));
        assert_eq!(r.rows[0][2], Value::Real(3.0));
        assert_eq!(r.rows[0][3], Value::Text("abc".into()));
        // Dynamic typing: non-numeric text stays text even in an INT column.
        e.execute_sql("INSERT INTO t0(c0) VALUES ('xyz')").unwrap();
        let r = e.execute_sql("SELECT c0 FROM t0").unwrap();
        assert!(r.rows.iter().any(|row| row[0] == Value::Text("xyz".into())));
    }

    #[test]
    fn postgres_strict_insert() {
        let mut e = Engine::new(Dialect::Postgres);
        e.execute_sql("CREATE TABLE t0(c0 INT, c1 BOOLEAN)").unwrap();
        e.execute_sql("INSERT INTO t0(c0, c1) VALUES (1, TRUE)").unwrap();
        assert!(e.execute_sql("INSERT INTO t0(c0) VALUES ('abc')").is_err());
        assert!(e.execute_sql("INSERT INTO t0(c1) VALUES ('maybe')").is_err());
        e.execute_sql("INSERT INTO t0(c1) VALUES ('true')").unwrap();
    }

    #[test]
    fn serial_columns_autoincrement() {
        let mut e = Engine::new(Dialect::Postgres);
        e.execute_sql("CREATE TABLE t0(c0 SERIAL, c1 INT)").unwrap();
        e.execute_sql("INSERT INTO t0(c1) VALUES (10), (20)").unwrap();
        let r = e.execute_sql("SELECT c0 FROM t0").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Integer(1));
        assert_eq!(r.rows[1][0], Value::Integer(2));
    }

    #[test]
    fn not_null_and_check_constraints() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0 INT NOT NULL, c1 INT CHECK (c1 > 0))").unwrap();
        assert!(e.execute_sql("INSERT INTO t0(c0, c1) VALUES (NULL, 1)").is_err());
        assert!(e.execute_sql("INSERT INTO t0(c0, c1) VALUES (1, -1)").is_err());
        e.execute_sql("INSERT INTO t0(c0, c1) VALUES (1, NULL)").unwrap();
        e.execute_sql("INSERT OR IGNORE INTO t0(c0, c1) VALUES (NULL, 5)").unwrap();
        assert_eq!(e.execute_sql("SELECT * FROM t0").unwrap().rows.len(), 1);
    }

    #[test]
    fn unique_conflicts_and_or_replace() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0 INT UNIQUE, c1 INT)").unwrap();
        e.execute_sql("INSERT INTO t0(c0, c1) VALUES (1, 10)").unwrap();
        assert!(e.execute_sql("INSERT INTO t0(c0, c1) VALUES (1, 20)").is_err());
        e.execute_sql("INSERT OR IGNORE INTO t0(c0, c1) VALUES (1, 30)").unwrap();
        assert_eq!(e.execute_sql("SELECT * FROM t0").unwrap().rows.len(), 1);
        e.execute_sql("INSERT OR REPLACE INTO t0(c0, c1) VALUES (1, 40)").unwrap();
        let r = e.execute_sql("SELECT c1 FROM t0").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Integer(40)]]);
        // NULL unique keys never conflict.
        e.execute_sql("INSERT INTO t0(c0, c1) VALUES (NULL, 1), (NULL, 2)").unwrap();
        assert_eq!(e.execute_sql("SELECT * FROM t0").unwrap().rows.len(), 3);
    }

    #[test]
    fn update_moves_index_entries() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0 INT)").unwrap();
        e.execute_sql("CREATE INDEX i0 ON t0(c0)").unwrap();
        e.execute_sql("INSERT INTO t0(c0) VALUES (1), (2)").unwrap();
        e.execute_sql("UPDATE t0 SET c0 = 5 WHERE c0 = 1").unwrap();
        let idx = e.database().index("i0").unwrap();
        assert_eq!(idx.lookup(&[Value::Integer(5)]).len(), 1);
        assert!(idx.lookup(&[Value::Integer(1)]).is_empty());
        let r = e.execute_sql("SELECT * FROM t0 WHERE c0 = 5").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn stale_index_fault_desynchronises_index() {
        let mut e = Engine::with_bugs(
            Dialect::Sqlite,
            crate::bugs::BugProfile::with(&[BugId::SqliteIndexStaleAfterUpdate]),
        );
        e.execute_sql("CREATE TABLE t0(c0 INT)").unwrap();
        e.execute_sql("CREATE INDEX i0 ON t0(c0)").unwrap();
        e.execute_sql("INSERT INTO t0(c0) VALUES (1)").unwrap();
        e.execute_sql("UPDATE t0 SET c0 = 5").unwrap();
        let idx = e.database().index("i0").unwrap();
        assert!(idx.lookup(&[Value::Integer(5)]).is_empty(), "index was not maintained");
        assert_eq!(idx.lookup(&[Value::Integer(1)]).len(), 1);
    }

    #[test]
    fn update_and_delete_with_where() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0 INT, c1 INT)").unwrap();
        e.execute_sql("INSERT INTO t0(c0, c1) VALUES (1, 1), (2, 2), (3, 3)").unwrap();
        let r = e.execute_sql("UPDATE t0 SET c1 = 0 WHERE c0 > 1").unwrap();
        assert_eq!(r.affected, 2);
        let r = e.execute_sql("DELETE FROM t0 WHERE c1 = 0").unwrap();
        assert_eq!(r.affected, 2);
        assert_eq!(e.execute_sql("SELECT * FROM t0").unwrap().rows.len(), 1);
        let r = e.execute_sql("DELETE FROM t0").unwrap();
        assert_eq!(r.affected, 1);
    }

    #[test]
    fn real_pk_replace_corruption_fault() {
        let mut e = Engine::with_bugs(
            Dialect::Sqlite,
            crate::bugs::BugProfile::with(&[BugId::SqliteRealPrimaryKeyUpdateCorruption]),
        );
        e.execute_sql("CREATE TABLE t1 (c0, c1 REAL PRIMARY KEY)").unwrap();
        e.execute_sql("INSERT INTO t1(c0, c1) VALUES (1, 9223372036854775807), (1, 0)").unwrap();
        e.execute_sql("UPDATE t1 SET c0 = NULL").unwrap();
        e.execute_sql("UPDATE OR REPLACE t1 SET c1 = 1").unwrap();
        let err = e.execute_sql("SELECT DISTINCT * FROM t1 WHERE (t1.c0 IS NULL)").unwrap_err();
        assert!(err.message.contains("malformed"), "{}", err.message);
    }

    #[test]
    fn insert_wrong_arity_is_semantic_error() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0, c1)").unwrap();
        assert!(e.execute_sql("INSERT INTO t0(c0) VALUES (1, 2)").is_err());
        assert!(e.execute_sql("INSERT INTO t0(zzz) VALUES (1)").is_err());
    }
}
