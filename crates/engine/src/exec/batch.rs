//! Row batches: the unit of data flow between executor pipeline operators.
//!
//! The batched pipeline (see `exec::pipeline`) passes one [`RowBatch`]
//! from operator to operator instead of threading loose `Vec<Vec<Value>>`
//! values and a separate schema through a monolithic function.  The
//! schema is stored once per batch behind an [`Arc`], so operators that
//! do not change the shape of the rows (filters, sorts, truncation)
//! hand it on for free, and operators that extend it (joins) mutate it
//! in place via [`Arc::make_mut`] — the batch is the only owner while a
//! query executes, so no copy happens there either.

use std::sync::Arc;

use lancer_sql::value::Value;

use crate::eval::RowSchema;

/// A batch of rows flowing between pipeline operators, together with the
/// schema all of them share.
#[derive(Debug, Clone)]
pub struct RowBatch {
    /// The flattened source schema describing every row of the batch.
    /// Projection replaces source rows with output rows; from then on the
    /// schema is empty and [`RowBatch::columns`] carries the labels.
    pub schema: Arc<RowSchema>,
    /// Output column labels, set by the projection/aggregation operator
    /// (empty while the batch still carries source rows).
    pub columns: Vec<String>,
    /// The rows.  Operators consume the batch by value, so rows move
    /// through the pipeline without per-stage copies.
    pub rows: Vec<Vec<Value>>,
}

impl RowBatch {
    /// An empty batch with an empty schema (the pipeline input).
    #[must_use]
    pub fn empty() -> RowBatch {
        RowBatch { schema: Arc::new(RowSchema::empty()), columns: Vec::new(), rows: Vec::new() }
    }

    /// Number of rows in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the batch holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_has_no_rows_and_no_schema() {
        let b = RowBatch::empty();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.schema.width(), 0);
        assert!(b.columns.is_empty());
    }
}
