//! Maintenance statements and run-time options: `VACUUM`, `REINDEX`,
//! `ANALYZE`, `CHECK TABLE`, `REPAIR TABLE`, `PRAGMA`, `SET`,
//! `CREATE STATISTICS`.
//!
//! The paper found these statements to be disproportionately error-prone
//! ("statements that compute or recompute table state were error prone",
//! §4.3), which is why a large share of the error-oracle faults live here.

use lancer_sql::ast::Expr;
use lancer_sql::value::Value;

use crate::bugs::BugId;
use crate::dialect::Dialect;
use crate::error::{EngineError, EngineResult};
use crate::exec::{Engine, QueryResult};

impl Engine {
    pub(crate) fn exec_vacuum(&mut self, full: bool) -> EngineResult<QueryResult> {
        if !self.dialect.has_vacuum() {
            return Err(EngineError::semantic("VACUUM is not supported by this DBMS"));
        }
        self.cover("stmt.vacuum");
        // Injected fault (intended behaviour per the paper, Listing 18):
        // VACUUM FULL fails with an integer overflow via an expression index
        // over near-maximal integers.
        if full
            && self.dialect == Dialect::Postgres
            && self.bugs().is_enabled(BugId::PostgresVacuumIntegerOverflow)
            && self.any_expression_index_over_large_integers()?
        {
            return Err(EngineError::semantic("integer out of range"));
        }
        // Injected fault (intended behaviour): concurrent VACUUM FULL
        // deadlocks; modelled as failing when several tables exist.
        if full
            && self.dialect == Dialect::Postgres
            && self.bugs().is_enabled(BugId::PostgresVacuumFullDeadlock)
            && self.db.table_names().len() >= 3
        {
            return Err(EngineError::internal("deadlock detected"));
        }
        // Injected fault: VACUUM with a LIKE-based index after the
        // case_sensitive_like pragma changed reports a malformed schema
        // (Listing 9, classified as intended/design defect).
        if self.dialect == Dialect::Sqlite
            && self.bugs().is_enabled(BugId::SqliteCaseSensitiveLikePragmaSchema)
            && self.like_pragma_changed
        {
            let like_index = self.db.index_names().into_iter().find(|n| {
                self.db
                    .index(n)
                    .is_some_and(|i| i.def.exprs.iter().any(|e| matches!(e, Expr::Like { .. })))
            });
            if let Some(name) = like_index {
                return Err(EngineError::corruption(format!(
                    "malformed database schema ({name}) - non-deterministic functions prohibited in index expressions"
                )));
            }
        }
        // Injected fault: VACUUM corrupts expression indexes while
        // rebuilding them (§4.4 error-oracle bugs).
        if self.dialect == Dialect::Sqlite
            && self.bugs().is_enabled(BugId::SqliteVacuumExpressionIndexCorruption)
        {
            let targets: Vec<String> = self
                .db
                .index_names()
                .into_iter()
                .filter(|n| {
                    self.db.index(n).is_some_and(|i| {
                        !i.def.implicit && i.def.exprs.iter().any(|e| !matches!(e, Expr::Column(_)))
                    })
                })
                .collect();
            if let Some(name) = targets.first() {
                if let Some(idx) = self.db.index_mut(name) {
                    idx.corrupt("expression index rebuilt incorrectly by VACUUM");
                }
                return Err(EngineError::corruption(format!(
                    "database disk image is malformed (index {name})"
                )));
            }
        }
        // A correct VACUUM rebuilds every index from the table contents and
        // verifies them.
        self.rebuild_all_indexes()?;
        Ok(QueryResult::empty())
    }

    fn any_expression_index_over_large_integers(&self) -> EngineResult<bool> {
        for name in self.db.index_names() {
            let Some(idx) = self.db.index(name.as_str()) else { continue };
            if idx.def.implicit || idx.def.exprs.iter().all(|e| matches!(e, Expr::Column(_))) {
                continue;
            }
            let Some(table) = self.db.table(&idx.def.table) else { continue };
            let has_large = table.rows().any(|r| {
                r.values.iter().any(|v| matches!(v, Value::Integer(i) if i.abs() > (1_i64 << 62)))
            });
            if has_large {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Rebuilds every index from its table's rows and verifies it, surfacing
    /// corruption and (spurious or genuine) constraint violations.
    pub(crate) fn rebuild_all_indexes(&mut self) -> EngineResult<()> {
        let names = self.db.index_names();
        for name in names {
            let def = match self.db.index(&name) {
                Some(i) => i.def.clone(),
                None => continue,
            };
            let rebuilt = self.build_index(def)?;
            rebuilt.verify()?;
            if let Some(slot) = self.db.index_mut(&name) {
                *slot = rebuilt;
            }
        }
        Ok(())
    }

    pub(crate) fn exec_reindex(&mut self, target: Option<&str>) -> EngineResult<QueryResult> {
        if !self.dialect.has_reindex() {
            return Err(EngineError::semantic("REINDEX is not supported by this DBMS"));
        }
        self.cover("stmt.reindex");
        // Injected fault: REINDEX reports a spurious UNIQUE violation for
        // NOCASE unique indexes with at least two entries (§4.4).
        if self.bugs().is_enabled(BugId::SqliteReindexSpuriousUniqueFailure) {
            for name in self.db.index_names() {
                let Some(idx) = self.db.index(&name) else { continue };
                if idx.def.unique
                    && idx.def.collations.contains(&lancer_sql::Collation::NoCase)
                    && idx.len() >= 2
                {
                    return Err(EngineError::constraint(format!(
                        "UNIQUE constraint failed: index '{name}'"
                    )));
                }
            }
        }
        // Injected fault: NOT NULL columns added by ALTER TABLE kept NULLs;
        // REINDEX notices the inconsistency (§4.4).
        if self.bugs().is_enabled(BugId::SqliteNotNullDefaultAltered) {
            for table in self.db.table_names() {
                let Some(t) = self.db.table(&table) else { continue };
                for (ci, col) in t.schema.columns.iter().enumerate() {
                    if col.not_null && t.rows().any(|r| r.values[ci].is_null()) {
                        return Err(EngineError::corruption(format!(
                            "malformed database schema ({table}.{}) - NOT NULL column holds NULL",
                            col.name
                        )));
                    }
                }
            }
        }
        match target {
            Some(name) => {
                // The target may be an index or a table.
                if self.db.index(name).is_some() {
                    let def = self.db.index(name).expect("checked").def.clone();
                    let rebuilt = self.build_index(def)?;
                    rebuilt.verify()?;
                    if let Some(slot) = self.db.index_mut(name) {
                        *slot = rebuilt;
                    }
                } else if self.db.table(name).is_some() {
                    let names: Vec<String> =
                        self.db.indexes_on(name).iter().map(|i| i.def.name.clone()).collect();
                    for n in names {
                        let def = self.db.index(&n).expect("listed").def.clone();
                        let rebuilt = self.build_index(def)?;
                        rebuilt.verify()?;
                        if let Some(slot) = self.db.index_mut(&n) {
                            *slot = rebuilt;
                        }
                    }
                } else {
                    return Err(EngineError::semantic(format!(
                        "unable to identify the object to be reindexed: {name}"
                    )));
                }
            }
            None => self.rebuild_all_indexes()?,
        }
        Ok(QueryResult::empty())
    }

    pub(crate) fn exec_analyze(&mut self, target: Option<&str>) -> EngineResult<QueryResult> {
        self.cover("stmt.analyze");
        let targets: Vec<String> = match target {
            Some(t) => {
                self.db.require_table(t)?;
                vec![t.to_owned()]
            }
            None => self.db.table_names(),
        };
        // Injected fault: ANALYZE validates per-row-group checksums and
        // rejects tables whose row count leaves a partial tail row group
        // (columnar extension).
        if self.bugs().is_enabled(BugId::DuckdbAnalyzeRowGroupChecksum) {
            for t in &targets {
                let n = self.db.require_table(t)?.rows().count();
                if n % crate::exec::query::COLUMNAR_LANE_WIDTH != 0 {
                    return Err(EngineError::corruption(format!(
                        "row group checksum mismatch in table \"{t}\": \
                         partial row group of {} rows failed validation",
                        n % crate::exec::query::COLUMNAR_LANE_WIDTH
                    )));
                }
            }
        }
        for t in targets {
            self.analyzed.insert(t.to_ascii_lowercase());
        }
        Ok(QueryResult::empty())
    }

    pub(crate) fn exec_check_table(
        &mut self,
        table: &str,
        for_upgrade: bool,
    ) -> EngineResult<QueryResult> {
        if !self.dialect.has_check_repair_table() {
            return Err(EngineError::semantic("CHECK TABLE is not supported by this DBMS"));
        }
        self.cover("stmt.check_table");
        self.db.require_table(table)?;
        // Injected fault: CHECK TABLE ... FOR UPGRADE crashes when an
        // expression index exists (Listing 14 / CVE-2019-2879).
        if for_upgrade
            && self.bugs().is_enabled(BugId::MysqlCheckTableExpressionIndexCrash)
            && self.db.indexes_on(table).iter().any(|i| {
                !i.def.implicit && i.def.exprs.iter().any(|e| !matches!(e, Expr::Column(_)))
            })
        {
            return Err(EngineError::crash("SEGFAULT in Item_func::walk during CHECK TABLE"));
        }
        for idx in self.db.indexes_on(table) {
            idx.verify()?;
        }
        Ok(QueryResult {
            columns: vec!["Table".into(), "Msg_text".into()],
            rows: vec![vec![Value::Text(table.to_owned()), Value::Text("OK".into())]],
            affected: 0,
        })
    }

    pub(crate) fn exec_repair_table(&mut self, table: &str) -> EngineResult<QueryResult> {
        if !self.dialect.has_check_repair_table() {
            return Err(EngineError::semantic("REPAIR TABLE is not supported by this DBMS"));
        }
        self.cover("stmt.repair_table");
        let schema = self.db.require_table(table)?.schema.clone();
        // Injected fault: REPAIR TABLE on a MEMORY-engine table marks it as
        // crashed (§4.3).
        if self.bugs().is_enabled(BugId::MysqlRepairTableMarksCrashed)
            && schema.engine == lancer_sql::ast::stmt::TableEngine::Memory
        {
            return Err(EngineError::internal(format!(
                "Table '{table}' is marked as crashed and should be repaired"
            )));
        }
        self.rebuild_all_indexes()?;
        Ok(QueryResult {
            columns: vec!["Table".into(), "Msg_text".into()],
            rows: vec![vec![Value::Text(table.to_owned()), Value::Text("OK".into())]],
            affected: 0,
        })
    }

    pub(crate) fn exec_pragma(
        &mut self,
        name: &str,
        value: Option<&Value>,
    ) -> EngineResult<QueryResult> {
        if !self.dialect.has_pragma() {
            return Err(EngineError::semantic("PRAGMA is not supported by this DBMS"));
        }
        self.cover("stmt.pragma");
        if name.eq_ignore_ascii_case("case_sensitive_like") {
            self.like_pragma_changed = true;
        }
        match value {
            Some(v) => {
                self.db.set_option(name, v.clone());
                Ok(QueryResult::empty())
            }
            None => {
                let current = self.db.option(name).cloned().unwrap_or(Value::Null);
                Ok(QueryResult {
                    columns: vec![name.to_owned()],
                    rows: vec![vec![current]],
                    affected: 0,
                })
            }
        }
    }

    pub(crate) fn exec_set(
        &mut self,
        clock: u64,
        name: &str,
        value: &Value,
    ) -> EngineResult<QueryResult> {
        if !self.dialect.has_set_option() {
            return Err(EngineError::semantic("SET is not supported by this DBMS"));
        }
        self.cover("stmt.set_option");
        // Injected fault: setting key_cache_division_limit nondeterministically
        // fails (Listing 3); "nondeterminism" is modelled via statement-clock
        // parity so campaigns still observe both behaviours.  The clock is an
        // explicit argument (the dispatcher passes the already-bumped
        // statement counter) so clock-keyed faults have exactly one source
        // of time — the same currency `Engine::query` takes as its ordinal.
        if self.dialect == Dialect::Mysql
            && self.bugs().is_enabled(BugId::MysqlSetOptionNondeterministicError)
            && name.eq_ignore_ascii_case("key_cache_division_limit")
            && clock.is_multiple_of(2)
        {
            return Err(EngineError::semantic("ERROR 1210 (HY000): Incorrect arguments to SET"));
        }
        self.db.set_option(name, value.clone());
        Ok(QueryResult::empty())
    }

    pub(crate) fn exec_create_statistics(
        &mut self,
        name: &str,
        columns: &[String],
        table: &str,
    ) -> EngineResult<QueryResult> {
        if !self.dialect.has_statistics_and_discard() {
            return Err(EngineError::semantic("CREATE STATISTICS is not supported by this DBMS"));
        }
        self.cover("stmt.create_statistics");
        let schema = self.db.require_table(table)?.schema.clone();
        for c in columns {
            if schema.column(c).is_none() {
                return Err(EngineError::semantic(format!("column \"{c}\" does not exist")));
            }
        }
        let _ = name;
        self.statistics.insert(table.to_ascii_lowercase());
        Ok(QueryResult::empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugProfile;

    #[test]
    fn maintenance_statements_respect_dialects() {
        let mut mysql = Engine::new(Dialect::Mysql);
        mysql.execute_sql("CREATE TABLE t0(c0 INT)").unwrap();
        assert!(mysql.execute_sql("VACUUM").is_err());
        assert!(mysql.execute_sql("REINDEX").is_err());
        mysql.execute_sql("CHECK TABLE t0").unwrap();
        mysql.execute_sql("REPAIR TABLE t0").unwrap();
        assert!(mysql.execute_sql("PRAGMA case_sensitive_like = 1").is_err());
        mysql.execute_sql("SET GLOBAL something = 1").unwrap();

        let mut sqlite = Engine::new(Dialect::Sqlite);
        sqlite.execute_sql("CREATE TABLE t0(c0)").unwrap();
        sqlite.execute_sql("VACUUM").unwrap();
        sqlite.execute_sql("REINDEX").unwrap();
        sqlite.execute_sql("ANALYZE").unwrap();
        sqlite.execute_sql("PRAGMA case_sensitive_like = 1").unwrap();
        assert!(sqlite.execute_sql("SET GLOBAL x = 1").is_err());
        assert!(sqlite.execute_sql("CHECK TABLE t0").is_err());

        let mut pg = Engine::new(Dialect::Postgres);
        pg.execute_sql("CREATE TABLE t0(c0 INT)").unwrap();
        pg.execute_sql("VACUUM FULL").unwrap();
        pg.execute_sql("CREATE STATISTICS s0 ON c0 FROM t0").unwrap();
        assert!(pg.execute_sql("CREATE STATISTICS s1 ON nope FROM t0").is_err());
        pg.execute_sql("DISCARD ALL").unwrap();
    }

    #[test]
    fn analyze_tracks_tables() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0)").unwrap();
        assert!(e.execute_sql("ANALYZE nope").is_err());
        e.execute_sql("ANALYZE t0").unwrap();
        assert!(e.analyzed.contains("t0"));
        e.execute_sql("ANALYZE").unwrap();
    }

    #[test]
    fn pragma_read_back() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("PRAGMA case_sensitive_like = 1").unwrap();
        let r = e.execute_sql("PRAGMA case_sensitive_like").unwrap();
        assert_eq!(r.rows[0][0], Value::Integer(1));
        // The pragma influences LIKE evaluation.
        e.execute_sql("CREATE TABLE t0(c0 TEXT)").unwrap();
        e.execute_sql("INSERT INTO t0(c0) VALUES ('ABC')").unwrap();
        let r = e.execute_sql("SELECT * FROM t0 WHERE c0 LIKE 'abc'").unwrap();
        assert!(r.rows.is_empty(), "case-sensitive LIKE must not match");
        e.execute_sql("PRAGMA case_sensitive_like = 0").unwrap();
        let r = e.execute_sql("SELECT * FROM t0 WHERE c0 LIKE 'abc'").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn reindex_spurious_unique_failure_fault() {
        let bugs = BugProfile::with(&[BugId::SqliteReindexSpuriousUniqueFailure]);
        let mut e = Engine::with_bugs(Dialect::Sqlite, bugs);
        e.execute_script(
            "CREATE TABLE t0(c0 TEXT COLLATE NOCASE);
             CREATE UNIQUE INDEX i0 ON t0(c0);
             INSERT INTO t0(c0) VALUES ('a'), ('b');",
        )
        .unwrap();
        let err = e.execute_sql("REINDEX").unwrap_err();
        assert!(err.message.contains("UNIQUE constraint failed"));
        // Without the fault REINDEX succeeds.
        let mut clean = Engine::new(Dialect::Sqlite);
        clean
            .execute_script(
                "CREATE TABLE t0(c0 TEXT COLLATE NOCASE);
                 CREATE UNIQUE INDEX i0 ON t0(c0);
                 INSERT INTO t0(c0) VALUES ('a'), ('b');",
            )
            .unwrap();
        clean.execute_sql("REINDEX").unwrap();
    }

    #[test]
    fn check_table_crash_fault_listing14() {
        let bugs = BugProfile::with(&[BugId::MysqlCheckTableExpressionIndexCrash]);
        let mut e = Engine::with_bugs(Dialect::Mysql, bugs);
        e.execute_script(
            "CREATE TABLE t0(c0 INT);
             CREATE INDEX i0 ON t0((t0.c0 || 1));
             INSERT INTO t0(c0) VALUES (1);",
        )
        .unwrap();
        let err = e.execute_sql("CHECK TABLE t0 FOR UPGRADE").unwrap_err();
        assert!(err.is_crash());
        // Plain CHECK TABLE does not crash.
        e.execute_sql("CHECK TABLE t0").unwrap();
    }

    #[test]
    fn set_option_nondeterministic_error_fault() {
        let bugs = BugProfile::with(&[BugId::MysqlSetOptionNondeterministicError]);
        let mut e = Engine::with_bugs(Dialect::Mysql, bugs);
        let mut saw_error = false;
        let mut saw_ok = false;
        for _ in 0..4 {
            match e.execute_sql("SET GLOBAL key_cache_division_limit = 100") {
                Ok(_) => saw_ok = true,
                Err(err) => {
                    assert!(err.message.contains("Incorrect arguments to SET"));
                    saw_error = true;
                }
            }
        }
        assert!(saw_error && saw_ok, "the failure must be intermittent");
    }

    #[test]
    fn vacuum_pragma_schema_fault_listing9() {
        let bugs = BugProfile::with(&[BugId::SqliteCaseSensitiveLikePragmaSchema]);
        let mut e = Engine::with_bugs(Dialect::Sqlite, bugs);
        e.execute_script(
            "CREATE TABLE test (c0);
             CREATE INDEX index_0 ON test(c0 LIKE '');
             PRAGMA case_sensitive_like=false;",
        )
        .unwrap();
        let err = e.execute_sql("VACUUM").unwrap_err();
        assert!(err.message.contains("malformed database schema"));
    }

    #[test]
    fn repair_table_memory_engine_fault() {
        let bugs = BugProfile::with(&[BugId::MysqlRepairTableMarksCrashed]);
        let mut e = Engine::with_bugs(Dialect::Mysql, bugs);
        e.execute_sql("CREATE TABLE t0(c0 INT) ENGINE = MEMORY").unwrap();
        let err = e.execute_sql("REPAIR TABLE t0").unwrap_err();
        assert!(err.message.contains("marked as crashed"));
    }
}
