//! Columnar batches and vectorised predicate kernels.
//!
//! The row pipeline in `exec::pipeline` moves `Vec<Vec<Value>>` batches
//! between operators.  For the columnar dialect profile
//! ([`Dialect::prefers_columnar`](crate::dialect::Dialect::prefers_columnar))
//! the hot operators instead work on a [`ColumnBatch`]: one `Vec<Value>`
//! per column under the same shared `Arc<RowSchema>`, so a scan
//! materialises straight into columns, a filter evaluates its predicate
//! over column slices into a selection bitmap, and an aggregate folds a
//! column without ever reconstructing rows.
//!
//! **Determinism contract.**  Column-at-a-time evaluation must be
//! indistinguishable from the row pipeline (which the differential suite
//! in `tests/pipeline_differential.rs` compares against the reference
//! evaluator): same rows, same order, same errors.  Two rules enforce
//! this:
//!
//! 1. Kernels are compiled only for the *infallible* predicate subset —
//!    boolean/NULL literals, stored `BOOLEAN` columns, `IS [NOT] NULL`,
//!    the six ordering comparisons over columns and literals, and
//!    `AND`/`OR`/`NOT` over those.  Comparisons delegate to
//!    [`Evaluator::compare_values_tri`], literally the code the scalar
//!    path runs, and none of these shapes can raise an error, so
//!    evaluating a full column vector (no short-circuit) is
//!    value-equivalent to the row pipeline's short-circuit evaluation.
//! 2. Anything else — a predicate shape outside the subset, or an
//!    operand-mutating comparison fault being enabled — refuses to
//!    compile, and the caller pivots the batch back to rows and runs the
//!    ordinary row-at-a-time path, preserving error order exactly.

use std::sync::Arc;

use lancer_sql::ast::expr::{BinaryOp, Expr, TypeName};
use lancer_sql::collation::Collation;
use lancer_sql::value::{TriBool, Value};

use crate::bugs::BugId;
use crate::eval::{Evaluator, RowSchema};
use crate::exec::batch::RowBatch;

/// A batch in columnar layout: `cols[c][r]` is row `r` of column `c`.
///
/// `len` is stored explicitly because a zero-width batch (a `SELECT`
/// without `FROM`) still has a row count.
pub(crate) struct ColumnBatch {
    /// The flattened schema shared with the row layout.
    pub(crate) schema: Arc<RowSchema>,
    /// Output column labels (empty until projection names them).
    pub(crate) columns: Vec<String>,
    /// One value vector per schema column.
    pub(crate) cols: Vec<Vec<Value>>,
    /// Number of rows.
    pub(crate) len: usize,
}

impl ColumnBatch {
    /// Pivots a row batch into columnar layout (the inverse of
    /// [`ColumnBatch::into_rows`]; production scans materialise columns
    /// directly, so only the round-trip tests pivot this way).
    #[cfg(test)]
    pub(crate) fn from_rows(batch: RowBatch) -> ColumnBatch {
        let len = batch.rows.len();
        let width = batch.schema.width();
        let mut cols: Vec<Vec<Value>> = (0..width).map(|_| Vec::with_capacity(len)).collect();
        for row in batch.rows {
            for (c, v) in row.into_iter().enumerate() {
                cols[c].push(v);
            }
        }
        ColumnBatch { schema: batch.schema, columns: batch.columns, cols, len }
    }

    /// Pivots back to row layout.
    pub(crate) fn into_rows(self) -> RowBatch {
        let mut rows: Vec<Vec<Value>> =
            (0..self.len).map(|_| Vec::with_capacity(self.cols.len())).collect();
        for col in self.cols {
            for (r, v) in col.into_iter().enumerate() {
                rows[r].push(v);
            }
        }
        RowBatch { schema: self.schema, columns: self.columns, rows }
    }

    /// Keeps only the rows at the given (ascending) indices, moving the
    /// surviving values without cloning.
    pub(crate) fn retain_indices(&mut self, kept: &[usize]) {
        for col in &mut self.cols {
            let old = std::mem::take(col);
            let mut keep = kept.iter().copied().peekable();
            let mut new_col = Vec::with_capacity(kept.len());
            for (i, v) in old.into_iter().enumerate() {
                if keep.peek() == Some(&i) {
                    keep.next();
                    new_col.push(v);
                }
            }
            *col = new_col;
        }
        self.len = kept.len();
    }
}

/// A batch in either layout, threaded through [`Operator::apply`]
/// (crate::exec::pipeline::Operator).  Operators without a columnar
/// implementation call [`Batch::into_rows`] at entry; for a `Rows`
/// batch that is free.
pub(crate) enum Batch {
    /// Row-major layout (the three row-store dialects, and fallbacks).
    Rows(RowBatch),
    /// Column-major layout (the columnar dialect's hot path).
    Cols(ColumnBatch),
}

impl Batch {
    /// The shared schema, regardless of layout.
    pub(crate) fn schema(&self) -> &Arc<RowSchema> {
        match self {
            Batch::Rows(b) => &b.schema,
            Batch::Cols(b) => &b.schema,
        }
    }

    /// Converts to row layout (the identity for `Rows`).
    pub(crate) fn into_rows(self) -> RowBatch {
        match self {
            Batch::Rows(b) => b,
            Batch::Cols(b) => b.into_rows(),
        }
    }
}

/// A compiled, infallible filter kernel over column vectors.
pub(crate) enum FilterKernel {
    /// A boolean or NULL literal.
    Const(TriBool),
    /// A stored `BOOLEAN` column used directly as a predicate.
    BoolCol(usize),
    /// `col IS [NOT] NULL`.
    IsNull {
        /// Column index.
        col: usize,
        /// `IS NOT NULL` when set.
        negated: bool,
    },
    /// `col <op> literal` (or the flipped `literal <op> col`, with the
    /// operands kept in source order).
    CmpColLit {
        /// Ordering operator (`Eq`..`Ge`).
        op: BinaryOp,
        /// Column index of the left operand, unless `flipped`.
        col: usize,
        /// The literal operand.
        lit: Value,
        /// Collation resolved at compile time.
        coll: Collation,
        /// Literal on the left, column on the right.
        flipped: bool,
    },
    /// `col <op> col`.
    CmpCols {
        /// Ordering operator (`Eq`..`Ge`).
        op: BinaryOp,
        /// Left column index.
        left: usize,
        /// Right column index.
        right: usize,
        /// Collation resolved at compile time.
        coll: Collation,
    },
    /// Three-valued conjunction.
    And(Box<FilterKernel>, Box<FilterKernel>),
    /// Three-valued disjunction.
    Or(Box<FilterKernel>, Box<FilterKernel>),
    /// Three-valued negation.
    Not(Box<FilterKernel>),
}

/// Compiles a predicate into a vectorised kernel, or `None` when any
/// part of it falls outside the infallible subset (the caller then runs
/// the row path).
pub(crate) fn compile_filter_kernel(
    expr: &Expr,
    schema: &RowSchema,
    ev: &Evaluator<'_>,
) -> Option<FilterKernel> {
    // Operand-mutating comparison faults rewrite values based on column
    // affinity before comparing; keep those on the scalar path.  (They
    // are registered for row-store dialects, so the columnar profile
    // never actually enables them — this is defence in depth.)
    if ev.bugs.is_enabled(BugId::SqliteIntRealComparisonTruncates)
        || ev.bugs.is_enabled(BugId::MysqlTinyIntRangeCompare)
    {
        return None;
    }
    compile_node(expr, schema, ev)
}

fn compile_node(expr: &Expr, schema: &RowSchema, ev: &Evaluator<'_>) -> Option<FilterKernel> {
    match expr {
        Expr::Literal(Value::Boolean(b)) => Some(FilterKernel::Const((*b).into())),
        Expr::Literal(Value::Null) => Some(FilterKernel::Const(TriBool::Unknown)),
        // A stored BOOLEAN column holds only Boolean/NULL under strict
        // typing, so reading it as a predicate cannot error.
        Expr::Column(c) => {
            if !ev.dialect.strict_typing() {
                return None;
            }
            let (i, meta) = schema.resolve(c)?;
            (meta.type_name == Some(TypeName::Boolean)).then_some(FilterKernel::BoolCol(i))
        }
        Expr::IsNull { negated, expr } => {
            if let Expr::Column(c) = expr.as_ref() {
                let (i, _) = schema.resolve(c)?;
                Some(FilterKernel::IsNull { col: i, negated: *negated })
            } else {
                None
            }
        }
        Expr::Unary { op: lancer_sql::ast::expr::UnaryOp::Not, expr } => {
            // The double-negation fault folds NOT(NOT x) on the scalar
            // path; bail so the fold (or its absence) stays there.
            if ev.bugs.is_enabled(BugId::MysqlDoubleNegationFolded) {
                return None;
            }
            Some(FilterKernel::Not(Box::new(compile_node(expr, schema, ev)?)))
        }
        Expr::Binary { op: BinaryOp::And, left, right } => Some(FilterKernel::And(
            Box::new(compile_node(left, schema, ev)?),
            Box::new(compile_node(right, schema, ev)?),
        )),
        Expr::Binary { op: BinaryOp::Or, left, right } => Some(FilterKernel::Or(
            Box::new(compile_node(left, schema, ev)?),
            Box::new(compile_node(right, schema, ev)?),
        )),
        Expr::Binary { op, left, right } if BinaryOp::COMPARISONS.contains(op) => {
            let coll = ev.comparison_collation(left, right, schema);
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(l), Expr::Column(r)) => {
                    let (li, _) = schema.resolve(l)?;
                    let (ri, _) = schema.resolve(r)?;
                    Some(FilterKernel::CmpCols { op: *op, left: li, right: ri, coll })
                }
                (Expr::Column(c), Expr::Literal(v)) => {
                    let (i, _) = schema.resolve(c)?;
                    Some(FilterKernel::CmpColLit {
                        op: *op,
                        col: i,
                        lit: v.clone(),
                        coll,
                        flipped: false,
                    })
                }
                (Expr::Literal(v), Expr::Column(c)) => {
                    let (i, _) = schema.resolve(c)?;
                    Some(FilterKernel::CmpColLit {
                        op: *op,
                        col: i,
                        lit: v.clone(),
                        coll,
                        flipped: true,
                    })
                }
                _ => None,
            }
        }
        _ => None,
    }
}

impl FilterKernel {
    /// Evaluates the kernel over whole columns, producing one selection
    /// entry per row.  Comparisons delegate to
    /// [`Evaluator::compare_values_tri`] — the scalar path's decision
    /// procedure.  Returns `None` if a value shape outside the
    /// compile-time guarantees is encountered (the caller falls back to
    /// the row path), so evaluation itself never errors.
    pub(crate) fn eval(
        &self,
        cols: &[Vec<Value>],
        len: usize,
        ev: &Evaluator<'_>,
    ) -> Option<Vec<TriBool>> {
        match self {
            FilterKernel::Const(t) => Some(vec![*t; len]),
            FilterKernel::BoolCol(i) => cols[*i]
                .iter()
                .map(|v| match v {
                    Value::Null => Some(TriBool::Unknown),
                    Value::Boolean(b) => Some((*b).into()),
                    _ => None,
                })
                .collect(),
            FilterKernel::IsNull { col, negated } => {
                Some(cols[*col].iter().map(|v| TriBool::from(v.is_null() != *negated)).collect())
            }
            FilterKernel::CmpColLit { op, col, lit, coll, flipped } => Some(
                cols[*col]
                    .iter()
                    .map(|v| {
                        if *flipped {
                            ev.compare_values_tri(*op, lit, v, *coll)
                        } else {
                            ev.compare_values_tri(*op, v, lit, *coll)
                        }
                    })
                    .collect(),
            ),
            FilterKernel::CmpCols { op, left, right, coll } => Some(
                cols[*left]
                    .iter()
                    .zip(cols[*right].iter())
                    .map(|(l, r)| ev.compare_values_tri(*op, l, r, *coll))
                    .collect(),
            ),
            FilterKernel::And(l, r) => {
                let (lv, rv) = (l.eval(cols, len, ev)?, r.eval(cols, len, ev)?);
                Some(lv.into_iter().zip(rv).map(|(a, b)| a.and(b)).collect())
            }
            FilterKernel::Or(l, r) => {
                let (lv, rv) = (l.eval(cols, len, ev)?, r.eval(cols, len, ev)?);
                Some(lv.into_iter().zip(rv).map(|(a, b)| a.or(b)).collect())
            }
            FilterKernel::Not(inner) => {
                Some(inner.eval(cols, len, ev)?.into_iter().map(TriBool::not).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugProfile;
    use crate::dialect::Dialect;
    use crate::eval::SourceSchema;
    use lancer_storage::schema::ColumnMeta;

    fn schema(cols: &[(&str, Option<TypeName>)]) -> RowSchema {
        RowSchema::single(SourceSchema {
            name: "t0".into(),
            columns: cols
                .iter()
                .map(|(n, t)| ColumnMeta {
                    name: (*n).to_owned(),
                    type_name: *t,
                    collation: Collation::Binary,
                    not_null: false,
                    primary_key: false,
                    unique: false,
                    default: None,
                    check: None,
                })
                .collect(),
        })
    }

    fn batch_of(schema: RowSchema, cols: Vec<Vec<Value>>) -> ColumnBatch {
        let len = cols.first().map_or(0, Vec::len);
        ColumnBatch { schema: Arc::new(schema), columns: Vec::new(), cols, len }
    }

    #[test]
    fn pivots_are_inverse() {
        let s = schema(&[("c0", Some(TypeName::Integer)), ("c1", Some(TypeName::Text))]);
        let rows = RowBatch {
            schema: Arc::new(s),
            columns: vec![],
            rows: vec![
                vec![Value::Integer(1), Value::Text("a".into())],
                vec![Value::Integer(2), Value::Null],
            ],
        };
        let expected = rows.rows.clone();
        let cb = ColumnBatch::from_rows(rows);
        assert_eq!(cb.len, 2);
        assert_eq!(cb.cols[0], vec![Value::Integer(1), Value::Integer(2)]);
        assert_eq!(cb.into_rows().rows, expected);
    }

    #[test]
    fn zero_width_batch_keeps_its_row_count() {
        let rows = RowBatch {
            schema: Arc::new(RowSchema::empty()),
            columns: vec![],
            rows: vec![Vec::new()],
        };
        let cb = ColumnBatch::from_rows(rows);
        assert_eq!(cb.len, 1);
        assert_eq!(cb.into_rows().rows, vec![Vec::<Value>::new()]);
    }

    #[test]
    fn retain_indices_moves_surviving_values() {
        let s = schema(&[("c0", Some(TypeName::Integer))]);
        let mut cb =
            batch_of(s, vec![vec![Value::Integer(10), Value::Integer(20), Value::Integer(30)]]);
        cb.retain_indices(&[0, 2]);
        assert_eq!(cb.len, 2);
        assert_eq!(cb.cols[0], vec![Value::Integer(10), Value::Integer(30)]);
    }

    #[test]
    fn comparison_kernel_matches_scalar_semantics() {
        let s = schema(&[("c0", Some(TypeName::Integer))]);
        let bugs = BugProfile::none();
        let ev = Evaluator::new(Dialect::Duckdb, &bugs);
        let expr = Expr::col("c0").eq(Expr::int(2));
        let k = compile_filter_kernel(&expr, &s, &ev).expect("comparison compiles");
        let cols = vec![vec![Value::Integer(1), Value::Integer(2), Value::Null]];
        let map = k.eval(&cols, 3, &ev).expect("infallible");
        assert_eq!(map, vec![TriBool::False, TriBool::True, TriBool::Unknown]);
    }

    #[test]
    fn logic_kernels_follow_three_valued_truth_tables() {
        let s = schema(&[("c0", Some(TypeName::Boolean)), ("c1", Some(TypeName::Boolean))]);
        let bugs = BugProfile::none();
        let ev = Evaluator::new(Dialect::Duckdb, &bugs);
        let expr = Expr::col("c0").and(Expr::col("c1").not());
        let k = compile_filter_kernel(&expr, &s, &ev).expect("boolean columns compile");
        let cols = vec![
            vec![Value::Boolean(true), Value::Boolean(true), Value::Null],
            vec![Value::Boolean(false), Value::Null, Value::Boolean(false)],
        ];
        let map = k.eval(&cols, 3, &ev).expect("infallible");
        assert_eq!(map, vec![TriBool::True, TriBool::Unknown, TriBool::Unknown]);
    }

    #[test]
    fn exotic_shapes_refuse_to_compile() {
        let s = schema(&[("c0", Some(TypeName::Integer))]);
        let bugs = BugProfile::none();
        let ev = Evaluator::new(Dialect::Duckdb, &bugs);
        // Arithmetic inside a comparison operand: scalar path only.
        let expr = Expr::binary(
            BinaryOp::Eq,
            Expr::binary(BinaryOp::Add, Expr::col("c0"), Expr::int(1)),
            Expr::int(2),
        );
        assert!(compile_filter_kernel(&expr, &s, &ev).is_none());
        // A bare non-boolean column is never a kernel.
        assert!(compile_filter_kernel(&Expr::col("c0"), &s, &ev).is_none());
        // Operand-mutating comparison faults force the scalar path.
        let faulty = BugProfile::with(&[BugId::SqliteIntRealComparisonTruncates]);
        let ev = Evaluator::new(Dialect::Sqlite, &faulty);
        let cmp = Expr::col("c0").eq(Expr::int(2));
        assert!(compile_filter_kernel(&cmp, &s, &ev).is_none());
    }

    #[test]
    fn non_boolean_value_in_boolean_column_bails_at_eval() {
        let s = schema(&[("c0", Some(TypeName::Boolean))]);
        let bugs = BugProfile::none();
        let ev = Evaluator::new(Dialect::Duckdb, &bugs);
        let k = compile_filter_kernel(&Expr::col("c0"), &s, &ev).expect("compiles");
        let cols = vec![vec![Value::Boolean(true), Value::Integer(1)]];
        assert!(k.eval(&cols, 2, &ev).is_none(), "unexpected storage class must bail, not guess");
    }
}
