//! Statement execution: the engine façade and dispatch.

pub(crate) mod access;
pub mod batch;
mod colbatch;
mod ddl;
mod dml;
mod maintenance;
mod pipeline;
mod query;
mod reference;

use std::collections::{BTreeMap, BTreeSet};

use lancer_sql::ast::Statement;
use lancer_sql::parser::{parse_script, parse_statement};
use lancer_sql::value::Value;
use lancer_storage::Database;

use crate::bugs::BugProfile;
use crate::coverage::Coverage;
use crate::dialect::Dialect;
use crate::error::{EngineError, EngineResult};
use crate::eval::Evaluator;

/// The result of executing a statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Column labels (empty for non-queries).
    pub columns: Vec<String>,
    /// Result rows (empty for non-queries).
    pub rows: Vec<Vec<Value>>,
    /// Number of rows inserted / updated / deleted.
    pub affected: usize,
}

impl QueryResult {
    /// A result carrying no rows.
    #[must_use]
    pub fn empty() -> QueryResult {
        QueryResult::default()
    }

    /// Returns `true` if any result row equals the given row (the check the
    /// containment oracle performs client-side).
    #[must_use]
    pub fn contains_row(&self, row: &[Value]) -> bool {
        self.rows
            .iter()
            .any(|r| r.len() == row.len() && r.iter().zip(row.iter()).all(|(a, b)| a.same_as(b)))
    }
}

/// One emulated DBMS instance: a dialect profile, a fault profile and a
/// database.  This is the system under test that SQLancer drives.
///
/// Engines are `Clone`: a clone is a full snapshot of the database,
/// option state and statement counter, which is what the replay cache in
/// `lancer-core` memoizes per statement-log prefix.
#[derive(Debug, Clone)]
pub struct Engine {
    dialect: Dialect,
    bugs: BugProfile,
    db: Database,
    coverage: Coverage,
    /// Tables that have been `ANALYZE`d (enables skip-scan style paths).
    pub(crate) analyzed: BTreeSet<String>,
    /// Tables with extended statistics objects (PostgreSQL).
    pub(crate) statistics: BTreeSet<String>,
    /// Columns poisoned by the double-quoted-string/rename interaction
    /// (Listing 8): `(table, current column name, literal text returned)`.
    pub(crate) poisoned_columns: Vec<(String, String, String)>,
    /// Whether `PRAGMA case_sensitive_like` has been changed since an index
    /// using `LIKE` was created (Listing 9).
    pub(crate) like_pragma_changed: bool,
    /// Auto-increment counters for SERIAL columns, keyed by (table, column).
    pub(crate) serial_counters: BTreeMap<(String, String), i64>,
    /// Number of statements executed (drives the "nondeterministic" SET
    /// failure fault).
    pub(crate) statements_executed: u64,
}

impl Engine {
    /// Creates a reference-correct engine (no faults).
    #[must_use]
    pub fn new(dialect: Dialect) -> Engine {
        Engine::with_bugs(dialect, BugProfile::none())
    }

    /// Creates an engine with the given fault profile.
    #[must_use]
    pub fn with_bugs(dialect: Dialect, bugs: BugProfile) -> Engine {
        Engine {
            dialect,
            bugs,
            db: Database::new(),
            coverage: Coverage::new(),
            analyzed: BTreeSet::new(),
            statistics: BTreeSet::new(),
            poisoned_columns: Vec::new(),
            like_pragma_changed: false,
            serial_counters: BTreeMap::new(),
            statements_executed: 0,
        }
    }

    /// The engine's dialect.
    #[must_use]
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// The enabled fault profile.
    #[must_use]
    pub fn bugs(&self) -> &BugProfile {
        &self.bugs
    }

    /// The underlying database (schema introspection for generators).
    #[must_use]
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Feature coverage accumulated so far.
    #[must_use]
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Number of statements executed so far.
    #[must_use]
    pub fn statements_executed(&self) -> u64 {
        self.statements_executed
    }

    pub(crate) fn cover(&mut self, feature: &str) {
        self.coverage.hit(feature);
    }

    /// Builds an evaluator bound to the current option state.
    #[must_use]
    pub fn evaluator(&self) -> Evaluator<'_> {
        let mut ev = Evaluator::new(self.dialect, &self.bugs);
        ev.case_sensitive_like = self.db.option_bool("case_sensitive_like", false);
        ev
    }

    /// Parses and executes a single SQL statement.
    ///
    /// # Errors
    ///
    /// Returns parse errors as semantic [`EngineError`]s and execution errors
    /// unchanged.
    pub fn execute_sql(&mut self, sql: &str) -> EngineResult<QueryResult> {
        let stmt = parse_statement(sql)
            .map_err(|e| EngineError::semantic(format!("syntax error: {e}")))?;
        self.execute(&stmt)
    }

    /// Parses and executes a semicolon-separated script, stopping at the
    /// first error.
    ///
    /// # Errors
    ///
    /// Returns the first parse or execution error.
    pub fn execute_script(&mut self, sql: &str) -> EngineResult<Vec<QueryResult>> {
        let stmts =
            parse_script(sql).map_err(|e| EngineError::semantic(format!("syntax error: {e}")))?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in &stmts {
            out.push(self.execute(s)?);
        }
        Ok(out)
    }

    /// Executes a single statement.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] describing constraint violations, semantic
    /// errors, corruptions or simulated crashes.
    pub fn execute(&mut self, stmt: &Statement) -> EngineResult<QueryResult> {
        self.statements_executed += 1;
        // Statements are atomic: a failing statement leaves the database
        // unchanged (multi-row INSERTs in particular must not be partially
        // applied), matching the real DBMS and keeping generated statement
        // logs replayable.
        let snapshot = self.db.clone();
        let result = self.dispatch(stmt);
        if result.is_err() {
            self.db = snapshot;
        }
        result
    }

    fn dispatch(&mut self, stmt: &Statement) -> EngineResult<QueryResult> {
        match stmt {
            Statement::CreateTable(ct) => self.exec_create_table(ct),
            Statement::CreateIndex(ci) => self.exec_create_index(ci),
            Statement::CreateView { name, query } => self.exec_create_view(name, query),
            Statement::DropTable { name, if_exists } => self.exec_drop_table(name, *if_exists),
            Statement::DropIndex { name, if_exists } => self.exec_drop_index(name, *if_exists),
            Statement::DropView { name, if_exists } => self.exec_drop_view(name, *if_exists),
            Statement::AlterTable(alter) => self.exec_alter(alter),
            Statement::Insert(ins) => self.exec_insert(ins),
            Statement::Update(upd) => self.exec_update(upd),
            Statement::Delete(del) => self.exec_delete(del),
            Statement::Select(q) => {
                self.cover("stmt.select");
                self.exec_query(q)
            }
            // EXPLAIN renders the deterministic plan as rows without
            // executing the query.  It records no coverage point: the
            // feature registry is part of the campaign-visible stats
            // surface, and EXPLAIN never occurs in generated workloads.
            Statement::Explain(q) => {
                let plan = self.explain(q);
                Ok(QueryResult {
                    columns: vec!["QUERY PLAN".to_owned()],
                    rows: plan.render().into_iter().map(|l| vec![Value::Text(l)]).collect(),
                    affected: 0,
                })
            }
            Statement::Vacuum { full } => self.exec_vacuum(*full),
            Statement::Reindex { target } => self.exec_reindex(target.as_deref()),
            Statement::Analyze { target } => self.exec_analyze(target.as_deref()),
            Statement::CheckTable { table, for_upgrade } => {
                self.exec_check_table(table, *for_upgrade)
            }
            Statement::RepairTable { table } => self.exec_repair_table(table),
            Statement::Pragma { name, value } => self.exec_pragma(name, value.as_ref()),
            Statement::Set { scope: _, name, value } => self.exec_set(name, value),
            Statement::CreateStatistics { name, columns, table } => {
                self.exec_create_statistics(name, columns, table)
            }
            Statement::Discard => {
                if !self.dialect.has_statistics_and_discard() {
                    return Err(EngineError::semantic("DISCARD is not supported by this DBMS"));
                }
                self.cover("stmt.discard");
                Ok(QueryResult::empty())
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                // Transactions are accepted but not isolated: each worker
                // owns its database, matching the per-thread setup in §3.4.
                self.cover("stmt.transaction");
                Ok(QueryResult::empty())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_row_uses_value_equality() {
        let r = QueryResult {
            columns: vec!["a".into()],
            rows: vec![vec![Value::Integer(1), Value::Null]],
            affected: 0,
        };
        assert!(r.contains_row(&[Value::Real(1.0), Value::Null]));
        assert!(!r.contains_row(&[Value::Integer(2), Value::Null]));
        assert!(!r.contains_row(&[Value::Integer(1)]));
    }

    #[test]
    fn execute_sql_reports_syntax_errors() {
        let mut e = Engine::new(Dialect::Sqlite);
        let err = e.execute_sql("SELEKT 1").unwrap_err();
        assert!(err.message.contains("syntax error"));
    }

    #[test]
    fn transactions_are_accepted() {
        let mut e = Engine::new(Dialect::Postgres);
        e.execute_sql("BEGIN").unwrap();
        e.execute_sql("COMMIT").unwrap();
        e.execute_sql("ROLLBACK").unwrap();
        assert_eq!(e.statements_executed(), 3);
    }
}
