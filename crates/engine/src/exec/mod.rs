//! Statement execution: the engine façade and dispatch.

pub(crate) mod access;
pub mod batch;
mod colbatch;
mod ddl;
mod dml;
mod maintenance;
mod pipeline;
mod query;
mod reference;

use std::collections::{BTreeMap, BTreeSet};

use lancer_sql::ast::Statement;
use lancer_sql::parser::{parse_script, parse_statement};
use lancer_sql::value::Value;
use lancer_storage::Database;

use crate::bugs::{BugId, BugProfile};
use crate::coverage::Coverage;
use crate::dialect::Dialect;
use crate::error::{EngineError, EngineResult};
use crate::eval::Evaluator;

/// The result of executing a statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Column labels (empty for non-queries).
    pub columns: Vec<String>,
    /// Result rows (empty for non-queries).
    pub rows: Vec<Vec<Value>>,
    /// Number of rows inserted / updated / deleted.
    pub affected: usize,
}

impl QueryResult {
    /// A result carrying no rows.
    #[must_use]
    pub fn empty() -> QueryResult {
        QueryResult::default()
    }

    /// Returns `true` if any result row equals the given row (the check the
    /// containment oracle performs client-side).
    #[must_use]
    pub fn contains_row(&self, row: &[Value]) -> bool {
        self.rows
            .iter()
            .any(|r| r.len() == row.len() && r.iter().zip(row.iter()).all(|(a, b)| a.same_as(b)))
    }
}

/// A snapshot of the engine's mutable workspace: the database plus the
/// session-state bookkeeping that statements read (analyzed tables,
/// statistics objects, poisoned columns, the LIKE pragma latch, SERIAL
/// counters).
///
/// Because the database is structurally shared ([`Database::clone`] bumps
/// reference counts; tables deep-copy only on first write), taking a
/// snapshot is O(tables) pointer work, not O(rows).  The same struct backs
/// the per-statement atomicity snapshot, `BEGIN`'s private transaction
/// workspace, and [`Engine::rewind_to`]'s replay resume.
///
/// The statement counter is deliberately *not* part of the snapshot: it is
/// engine-global (fault injection keys on statement ordinals, and a rewind
/// must not make the engine forget how many statements it has seen).  Use
/// [`Engine::execute_at`] to replay at an explicit ordinal.
#[derive(Debug, Clone)]
pub struct WorkspaceSnapshot {
    db: Database,
    analyzed: BTreeSet<String>,
    statistics: BTreeSet<String>,
    poisoned_columns: Vec<(String, String, String)>,
    like_pragma_changed: bool,
    serial_counters: BTreeMap<(String, String), i64>,
}

thread_local! {
    static WORKSPACE_REWINDS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Cumulative [`Engine::rewind_to`] count for the current thread
/// (campaign reports sample deltas around replay-heavy work).
#[must_use]
pub fn workspace_rewinds() -> u64 {
    WORKSPACE_REWINDS.with(std::cell::Cell::get)
}

/// Per-session transaction state: a private copy-on-write snapshot of the
/// mutable engine workspace taken at `BEGIN`, plus the log of statements
/// the transaction has applied to it.  `COMMIT` publishes by replaying the
/// log against the shared workspace (so concurrent commits merge instead
/// of clobbering each other); `ROLLBACK` simply discards the snapshot.
#[derive(Debug, Clone)]
struct TxnState {
    workspace: WorkspaceSnapshot,
    log: Vec<Statement>,
}

/// One emulated DBMS instance: a dialect profile, a fault profile and a
/// database.  This is the system under test that SQLancer drives.
///
/// Engines are `Clone`: a clone is a full snapshot of the database,
/// option state and statement counter, which is what the replay cache in
/// `lancer-core` memoizes per statement-log prefix.
///
/// N logical sessions share one engine (and thus one catalog): the active
/// session is switched with [`Engine::session`] or by executing the
/// `SESSION <id>` log marker, and each session may hold at most one open
/// transaction (a private `TxnState` workspace snapshot).
#[derive(Debug, Clone)]
pub struct Engine {
    dialect: Dialect,
    bugs: BugProfile,
    db: Database,
    coverage: Coverage,
    /// Tables that have been `ANALYZE`d (enables skip-scan style paths).
    pub(crate) analyzed: BTreeSet<String>,
    /// Tables with extended statistics objects (PostgreSQL).
    pub(crate) statistics: BTreeSet<String>,
    /// Columns poisoned by the double-quoted-string/rename interaction
    /// (Listing 8): `(table, current column name, literal text returned)`.
    pub(crate) poisoned_columns: Vec<(String, String, String)>,
    /// Whether `PRAGMA case_sensitive_like` has been changed since an index
    /// using `LIKE` was created (Listing 9).
    pub(crate) like_pragma_changed: bool,
    /// Auto-increment counters for SERIAL columns, keyed by (table, column).
    pub(crate) serial_counters: BTreeMap<(String, String), i64>,
    /// Number of statements executed (drives the "nondeterministic" SET
    /// failure fault).
    pub(crate) statements_executed: u64,
    /// The logical session statements currently execute under.
    active_session: u32,
    /// Open transactions, keyed by session id.
    txns: BTreeMap<u32, TxnState>,
}

impl Engine {
    /// Creates a reference-correct engine (no faults).
    #[must_use]
    pub fn new(dialect: Dialect) -> Engine {
        Engine::with_bugs(dialect, BugProfile::none())
    }

    /// Creates an engine with the given fault profile.
    #[must_use]
    pub fn with_bugs(dialect: Dialect, bugs: BugProfile) -> Engine {
        Engine {
            dialect,
            bugs,
            db: Database::new(),
            coverage: Coverage::new(),
            analyzed: BTreeSet::new(),
            statistics: BTreeSet::new(),
            poisoned_columns: Vec::new(),
            like_pragma_changed: false,
            serial_counters: BTreeMap::new(),
            statements_executed: 0,
            active_session: 0,
            txns: BTreeMap::new(),
        }
    }

    /// The engine's dialect.
    #[must_use]
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// The enabled fault profile.
    #[must_use]
    pub fn bugs(&self) -> &BugProfile {
        &self.bugs
    }

    /// The underlying database (schema introspection for generators).
    #[must_use]
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Feature coverage accumulated so far.
    #[must_use]
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Number of statements executed so far.
    #[must_use]
    pub fn statements_executed(&self) -> u64 {
        self.statements_executed
    }

    /// Records a coverage feature point through the engine's shared
    /// interior-mutability sink, so the mutable ([`Engine::execute`]) and
    /// read-only ([`Engine::query`]) paths record identical keys.
    pub(crate) fn cover(&self, feature: &str) {
        self.coverage.hit(feature);
    }

    /// Builds an evaluator bound to the current option state.
    #[must_use]
    pub fn evaluator(&self) -> Evaluator<'_> {
        let mut ev = Evaluator::new(self.dialect, &self.bugs);
        ev.case_sensitive_like = self.db.option_bool("case_sensitive_like", false);
        ev
    }

    /// Parses and executes a single SQL statement.
    ///
    /// # Errors
    ///
    /// Returns parse errors as semantic [`EngineError`]s and execution errors
    /// unchanged.
    pub fn execute_sql(&mut self, sql: &str) -> EngineResult<QueryResult> {
        let stmt = parse_statement(sql)
            .map_err(|e| EngineError::semantic(format!("syntax error: {e}")))?;
        self.execute(&stmt)
    }

    /// Parses and executes a semicolon-separated script, stopping at the
    /// first error.
    ///
    /// # Errors
    ///
    /// Returns the first parse or execution error.
    pub fn execute_script(&mut self, sql: &str) -> EngineResult<Vec<QueryResult>> {
        let stmts =
            parse_script(sql).map_err(|e| EngineError::semantic(format!("syntax error: {e}")))?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in &stmts {
            out.push(self.execute(s)?);
        }
        Ok(out)
    }

    /// Executes a single statement.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] describing constraint violations, semantic
    /// errors, corruptions or simulated crashes.
    pub fn execute(&mut self, stmt: &Statement) -> EngineResult<QueryResult> {
        self.statements_executed += 1;
        if matches!(
            stmt,
            Statement::Begin | Statement::Commit | Statement::Rollback | Statement::Session { .. }
        ) {
            return self.exec_txn_control(stmt);
        }
        // When the active session holds an open transaction, execute
        // against its private workspace instead of the shared one.
        let in_txn = self.txns.contains_key(&self.active_session);
        if in_txn {
            self.swap_workspace();
        }
        // Statements are atomic: a failing statement leaves the database
        // unchanged (multi-row INSERTs in particular must not be partially
        // applied), matching the real DBMS and keeping generated statement
        // logs replayable.  Read-only statements cannot touch the database
        // at all, so they skip the snapshot; for mutating statements the
        // snapshot is reference-count bumps (copy-on-write), so the cost
        // moved from O(database) to O(tables the statement writes).
        // Session bookkeeping outside the database — SERIAL counters in
        // particular — deliberately survives the failure, like sequence
        // advances in a real DBMS.
        let snapshot = if stmt.is_read_only() { None } else { Some(self.workspace_snapshot()) };
        let result = self.dispatch(stmt);
        if result.is_err() {
            if let Some(snapshot) = snapshot {
                self.db = snapshot.db;
            }
        }
        if in_txn {
            self.swap_workspace();
            if result.is_ok() {
                let txn = self.txns.get_mut(&self.active_session).expect("open transaction");
                txn.log.push(stmt.clone());
            }
        }
        result
    }

    /// Evaluates a read-only statement *as if* it were the engine's
    /// `ordinal`-th statement (0-based) — through the same operator
    /// pipeline (row and columnar) as [`Engine::execute`], but over
    /// `&self`: no counter bump, no atomicity snapshot, no workspace
    /// swap, no RNG draws.  Coverage is recorded through the shared
    /// interior-mutability sink, so the keys are identical to the
    /// mutable path's.
    ///
    /// The fault clock is explicit: `execute` bumps the statement counter
    /// *before* dispatch, so a statement running as ordinal `n` observes
    /// clock `n + 1` — `query` presents the same clock to the shared
    /// read-only dispatcher, which makes `query(ordinal, stmt)`
    /// bit-identical (results, errors, coverage keys) to `execute(stmt)`
    /// as statement `ordinal` on a fresh clone.  This is what lets many
    /// threads judge candidate queries against one shared
    /// `Arc<Engine>` snapshot with zero per-candidate engine state.
    ///
    /// # Errors
    ///
    /// Returns a semantic error when the statement is not read-only, or
    /// when the active session holds an open transaction (an open
    /// transaction swaps in a private workspace and logs successful
    /// statements — both observable effects `&self` cannot reproduce;
    /// use [`Engine::execute`] there).  Otherwise, same as
    /// [`Engine::execute`].
    pub fn query(&self, ordinal: u64, stmt: &Statement) -> EngineResult<QueryResult> {
        if !stmt.is_read_only() {
            return Err(EngineError::semantic(
                "query() evaluates read-only statements only; use execute() for writes",
            ));
        }
        if self.txns.contains_key(&self.active_session) {
            return Err(EngineError::semantic(
                "query() cannot run while the active session holds an open transaction; \
                 use execute()",
            ));
        }
        self.read_only_eval(ordinal + 1, stmt)
    }

    /// Evaluates a read-only statement at the engine's *current* clock
    /// position through the [`Engine::query`] read path, advancing the
    /// statement counter exactly as [`Engine::execute`] would — so
    /// counter-keyed fault parity (and therefore campaign byte-identity)
    /// is preserved at oracle call sites.  Falls back to `execute` when
    /// the statement is not read-only or the active session holds an
    /// open transaction.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::execute`].
    pub fn query_here(&mut self, stmt: &Statement) -> EngineResult<QueryResult> {
        if !stmt.is_read_only() || self.txns.contains_key(&self.active_session) {
            return self.execute(stmt);
        }
        let ordinal = self.statements_executed;
        self.statements_executed += 1;
        self.query(ordinal, stmt)
    }

    /// Switches the statements that follow to the given logical session.
    /// Sessions share the catalog; each may hold one open transaction.
    pub fn session(&mut self, id: u32) -> SessionHandle<'_> {
        self.active_session = id;
        SessionHandle { engine: self }
    }

    /// The session id statements currently execute under.
    #[must_use]
    pub fn active_session(&self) -> u32 {
        self.active_session
    }

    /// Returns `true` if the given session holds an open transaction.
    #[must_use]
    pub fn in_transaction(&self, session: u32) -> bool {
        self.txns.contains_key(&session)
    }

    /// Takes a copy-on-write snapshot of the mutable workspace.  Cheap:
    /// the database shares its tables structurally, so this is
    /// reference-count bumps plus clones of the small session-state sets.
    #[must_use]
    pub fn workspace_snapshot(&self) -> WorkspaceSnapshot {
        WorkspaceSnapshot {
            db: self.db.clone(),
            analyzed: self.analyzed.clone(),
            statistics: self.statistics.clone(),
            poisoned_columns: self.poisoned_columns.clone(),
            like_pragma_changed: self.like_pragma_changed,
            serial_counters: self.serial_counters.clone(),
        }
    }

    /// Rewinds the mutable workspace to an earlier snapshot, leaving the
    /// statement counter, coverage, sessions and open transactions
    /// untouched.  The snapshot stays usable: replay loops rewind to the
    /// same snapshot once per candidate.
    pub fn rewind_to(&mut self, snapshot: &WorkspaceSnapshot) {
        WORKSPACE_REWINDS.with(|c| c.set(c.get() + 1));
        self.restore_workspace(snapshot.clone());
    }

    /// Installs a workspace by value (rewind without the counter bump —
    /// used by `COMMIT` under the lost-update fault).
    fn restore_workspace(&mut self, snapshot: WorkspaceSnapshot) {
        self.db = snapshot.db;
        self.analyzed = snapshot.analyzed;
        self.statistics = snapshot.statistics;
        self.poisoned_columns = snapshot.poisoned_columns;
        self.like_pragma_changed = snapshot.like_pragma_changed;
        self.serial_counters = snapshot.serial_counters;
    }

    /// Executes a statement *as if* it were the engine's `ordinal`-th
    /// statement (0-based), then restores the statement counter.
    ///
    /// Fault injection keys on statement ordinals (the "nondeterministic"
    /// `SET` failure fires on even counts), so a replay that resumes from
    /// a snapshot — or re-runs the same suffix repeatedly, as the
    /// serializability oracle's permutation search does — must present the
    /// same counter sequence a fresh engine would.  Combined with
    /// [`Engine::rewind_to`] this makes re-running a suffix free of both
    /// the engine rebuild and the counter drift.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::execute`].
    pub fn execute_at(&mut self, ordinal: u64, stmt: &Statement) -> EngineResult<QueryResult> {
        self.with_clock(ordinal, |engine| engine.execute(stmt))
    }

    /// Runs `f` with the statement counter temporarily set to `ordinal`,
    /// restoring the saved counter on the way out.  The restore is an
    /// RAII drop guard: a panic inside `f` (a poisoned unwind through a
    /// replay) must not leave the fault clock pinned at the replayed
    /// ordinal.
    fn with_clock<T>(&mut self, ordinal: u64, f: impl FnOnce(&mut Engine) -> T) -> T {
        struct ClockGuard<'a> {
            engine: &'a mut Engine,
            saved: u64,
        }
        impl Drop for ClockGuard<'_> {
            fn drop(&mut self) {
                self.engine.statements_executed = self.saved;
            }
        }
        let guard = ClockGuard { saved: self.statements_executed, engine: self };
        guard.engine.statements_executed = ordinal;
        f(&mut *guard.engine)
    }

    /// Exchanges the shared workspace with the active session's private
    /// transaction workspace (the coverage recorder and statement counter
    /// stay engine-global).
    fn swap_workspace(&mut self) {
        let txn = self.txns.get_mut(&self.active_session).expect("open transaction");
        std::mem::swap(&mut self.db, &mut txn.workspace.db);
        std::mem::swap(&mut self.analyzed, &mut txn.workspace.analyzed);
        std::mem::swap(&mut self.statistics, &mut txn.workspace.statistics);
        std::mem::swap(&mut self.poisoned_columns, &mut txn.workspace.poisoned_columns);
        std::mem::swap(&mut self.like_pragma_changed, &mut txn.workspace.like_pragma_changed);
        std::mem::swap(&mut self.serial_counters, &mut txn.workspace.serial_counters);
    }

    fn exec_txn_control(&mut self, stmt: &Statement) -> EngineResult<QueryResult> {
        match stmt {
            Statement::Session { id } => {
                self.cover("stmt.session");
                self.active_session = *id;
                Ok(QueryResult::empty())
            }
            Statement::Begin => {
                if self.txns.contains_key(&self.active_session) {
                    return Err(EngineError::semantic(match self.dialect {
                        Dialect::Sqlite => "cannot start a transaction within a transaction",
                        Dialect::Mysql => {
                            "Transaction characteristics can't be changed while a \
                             transaction is in progress"
                        }
                        Dialect::Postgres => "there is already a transaction in progress",
                        Dialect::Duckdb => {
                            "TransactionContext Error: cannot start a transaction \
                             within a transaction"
                        }
                    }));
                }
                self.cover("stmt.begin");
                let txn = TxnState { workspace: self.workspace_snapshot(), log: Vec::new() };
                self.txns.insert(self.active_session, txn);
                Ok(QueryResult::empty())
            }
            Statement::Commit => {
                let Some(txn) = self.txns.remove(&self.active_session) else {
                    return Err(EngineError::semantic(match self.dialect {
                        Dialect::Sqlite => "cannot commit - no transaction is active",
                        Dialect::Mysql => "There is no active transaction",
                        Dialect::Postgres => "there is no transaction in progress",
                        Dialect::Duckdb => {
                            "TransactionContext Error: cannot commit - no transaction is active"
                        }
                    }));
                };
                self.cover("stmt.commit");
                if self.bugs.is_enabled(BugId::MysqlLostUpdate) {
                    // Lost update: publish the private workspace wholesale,
                    // clobbering whatever other sessions committed since
                    // this transaction's BEGIN.
                    self.restore_workspace(txn.workspace);
                    return Ok(QueryResult::empty());
                }
                let publish = if self.bugs.is_enabled(BugId::DuckdbCommitLaneAlignedPrefix) {
                    // Lane-aligned commit: only full lane groups of the
                    // transaction log are published; the partial tail batch
                    // is silently dropped.
                    &txn.log[..txn.log.len() / 8 * 8]
                } else {
                    &txn.log[..]
                };
                self.replay_into_shared(publish);
                Ok(QueryResult::empty())
            }
            Statement::Rollback => {
                let Some(txn) = self.txns.remove(&self.active_session) else {
                    return Err(EngineError::semantic(match self.dialect {
                        Dialect::Sqlite => "cannot rollback - no transaction is active",
                        Dialect::Mysql => "There is no active transaction",
                        Dialect::Postgres => "there is no transaction in progress",
                        Dialect::Duckdb => {
                            "TransactionContext Error: cannot rollback - no transaction is active"
                        }
                    }));
                };
                self.cover("stmt.rollback");
                if self.bugs.is_enabled(BugId::SqliteTornRollbackIndexed) {
                    // Torn rollback: the undo pass skips statements whose
                    // target table carries an index, re-applying their
                    // effects to the shared state instead of discarding
                    // them.
                    let torn: Vec<Statement> = txn
                        .log
                        .iter()
                        .filter(|s| {
                            Self::dml_target(s).is_some_and(|t| !self.db.indexes_on(t).is_empty())
                        })
                        .cloned()
                        .collect();
                    self.replay_into_shared(&torn);
                }
                if self.bugs.is_enabled(BugId::PostgresSerialCounterSurvivesRollback) {
                    // Sequence advances made inside the transaction survive
                    // the rollback, as real PostgreSQL sequences do.
                    self.serial_counters = txn.workspace.serial_counters;
                }
                Ok(QueryResult::empty())
            }
            _ => unreachable!("exec_txn_control called for a non-transaction statement"),
        }
    }

    /// Replays a committed transaction log against the shared workspace.
    /// Individual statements may fail (another session's commit can have
    /// introduced a conflicting row since BEGIN); a failing statement is
    /// skipped and leaves the shared state unchanged, like `execute`.
    fn replay_into_shared(&mut self, stmts: &[Statement]) {
        for stmt in stmts {
            let snapshot = self.db.clone();
            if self.dispatch(stmt).is_err() {
                self.db = snapshot;
            }
        }
    }

    /// The table a DML statement writes to, if any.
    fn dml_target(stmt: &Statement) -> Option<&str> {
        match stmt {
            Statement::Insert(ins) => Some(&ins.table),
            Statement::Update(upd) => Some(&upd.table),
            Statement::Delete(del) => Some(&del.table),
            _ => None,
        }
    }

    fn dispatch(&mut self, stmt: &Statement) -> EngineResult<QueryResult> {
        match stmt {
            Statement::CreateTable(ct) => self.exec_create_table(ct),
            Statement::CreateIndex(ci) => self.exec_create_index(ci),
            Statement::CreateView { name, query } => self.exec_create_view(name, query),
            Statement::DropTable { name, if_exists } => self.exec_drop_table(name, *if_exists),
            Statement::DropIndex { name, if_exists } => self.exec_drop_index(name, *if_exists),
            Statement::DropView { name, if_exists } => self.exec_drop_view(name, *if_exists),
            Statement::AlterTable(alter) => self.exec_alter(alter),
            Statement::Insert(ins) => self.exec_insert(ins),
            Statement::Update(upd) => self.exec_update(upd),
            Statement::Delete(del) => self.exec_delete(del),
            // Read-only statements go through the same `&self` evaluation
            // path as `Engine::query`, with the already-bumped statement
            // counter as the explicit fault clock — the two paths are
            // identical by construction, not by parallel maintenance.
            Statement::Select(_) | Statement::Explain(_) => {
                self.read_only_eval(self.statements_executed, stmt)
            }
            Statement::Vacuum { full } => self.exec_vacuum(*full),
            Statement::Reindex { target } => self.exec_reindex(target.as_deref()),
            Statement::Analyze { target } => self.exec_analyze(target.as_deref()),
            Statement::CheckTable { table, for_upgrade } => {
                self.exec_check_table(table, *for_upgrade)
            }
            Statement::RepairTable { table } => self.exec_repair_table(table),
            Statement::Pragma { name, value } => self.exec_pragma(name, value.as_ref()),
            Statement::Set { scope: _, name, value } => {
                self.exec_set(self.statements_executed, name, value)
            }
            Statement::CreateStatistics { name, columns, table } => {
                self.exec_create_statistics(name, columns, table)
            }
            Statement::Discard => {
                if !self.dialect.has_statistics_and_discard() {
                    return Err(EngineError::semantic("DISCARD is not supported by this DBMS"));
                }
                self.cover("stmt.discard");
                Ok(QueryResult::empty())
            }
            Statement::Begin
            | Statement::Commit
            | Statement::Rollback
            | Statement::Session { .. } => {
                unreachable!("transaction control is intercepted by execute()")
            }
        }
    }

    /// Evaluates a read-only statement over `&self` at an explicit fault
    /// clock.  `clock` is the counter value the statement observes during
    /// dispatch (`execute` passes the already-bumped counter; `query`
    /// passes `ordinal + 1`).  No read-path fault is clock-keyed today —
    /// the only counter-keyed fault lives on the `SET` path, which is not
    /// read-only — but any future one must take its clock from here, not
    /// from `statements_executed`.
    fn read_only_eval(&self, clock: u64, stmt: &Statement) -> EngineResult<QueryResult> {
        let _ = clock;
        match stmt {
            Statement::Select(q) => {
                self.cover("stmt.select");
                self.exec_query(q)
            }
            // EXPLAIN renders the deterministic plan as rows without
            // executing the query.  It records no coverage point: the
            // feature registry is part of the campaign-visible stats
            // surface, and EXPLAIN never occurs in generated workloads.
            Statement::Explain(q) => {
                let plan = self.explain(q);
                Ok(QueryResult {
                    columns: vec!["QUERY PLAN".to_owned()],
                    rows: plan.render().into_iter().map(|l| vec![Value::Text(l)]).collect(),
                    affected: 0,
                })
            }
            _ => unreachable!("read_only_eval called for a non-read-only statement"),
        }
    }
}

/// A borrow of the engine bound to one logical session, from
/// [`Engine::session`].  Statements executed through the handle run under
/// that session id; the engine (and its catalog) stays shared.
#[derive(Debug)]
pub struct SessionHandle<'a> {
    engine: &'a mut Engine,
}

impl SessionHandle<'_> {
    /// Executes a single statement under this session.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::execute`].
    pub fn execute(&mut self, stmt: &Statement) -> EngineResult<QueryResult> {
        self.engine.execute(stmt)
    }

    /// Parses and executes a single SQL statement under this session.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::execute_sql`].
    pub fn execute_sql(&mut self, sql: &str) -> EngineResult<QueryResult> {
        self.engine.execute_sql(sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_row_uses_value_equality() {
        let r = QueryResult {
            columns: vec!["a".into()],
            rows: vec![vec![Value::Integer(1), Value::Null]],
            affected: 0,
        };
        assert!(r.contains_row(&[Value::Real(1.0), Value::Null]));
        assert!(!r.contains_row(&[Value::Integer(2), Value::Null]));
        assert!(!r.contains_row(&[Value::Integer(1)]));
    }

    #[test]
    fn execute_sql_reports_syntax_errors() {
        let mut e = Engine::new(Dialect::Sqlite);
        let err = e.execute_sql("SELEKT 1").unwrap_err();
        assert!(err.message.contains("syntax error"));
    }

    #[test]
    fn commit_publishes_and_rollback_discards() {
        let mut e = Engine::new(Dialect::Postgres);
        e.execute_sql("CREATE TABLE t0(c0 INTEGER)").unwrap();
        e.execute_sql("BEGIN").unwrap();
        e.execute_sql("INSERT INTO t0(c0) VALUES (1)").unwrap();
        // Uncommitted writes are invisible outside the transaction's
        // session but visible inside it.
        assert_eq!(e.session(1).execute_sql("SELECT c0 FROM t0").unwrap().rows.len(), 0);
        assert_eq!(e.session(0).execute_sql("SELECT c0 FROM t0").unwrap().rows.len(), 1);
        e.execute_sql("COMMIT").unwrap();
        assert_eq!(e.session(1).execute_sql("SELECT c0 FROM t0").unwrap().rows.len(), 1);

        e.session(1).execute_sql("BEGIN").unwrap();
        e.execute_sql("INSERT INTO t0(c0) VALUES (2)").unwrap();
        e.execute_sql("ROLLBACK").unwrap();
        assert_eq!(e.execute_sql("SELECT c0 FROM t0").unwrap().rows.len(), 1);
    }

    #[test]
    fn transaction_misuse_is_a_dialect_error() {
        for d in Dialect::ALL {
            let mut e = Engine::new(d);
            let commit = e.execute_sql("COMMIT").unwrap_err();
            let rollback = e.execute_sql("ROLLBACK").unwrap_err();
            e.execute_sql("BEGIN").unwrap();
            let nested = e.execute_sql("BEGIN").unwrap_err();
            for err in [&commit, &rollback, &nested] {
                assert_eq!(err.class, crate::error::ErrorClass::Semantic, "{d:?}: {err:?}");
            }
            match d {
                Dialect::Sqlite => {
                    assert_eq!(commit.message, "cannot commit - no transaction is active");
                    assert_eq!(rollback.message, "cannot rollback - no transaction is active");
                    assert_eq!(nested.message, "cannot start a transaction within a transaction");
                }
                Dialect::Mysql => {
                    assert_eq!(commit.message, "There is no active transaction");
                    assert_eq!(rollback.message, "There is no active transaction");
                    assert!(nested.message.contains("transaction is in progress"));
                }
                Dialect::Postgres => {
                    assert_eq!(commit.message, "there is no transaction in progress");
                    assert_eq!(rollback.message, "there is no transaction in progress");
                    assert_eq!(nested.message, "there is already a transaction in progress");
                }
                Dialect::Duckdb => {
                    assert!(commit.message.starts_with("TransactionContext Error"));
                    assert!(rollback.message.starts_with("TransactionContext Error"));
                    assert!(nested.message.starts_with("TransactionContext Error"));
                }
            }
        }
    }

    #[test]
    fn sessions_isolate_their_transactions() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0)").unwrap();
        e.session(1).execute_sql("BEGIN").unwrap();
        e.session(1).execute_sql("INSERT INTO t0(c0) VALUES (1)").unwrap();
        e.session(2).execute_sql("BEGIN").unwrap();
        e.session(2).execute_sql("INSERT INTO t0(c0) VALUES (2)").unwrap();
        // Each session sees only its own uncommitted write.
        assert_eq!(e.session(1).execute_sql("SELECT c0 FROM t0").unwrap().rows.len(), 1);
        assert_eq!(e.session(2).execute_sql("SELECT c0 FROM t0").unwrap().rows.len(), 1);
        // Commits replay logs against the shared state, so both writes
        // survive even though the transactions overlapped.
        e.session(1).execute_sql("COMMIT").unwrap();
        e.session(2).execute_sql("COMMIT").unwrap();
        assert_eq!(e.session(0).execute_sql("SELECT c0 FROM t0").unwrap().rows.len(), 2);
    }

    #[test]
    fn execute_at_restores_the_clock_across_a_panic() {
        let mut e = Engine::new(Dialect::Mysql);
        e.execute_sql("CREATE TABLE t0(c0 INT)").unwrap();
        e.execute_sql("INSERT INTO t0(c0) VALUES (1)").unwrap();
        assert_eq!(e.statements_executed(), 2);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.with_clock(40, |_| panic!("mid-replay unwind"));
        }));
        assert!(unwound.is_err());
        // The RAII guard must have put the fault clock back even though
        // the closure never returned.
        assert_eq!(e.statements_executed(), 2);
        // And the engine keeps working with the correct clock afterwards.
        let stmt = lancer_sql::parse_statement("SELECT c0 FROM t0").unwrap();
        assert_eq!(e.execute_at(7, &stmt).unwrap().rows.len(), 1);
        assert_eq!(e.statements_executed(), 2);
    }

    #[test]
    fn query_rejects_writes_and_open_transactions() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0)").unwrap();
        let write = lancer_sql::parse_statement("INSERT INTO t0(c0) VALUES (1)").unwrap();
        let read = lancer_sql::parse_statement("SELECT c0 FROM t0").unwrap();
        assert!(e.query(5, &write).unwrap_err().message.contains("read-only"));
        e.execute_sql("BEGIN").unwrap();
        assert!(e.query(5, &read).unwrap_err().message.contains("open transaction"));
        // query_here falls back to execute in both situations.
        assert!(e.query_here(&read).is_ok());
        e.execute_sql("COMMIT").unwrap();
        assert!(e.query(5, &read).is_ok());
    }

    #[test]
    fn query_records_the_same_coverage_keys_as_execute() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0, c1)").unwrap();
        e.execute_sql("INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b')").unwrap();
        let stmt = lancer_sql::parse_statement(
            "SELECT DISTINCT c0, COUNT(*) FROM t0 WHERE c0 + 1 > 1 GROUP BY c0 ORDER BY c0",
        )
        .unwrap();
        // Clones never share the sink, so each side records from the same
        // starting snapshot and the hit sets are directly comparable.
        let mut via_execute = e.clone();
        let via_query = e.clone();
        let ordinal = via_execute.statements_executed();
        let r1 = via_execute.execute(&stmt);
        let r2 = via_query.query(ordinal, &stmt);
        assert_eq!(r1, r2);
        assert_eq!(
            via_execute.coverage().hit_features(),
            via_query.coverage().hit_features(),
            "the two paths must record identical coverage keys"
        );
        // The read path recorded strictly through &self.
        assert!(via_query.coverage().hit_features().contains(&"exec.group_by".to_owned()));
    }

    #[test]
    fn session_marker_statement_switches_sessions() {
        let mut e = Engine::new(Dialect::Sqlite);
        assert_eq!(e.active_session(), 0);
        e.execute_sql("SESSION 3").unwrap();
        assert_eq!(e.active_session(), 3);
        e.execute_sql("BEGIN").unwrap();
        assert!(e.in_transaction(3));
        assert!(!e.in_transaction(0));
        e.execute_sql("SESSION 0").unwrap();
        // Session 3's transaction stays open across the switch.
        e.execute_sql("SESSION 3").unwrap();
        e.execute_sql("COMMIT").unwrap();
        assert!(!e.in_transaction(3));
    }
}
