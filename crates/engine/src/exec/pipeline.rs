//! The batched `SELECT` operator pipeline.
//!
//! `exec_select` used to be one monolithic function that threaded loose
//! row vectors through nested per-row loops.  It is now assembled as a
//! sequence of composable operators — [`Operator::Scan`],
//! [`Operator::Join`], [`Operator::IndexProbe`], [`Operator::Filter`],
//! [`Operator::Project`] / [`Operator::Aggregate`], [`Operator::Distinct`],
//! [`Operator::Sort`], [`Operator::Limit`] — each consuming and producing
//! a [`RowBatch`].  Batches move between stages by value (no per-stage
//! copies), the schema is stored once per batch, and a `SELECT *`
//! projection over unaliased sources is the identity on the batch.
//!
//! **Determinism contract.**  The pipeline is a pure restructuring of the
//! original straight-line evaluator, which is retained verbatim as
//! `exec::reference` and compared against it by a property suite
//! (`tests/pipeline_differential.rs`): same rows in the same order, same
//! errors, same coverage points — and every injected fault (the
//! Listing-1/Listing-2 shapes and friends) fires at exactly the same rows
//! as before.  Operator assembly reads the catalog through
//! [`exec::access`](crate::exec::access), the same facts `crate::plan`
//! models, so the executor's scan-kind choice and the plan tree cannot
//! drift apart.
//!
//! **Layouts.**  Batches move between operators as a
//! [`Batch`](crate::exec::colbatch::Batch): row-major for the three
//! row-store dialects, column-major ([`ColumnBatch`]) for the dialect
//! whose profile [`prefers_columnar`](crate::dialect::Dialect::
//! prefers_columnar).  Scan, Filter, Project and Aggregate have
//! column-at-a-time implementations; every other operator (and every
//! predicate or projection shape the vectorised kernels cannot prove
//! infallible) pivots back to rows and runs the row code, so the
//! columnar path can never produce different rows, errors or coverage
//! than the row path it shadows.

use std::sync::Arc;

use lancer_sql::ast::expr::{AggFunc, Expr, TypeName};
use lancer_sql::ast::stmt::{Join as JoinClause, JoinKind, Select, SelectItem};
use lancer_sql::collation::Collation;
use lancer_sql::value::Value;

use crate::bugs::BugId;
use crate::error::EngineResult;
use crate::eval::{eval_aggregate, RowSchema};
use crate::exec::access::{find_equality_probe, probe_blocked_by_inheritance, probe_candidates};
use crate::exec::batch::RowBatch;
use crate::exec::colbatch::{compile_filter_kernel, Batch, ColumnBatch, FilterKernel};
use crate::exec::query::{
    columnar_sum_tail_len, concat_row, cross_product, expr_references_column,
    find_is_not_literal_column, rewrite_like_int_affinity, selection_tail_victim,
};
use crate::exec::{Engine, QueryResult};

/// One stage of the physical pipeline for a `SELECT`.
///
/// Operators are assembled from the query shape alone ([`assemble`]);
/// catalog- and fault-dependent decisions happen inside
/// [`Operator::apply`], at the same points of the data flow as in the
/// reference evaluator.
pub(crate) enum Operator<'q> {
    /// Load every `FROM` source, apply the MEMORY-engine join fault, and
    /// fold the sources into one batch (cross product).
    Scan,
    /// One explicit `JOIN` clause: load the right source and combine.
    Join(&'q JoinClause),
    /// Single-`FROM` index interactions: the partial-index NOT NULL fault
    /// (Listing 1) and the equality-probe fast path.
    IndexProbe,
    /// The `WHERE` filter (including the LIKE-optimisation fault rewrite).
    Filter(&'q Expr),
    /// Plain projection (including the poisoned-column fault).
    Project,
    /// Grouping / aggregation projection (including the poisoned-column,
    /// inheritance-GROUP BY and NOCASE-group faults).
    Aggregate,
    /// `SELECT DISTINCT` deduplication (including the skip-scan and
    /// NULL-as-zero faults).
    Distinct,
    /// `ORDER BY`.
    Sort,
    /// `LIMIT` / `OFFSET`.
    Limit,
}

/// Assembles the operator pipeline for a `SELECT` from its query shape.
/// The stage order is fixed and matches the reference evaluator: scan,
/// joins, index interactions, filter, projection/aggregation, distinct,
/// sort, truncation.
pub(crate) fn assemble(s: &Select) -> Vec<Operator<'_>> {
    let mut ops = vec![Operator::Scan];
    for join in &s.joins {
        ops.push(Operator::Join(join));
    }
    if s.from.len() == 1 {
        ops.push(Operator::IndexProbe);
    }
    if let Some(w) = &s.where_clause {
        ops.push(Operator::Filter(w));
    }
    let has_aggregate = s.group_by.iter().any(Expr::contains_aggregate)
        || s.having.as_ref().is_some_and(Expr::contains_aggregate)
        || s.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        });
    ops.push(if !s.group_by.is_empty() || has_aggregate {
        Operator::Aggregate
    } else {
        Operator::Project
    });
    if s.distinct {
        ops.push(Operator::Distinct);
    }
    if !s.order_by.is_empty() {
        ops.push(Operator::Sort);
    }
    if s.limit.is_some() || s.offset.is_some() {
        ops.push(Operator::Limit);
    }
    ops
}

impl<'q> Operator<'q> {
    /// Runs the operator: consumes the incoming batch, produces the next.
    pub(crate) fn apply(
        &self,
        engine: &Engine,
        s: &'q Select,
        batch: Batch,
    ) -> EngineResult<Batch> {
        match self {
            Operator::Scan => engine.op_scan(s),
            Operator::Join(join) => engine.op_join(join, batch.into_rows()).map(Batch::Rows),
            Operator::IndexProbe => engine.op_index_probe(s, batch),
            Operator::Filter(w) => engine.op_filter(w, batch),
            Operator::Project => engine.op_project(s, batch),
            Operator::Aggregate => engine.op_aggregate(s, batch),
            Operator::Distinct => engine.op_distinct(s, batch.into_rows()).map(Batch::Rows),
            Operator::Sort => engine.op_sort(s, batch.into_rows()).map(Batch::Rows),
            Operator::Limit => engine.op_limit(s, batch.into_rows()).map(Batch::Rows),
        }
    }
}

impl Engine {
    pub(crate) fn exec_select(&self, s: &Select) -> EngineResult<QueryResult> {
        self.select_preflight(s)?;
        let mut batch = Batch::Rows(RowBatch::empty());
        for op in assemble(s) {
            batch = op.apply(self, s, batch)?;
        }
        let batch = batch.into_rows();
        Ok(QueryResult { columns: batch.columns, rows: batch.rows, affected: 0 })
    }

    /// Loads the `FROM` sources and folds them into the initial batch.
    /// The columnar dialect's single-table scans materialise straight
    /// into column vectors; everything else takes the row path.
    fn op_scan(&self, s: &Select) -> EngineResult<Batch> {
        if self.dialect().prefers_columnar() && s.from.len() == 1 && s.joins.is_empty() {
            if let Some(cb) = self.scan_columnar(&s.from[0]) {
                return Ok(Batch::Cols(cb));
            }
        }
        self.op_scan_rows(s).map(Batch::Rows)
    }

    /// Single-table columnar scan.  `None` when the source needs the row
    /// loader: views, missing tables (so the error rises from the same
    /// place), and any scan-time row-rewriting fault.
    fn scan_columnar(&self, name: &str) -> Option<ColumnBatch> {
        if self.db.view(name).is_some()
            || self.db.table(name).is_none()
            || self.bugs().is_enabled(BugId::SqliteNoCaseWithoutRowidDedup)
        {
            return None;
        }
        self.cover("exec.table_scan");
        let table = self.db.table(name).expect("table presence just checked");
        let schema = table.schema.clone();
        let mut cols: Vec<Vec<Value>> = (0..schema.columns.len()).map(|_| Vec::new()).collect();
        let mut len = 0usize;
        for row in table.rows() {
            for (c, v) in row.values.into_iter().enumerate() {
                cols[c].push(v);
            }
            len += 1;
        }
        let schema = RowSchema::single(crate::eval::SourceSchema {
            name: schema.name.clone(),
            columns: schema.columns.clone(),
        });
        Some(ColumnBatch { schema: Arc::new(schema), columns: Vec::new(), cols, len })
    }

    fn op_scan_rows(&self, s: &Select) -> EngineResult<RowBatch> {
        let mut sources = Vec::with_capacity(s.from.len());
        for name in &s.from {
            sources.push(self.load_source(name)?);
        }
        let multi_table = s.from.len() + s.joins.len() > 1;
        // Injected fault: joins with MEMORY-engine tables drop rows whose
        // key needs an implicit cast (negative integers) — Listing 11.
        if multi_table
            && s.where_clause.is_some()
            && self.bugs().is_enabled(BugId::MysqlMemoryEngineJoinMiss)
        {
            for src in &mut sources {
                if src.memory_engine {
                    src.rows
                        .retain(|r| !r.iter().any(|v| matches!(v, Value::Integer(i) if *i < 0)));
                }
            }
        }

        let mut schema = RowSchema::default();
        let multi_source = sources.len() > 1;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (i, src) in sources.into_iter().enumerate() {
            if multi_source {
                self.cover("exec.cross_join");
            }
            schema.sources.push(src.schema);
            // The first source's rows seed the pipeline without any copy.
            if i == 0 {
                rows = src.rows;
            } else {
                rows = cross_product(&rows, &src.rows);
            }
        }
        if schema.sources.is_empty() {
            // No FROM clause: a single constant row.
            rows = vec![Vec::new()];
        }
        Ok(RowBatch { schema: Arc::new(schema), columns: Vec::new(), rows })
    }

    /// One explicit join: loads the right source lazily (so errors keep
    /// their original order relative to earlier joins' evaluation) and
    /// combines the batch with it.
    fn op_join(&self, join: &JoinClause, mut batch: RowBatch) -> EngineResult<RowBatch> {
        let right = self.load_source(&join.table)?;
        let right_width = right.schema.columns.len();
        Arc::make_mut(&mut batch.schema).sources.push(right.schema);
        let schema = &batch.schema;
        match join.kind {
            JoinKind::Cross => self.cover("exec.cross_join"),
            JoinKind::Inner => self.cover("exec.inner_join"),
            JoinKind::Left => self.cover("exec.left_join"),
        }
        let ev = self.evaluator();
        let mut next: Vec<Vec<Value>> = Vec::new();
        match join.kind {
            JoinKind::Cross => {
                next = cross_product(&batch.rows, &right.rows);
            }
            JoinKind::Inner => {
                for l in &batch.rows {
                    for r in &right.rows {
                        let combined = concat_row(l, r);
                        let keep = match &join.on {
                            Some(on) => ev.eval_predicate(on, schema, &combined)?.is_true(),
                            None => true,
                        };
                        if keep {
                            next.push(combined);
                        }
                    }
                }
            }
            JoinKind::Left => {
                for l in &batch.rows {
                    let mut matched = false;
                    for r in &right.rows {
                        let combined = concat_row(l, r);
                        let keep = match &join.on {
                            Some(on) => ev.eval_predicate(on, schema, &combined)?.is_true(),
                            None => true,
                        };
                        if keep {
                            matched = true;
                            next.push(combined);
                        }
                    }
                    if !matched {
                        let mut combined = Vec::with_capacity(l.len() + right_width);
                        combined.extend_from_slice(l);
                        combined.extend(std::iter::repeat_n(Value::Null, right_width));
                        next.push(combined);
                    }
                }
            }
        }
        batch.rows = next;
        Ok(batch)
    }

    /// Single-`FROM` index interactions: the Listing-1 partial-index fault
    /// first, then the equality-probe fast path (single source only).
    ///
    /// A columnar batch passes through untouched unless one of those
    /// actually applies — then it pivots to rows so the probe (and any
    /// fault corrupting it) runs the identical row code.
    fn op_index_probe(&self, s: &Select, batch: Batch) -> EngineResult<Batch> {
        let batch = match batch {
            Batch::Cols(cb) => {
                let probe_applies = self.bugs().is_enabled(BugId::SqlitePartialIndexImpliesNotNull)
                    || (s.joins.is_empty()
                        && s.where_clause
                            .as_ref()
                            .is_some_and(|w| find_equality_probe(w).is_some()));
                if !probe_applies {
                    return Ok(Batch::Cols(cb));
                }
                cb.into_rows()
            }
            Batch::Rows(b) => b,
        };
        self.op_index_probe_rows(s, batch).map(Batch::Rows)
    }

    fn op_index_probe_rows(&self, s: &Select, mut batch: RowBatch) -> EngineResult<RowBatch> {
        // Injected fault: a partial index whose predicate is `col NOT NULL`
        // is (incorrectly) used for `col IS NOT <literal>` conditions,
        // dropping NULL pivot rows (Listing 1).
        if self.bugs().is_enabled(BugId::SqlitePartialIndexImpliesNotNull) {
            if let Some(w) = &s.where_clause {
                if let Some(col) = find_is_not_literal_column(w) {
                    let table = &s.from[0];
                    let has_partial = self.db.indexes_on(table).iter().any(|i| {
                        i.def.where_clause.as_ref().is_some_and(|p| {
                            matches!(p, Expr::IsNull { negated: true, expr }
                                if expr_references_column(expr, &col))
                        })
                    });
                    if has_partial {
                        self.cover("exec.partial_index");
                        if let Some((ci, _)) = batch
                            .schema
                            .resolve(&lancer_sql::ast::expr::ColumnRef::unqualified(&col))
                        {
                            batch.rows.retain(|r| !r[ci].is_null());
                        }
                    }
                }
            }
        }

        // Index fast path for single-table equality predicates.  Without
        // any fault this is result-preserving; several faults corrupt it.
        if s.joins.is_empty() {
            if let Some(w) = &s.where_clause {
                if let Some((col, lit)) = find_equality_probe(w) {
                    let schema = Arc::clone(&batch.schema);
                    batch.rows =
                        self.index_equality_probe(&s.from[0], &col, &lit, &schema, batch.rows)?;
                }
            }
        }
        Ok(batch)
    }

    /// Uses an index to narrow down candidate rows for `col = literal`
    /// predicates on a single table.  The full WHERE clause is still
    /// applied afterwards, so with a correctly maintained index this is
    /// result-preserving.
    ///
    /// The candidate index comes from [`probe_candidates`] — the same
    /// catalog fact the planner's `eligible_index` reads — and the
    /// executor takes the first one *without* the planner's collation
    /// soundness filter (deliberately: that gap is where the §4.4
    /// collation faults live).
    fn index_equality_probe(
        &self,
        table: &str,
        col: &str,
        lit: &Value,
        schema: &RowSchema,
        rows: Vec<Vec<Value>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        if probe_blocked_by_inheritance(&self.db, self.dialect(), table) {
            return Ok(rows);
        }
        let Some(t) = self.db.table(table) else { return Ok(rows) };
        let table_schema = t.schema.clone();
        let Some(col_meta) = table_schema.column(col).cloned() else { return Ok(rows) };
        let index_name = probe_candidates(&self.db, table, col).first().map(|i| i.def.name.clone());
        let Some(index_name) = index_name else { return Ok(rows) };
        self.cover("exec.index_lookup");
        let mut probe = lit.clone();
        // Injected fault: probes against an INTEGER PRIMARY KEY are coerced
        // to integers even when the stored value is text (§4.4).
        if self.bugs().is_enabled(BugId::SqliteRowidAliasInsertMismatch)
            && col_meta.primary_key
            && col_meta.type_name == Some(TypeName::Integer)
        {
            probe = Value::Integer(probe.to_integer_lenient().unwrap_or(0));
        }
        let binary_probe = self.bugs().is_enabled(BugId::SqliteCollateIndexBinaryKeys);
        let index = self.db.index(&index_name).expect("index just resolved");
        let matching: Vec<u64> = if binary_probe {
            index
                .entries()
                .iter()
                .filter(|e| {
                    e.key.first().is_some_and(|k| {
                        k.total_cmp(&probe, Collation::Binary) == std::cmp::Ordering::Equal
                    })
                })
                .map(|e| e.row_id)
                .collect()
        } else {
            index
                .entries()
                .iter()
                .filter(|e| {
                    e.key.first().is_some_and(|k| {
                        let coll = index.def.collations.first().copied().unwrap_or_default();
                        match (k, &probe) {
                            (Value::Text(a), Value::Text(b)) => coll.equal(a, b),
                            _ => k.same_as(&probe),
                        }
                    })
                })
                .map(|e| e.row_id)
                .collect()
        };
        // Map row ids back to full rows; fall back to the scan rows when the
        // id is gone (defensive).
        let t = self.db.require_table(table)?;
        let mut out = Vec::new();
        for rid in matching {
            if let Some(row) = t.get(rid) {
                out.push(row.values);
            }
        }
        // Keep rows that the index cannot serve (e.g. rows whose key the
        // comparison treats as equal across storage classes) out of the
        // result only if the index is authoritative; with schema width
        // mismatches (views), fall back to the original rows.
        if schema.width() != t.schema.columns.len() {
            return Ok(rows);
        }
        Ok(out)
    }

    /// The `WHERE` filter over one batch.  A columnar batch is filtered
    /// by a vectorised kernel into a selection bitmap when the predicate
    /// compiles ([`compile_filter_kernel`]); otherwise it pivots to rows
    /// and runs the row loop, preserving per-row evaluation order (and
    /// therefore error order) exactly.
    fn op_filter(&self, w: &Expr, batch: Batch) -> EngineResult<Batch> {
        self.cover("exec.where_filter");
        // Injected fault: the LIKE optimisation on INTEGER-affinity NOCASE
        // columns rejects exact matches (Listing 7).  The rewrite clones
        // the predicate tree, so it only runs with the fault enabled.
        let rewritten;
        let where_clause: &Expr =
            if self.bugs().is_enabled(BugId::SqliteLikeIntAffinityOptimisation) {
                rewritten = rewrite_like_int_affinity(w, batch.schema());
                &rewritten
            } else {
                w
            };
        let tail_fault = self.bugs().is_enabled(BugId::DuckdbSelectionBitmapTailOffByOne);
        let mut batch = match batch {
            Batch::Cols(mut cb) => {
                let ev = self.evaluator();
                let bitmap = compile_filter_kernel(where_clause, &cb.schema, &ev)
                    .and_then(|k| k.eval(&cb.cols, cb.len, &ev));
                if let Some(bitmap) = bitmap {
                    let mut kept: Vec<usize> =
                        (0..cb.len).filter(|&i| bitmap[i].is_true()).collect();
                    // Injected fault: the selection bitmap mishandles the
                    // partial tail lane group (columnar extension).
                    if tail_fault {
                        if let Some(victim) = selection_tail_victim(&kept, cb.len) {
                            kept.remove(victim);
                        }
                    }
                    cb.retain_indices(&kept);
                    return Ok(Batch::Cols(cb));
                }
                cb.into_rows()
            }
            Batch::Rows(b) => b,
        };
        let ev = self.evaluator();
        let input_len = batch.rows.len();
        let mut kept = Vec::new();
        let mut kept_idx: Vec<usize> = Vec::new();
        for (i, r) in batch.rows.into_iter().enumerate() {
            if ev.eval_predicate(where_clause, &batch.schema, &r)?.is_true() {
                // Input indices are only needed to locate the tail fault's
                // victim; skip the bookkeeping on the fault-free path.
                if tail_fault {
                    kept_idx.push(i);
                }
                kept.push(r);
            }
        }
        if tail_fault {
            if let Some(victim) = selection_tail_victim(&kept_idx, input_len) {
                kept.remove(victim);
            }
        }
        batch.rows = kept;
        Ok(Batch::Rows(batch))
    }

    /// Poisoned projection after RENAME COLUMN + double-quoted index
    /// expression (Listing 8): rewrites affected columns in place before
    /// the batch is projected (plain or aggregate path alike).
    fn apply_poisoned_columns(&self, s: &Select, batch: &mut RowBatch) {
        if s.from.len() != 1 {
            return;
        }
        let table = &s.from[0];
        let poisons: Vec<(String, String)> = self
            .poisoned_columns
            .iter()
            .filter(|(t, _, _)| t.eq_ignore_ascii_case(table))
            .map(|(_, new, old)| (new.clone(), old.clone()))
            .collect();
        for (new_name, old_name) in poisons {
            if let Some((ci, _)) =
                batch.schema.resolve(&lancer_sql::ast::expr::ColumnRef::unqualified(&new_name))
            {
                for r in &mut batch.rows {
                    r[ci] = Value::Text(old_name.to_ascii_uppercase());
                }
            }
        }
    }

    /// The output column labels of a projection.
    fn projection_columns(&self, s: &Select, schema: &RowSchema) -> Vec<String> {
        let mut columns: Vec<String> = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    for (_, c) in schema.flat_columns() {
                        columns.push(c.name);
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                }
            }
        }
        columns
    }

    /// Plain (non-aggregate) projection.  A columnar batch stays
    /// columnar when every item is a plain resolvable column (labels for
    /// a wildcard, column gathering otherwise); expression items pivot
    /// to the row path so evaluation errors keep their per-row order.
    fn op_project(&self, s: &Select, batch: Batch) -> EngineResult<Batch> {
        let batch = match batch {
            Batch::Cols(cb) => {
                if self.poisoned_columns.is_empty() {
                    match self.project_columnar(s, cb) {
                        Ok(done) => return Ok(Batch::Cols(done)),
                        Err(cb) => cb.into_rows(),
                    }
                } else {
                    cb.into_rows()
                }
            }
            Batch::Rows(b) => b,
        };
        self.op_project_rows(s, batch).map(Batch::Rows)
    }

    /// Columnar projection; `Err` hands the untouched batch back for the
    /// row path.
    fn project_columnar(
        &self,
        s: &Select,
        mut cb: ColumnBatch,
    ) -> Result<ColumnBatch, ColumnBatch> {
        let columns = self.projection_columns(s, &cb.schema);
        if let [SelectItem::Wildcard] = s.items.as_slice() {
            cb.columns = columns;
            return Ok(cb);
        }
        let mut picks: Vec<usize> = Vec::with_capacity(s.items.len());
        for item in &s.items {
            match item {
                SelectItem::Expr { expr: Expr::Column(c), .. } => match cb.schema.resolve(c) {
                    Some((i, _)) => picks.push(i),
                    None => return Err(cb),
                },
                _ => return Err(cb),
            }
        }
        // Gather: move each source column at its last use, clone earlier
        // duplicate uses.
        let mut out_cols: Vec<Vec<Value>> = Vec::with_capacity(picks.len());
        for (k, &i) in picks.iter().enumerate() {
            if picks[k + 1..].contains(&i) {
                out_cols.push(cb.cols[i].clone());
            } else {
                out_cols.push(std::mem::take(&mut cb.cols[i]));
            }
        }
        cb.cols = out_cols;
        cb.columns = columns;
        Ok(cb)
    }

    fn op_project_rows(&self, s: &Select, mut batch: RowBatch) -> EngineResult<RowBatch> {
        self.apply_poisoned_columns(s, &mut batch);
        let columns = self.projection_columns(s, &batch.schema);
        // `SELECT *` is the identity on the batch: source rows *are* the
        // output rows, so they move through unchanged instead of being
        // cloned value by value.
        if let [SelectItem::Wildcard] = s.items.as_slice() {
            batch.columns = columns;
            return Ok(batch);
        }
        let ev = self.evaluator();
        let mut projected = Vec::with_capacity(batch.rows.len());
        for r in &batch.rows {
            let mut out_row = Vec::with_capacity(columns.len());
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => out_row.extend(r.iter().cloned()),
                    SelectItem::Expr { expr, .. } => {
                        out_row.push(ev.eval(expr, &batch.schema, r)?)
                    }
                }
            }
            projected.push(out_row);
        }
        batch.columns = columns;
        batch.rows = projected;
        Ok(batch)
    }

    /// Grouping / aggregation projection.  The columnar fast path covers
    /// the single implicit group whose every item is a plain aggregate —
    /// over a column, over `*`, or over the NoREC `CASE WHEN p THEN x
    /// ELSE y END` rewrite — folding column vectors without ever
    /// rebuilding rows.  Everything else pivots to the row path.
    fn op_aggregate(&self, s: &Select, batch: Batch) -> EngineResult<Batch> {
        let batch = match batch {
            Batch::Cols(cb) => match self.aggregate_columnar(s, cb)? {
                Ok(done) => return Ok(Batch::Rows(done)),
                Err(cb) => cb.into_rows(),
            },
            Batch::Rows(b) => b,
        };
        self.op_aggregate_rows(s, batch).map(Batch::Rows)
    }

    /// Column-at-a-time aggregation.  The outer `EngineResult` carries
    /// evaluation errors (which the row path would raise identically);
    /// the inner `Err` hands the untouched batch back for the row path.
    fn aggregate_columnar(
        &self,
        s: &Select,
        cb: ColumnBatch,
    ) -> EngineResult<Result<RowBatch, ColumnBatch>> {
        use std::borrow::Cow;
        enum Fold {
            /// `AGG(*)`: one `1` per input row, like the row path builds.
            Ones(AggFunc),
            /// `AGG(col)`: fold the column vector in place, zero copies.
            Column(AggFunc, usize),
            /// `AGG(CASE WHEN p THEN x ELSE y END)`: selection bitmap
            /// mapped onto the two literals (the NoREC rewrite shape).
            CaseMap(AggFunc, FilterKernel, Value, Value),
        }
        if !s.group_by.is_empty()
            || s.having.is_some()
            || !self.poisoned_columns.is_empty()
            || s.items.is_empty()
        {
            return Ok(Err(cb));
        }
        let mut folds = Vec::with_capacity(s.items.len());
        {
            let ev = self.evaluator();
            for item in &s.items {
                let SelectItem::Expr {
                    expr: Expr::Aggregate { func, arg, distinct: false }, ..
                } = item
                else {
                    return Ok(Err(cb));
                };
                let fold = match arg.as_deref() {
                    None => Fold::Ones(*func),
                    Some(Expr::Column(c)) => match cb.schema.resolve(c) {
                        Some((i, _)) => Fold::Column(*func, i),
                        None => return Ok(Err(cb)),
                    },
                    Some(Expr::Case { operand: None, branches, else_expr: Some(els) }) => {
                        let ([(when, Expr::Literal(then))], Expr::Literal(els)) =
                            (branches.as_slice(), els.as_ref())
                        else {
                            return Ok(Err(cb));
                        };
                        match compile_filter_kernel(when, &cb.schema, &ev) {
                            Some(k) => Fold::CaseMap(*func, k, then.clone(), els.clone()),
                            None => return Ok(Err(cb)),
                        }
                    }
                    _ => return Ok(Err(cb)),
                };
                folds.push(fold);
            }
        }
        self.cover("exec.group_by");
        // Injected fault: the vectorised SUM fold skips the partial tail
        // lane block (columnar extension) — the same truncation the row
        // path and the reference evaluator apply in `eval_aggregate_expr`.
        let sum_fault = self.bugs().is_enabled(BugId::DuckdbSumLaneWideningSkipsTail);
        let ev = self.evaluator();
        let mut out_row = Vec::with_capacity(folds.len());
        for fold in &folds {
            let (func, mut values): (AggFunc, Cow<'_, [Value]>) = match fold {
                Fold::Ones(f) => (*f, Cow::Owned(vec![Value::Integer(1); cb.len])),
                Fold::Column(f, i) => (*f, Cow::Borrowed(&cb.cols[*i][..])),
                Fold::CaseMap(f, k, then, els) => match k.eval(&cb.cols, cb.len, &ev) {
                    Some(bitmap) => (
                        *f,
                        Cow::Owned(
                            bitmap
                                .into_iter()
                                .map(|t| if t.is_true() { then.clone() } else { els.clone() })
                                .collect(),
                        ),
                    ),
                    None => return Ok(Err(cb)),
                },
            };
            if sum_fault && func == AggFunc::Sum {
                let keep = columnar_sum_tail_len(values.len());
                match &mut values {
                    Cow::Borrowed(s) => *s = &s[..keep],
                    Cow::Owned(v) => v.truncate(keep),
                }
            }
            out_row.push(eval_aggregate(func, &values, false, self.dialect())?);
        }
        let columns = self.projection_columns(s, &cb.schema);
        Ok(Ok(RowBatch { schema: cb.schema, columns, rows: vec![out_row] }))
    }

    fn op_aggregate_rows(&self, s: &Select, mut batch: RowBatch) -> EngineResult<RowBatch> {
        self.apply_poisoned_columns(s, &mut batch);
        self.cover("exec.group_by");
        let schema = Arc::clone(&batch.schema);
        let ev = self.evaluator();
        // Build groups.  The batch's rows are consumed directly — the
        // reference evaluator's row-at-a-time shape forced a full copy of
        // the input here.
        let mut group_keys: Vec<Vec<Value>> = Vec::new();
        let mut groups: Vec<Vec<Vec<Value>>> = Vec::new();
        let mut input_rows: Vec<Vec<Value>> = std::mem::take(&mut batch.rows);

        // Injected fault: GROUP BY over an inheritance parent merges child
        // rows with parent rows that share the first grouping key
        // (Listing 15).
        if self.bugs().is_enabled(BugId::PostgresInheritanceGroupByMissingRow)
            && !s.group_by.is_empty()
            && s.from.len() == 1
            && !self.db.children_of(&s.from[0]).is_empty()
        {
            let mut seen: Vec<Value> = Vec::new();
            let mut filtered = Vec::new();
            for r in input_rows {
                let key = ev.eval(&s.group_by[0], &schema, &r)?;
                if seen.iter().any(|k| k.same_as(&key)) {
                    continue;
                }
                seen.push(key);
                filtered.push(r);
            }
            input_rows = filtered;
        }

        if s.group_by.is_empty() {
            group_keys.push(Vec::new());
            groups.push(input_rows);
        } else {
            let drop_null_groups = self.bugs().is_enabled(BugId::SqliteGroupByNoCaseDuplicates)
                && s.group_by.iter().any(|g| ev.collation_of(g, &schema) == Collation::NoCase);
            for r in input_rows {
                let mut key = Vec::with_capacity(s.group_by.len());
                for g in &s.group_by {
                    key.push(ev.eval(g, &schema, &r)?);
                }
                // Injected fault: NULL-keyed groups are dropped when grouping
                // on a NOCASE column (§4.4 COLLATE bugs).
                if drop_null_groups && key.iter().any(Value::is_null) {
                    continue;
                }
                match group_keys.iter().position(|k| {
                    k.len() == key.len() && k.iter().zip(key.iter()).all(|(a, b)| a.same_as(b))
                }) {
                    Some(i) => groups[i].push(r),
                    None => {
                        group_keys.push(key);
                        groups.push(vec![r]);
                    }
                }
            }
        }

        let columns = self.projection_columns(s, &schema);
        let mut out_rows = Vec::new();
        for group in &groups {
            // HAVING.
            if let Some(h) = &s.having {
                self.cover("exec.having");
                let hv = self.eval_aggregate_expr(h, &schema, group)?;
                if !self.evaluator().value_to_tribool(&hv)?.is_true() {
                    continue;
                }
            }
            let mut out_row = Vec::new();
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => {
                        if let Some(first) = group.first() {
                            out_row.extend(first.iter().cloned());
                        } else {
                            out_row.extend(std::iter::repeat_n(Value::Null, schema.width()));
                        }
                    }
                    SelectItem::Expr { expr, .. } => {
                        out_row.push(self.eval_aggregate_expr(expr, &schema, group)?);
                    }
                }
            }
            out_rows.push(out_row);
        }
        // A query with aggregates but no GROUP BY always yields one row,
        // even over an empty input.
        if s.group_by.is_empty() && out_rows.is_empty() && s.having.is_none() {
            let mut out_row = Vec::new();
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => {
                        out_row.extend(std::iter::repeat_n(Value::Null, schema.width()));
                    }
                    SelectItem::Expr { expr, .. } => {
                        out_row.push(self.eval_aggregate_expr(expr, &schema, &[])?);
                    }
                }
            }
            out_rows.push(out_row);
        }
        batch.columns = columns;
        batch.rows = out_rows;
        Ok(batch)
    }

    /// `SELECT DISTINCT` deduplication.
    fn op_distinct(&self, s: &Select, mut batch: RowBatch) -> EngineResult<RowBatch> {
        self.cover("exec.distinct");
        // Injected fault: the skip-scan optimisation applied to DISTINCT
        // after ANALYZE dedupes on the first column only (Listing 6).
        let skip_scan = self.bugs().is_enabled(BugId::SqliteSkipScanDistinct)
            && s.from.len() == 1
            && self.analyzed.contains(&s.from[0].to_ascii_lowercase())
            && !self.db.indexes_on(&s.from[0]).is_empty();
        // Injected fault: DISTINCT treats NULL as a duplicate of zero
        // (§4.4 type flexibility).
        let null_zero = self.bugs().is_enabled(BugId::SqliteDistinctNegativeZero);
        let mut out: Vec<Vec<Value>> = Vec::new();
        for row in batch.rows {
            let duplicate = out.iter().any(|existing| {
                if skip_scan {
                    match (existing.first(), row.first()) {
                        (Some(a), Some(b)) => a.same_as(b),
                        _ => existing.is_empty() && row.is_empty(),
                    }
                } else if null_zero {
                    existing.len() == row.len()
                        && existing.iter().zip(row.iter()).all(|(a, b)| {
                            a.same_as(b)
                                || (a.same_as(&Value::Integer(0)) && b.is_null())
                                || (a.is_null() && b.same_as(&Value::Integer(0)))
                        })
                } else {
                    existing.len() == row.len()
                        && existing.iter().zip(row.iter()).all(|(a, b)| a.same_as(b))
                }
            });
            if !duplicate {
                out.push(row);
            }
        }
        batch.rows = out;
        Ok(batch)
    }

    /// `ORDER BY` (ordering never affects the containment oracle, but the
    /// engine still implements it for completeness).
    fn op_sort(&self, s: &Select, mut batch: RowBatch) -> EngineResult<RowBatch> {
        self.cover("exec.order_by");
        batch.rows.sort_by(|a, b| {
            for (i, term) in s.order_by.iter().enumerate() {
                let (av, bv) = match (
                    a.get(i.min(a.len().saturating_sub(1))),
                    b.get(i.min(b.len().saturating_sub(1))),
                ) {
                    (Some(x), Some(y)) => (x, y),
                    _ => continue,
                };
                let coll = term.collation.unwrap_or_default();
                let ord = av.total_cmp(bv, coll);
                let ord = if term.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(batch)
    }

    /// `LIMIT` / `OFFSET` truncation.
    fn op_limit(&self, s: &Select, mut batch: RowBatch) -> EngineResult<RowBatch> {
        self.cover("exec.limit_offset");
        let offset = s.offset.unwrap_or(0) as usize;
        let limit = s.limit.map(|l| l as usize).unwrap_or(usize::MAX);
        batch.rows = batch.rows.into_iter().skip(offset).take(limit).collect();
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;

    fn parse_select(sql: &str) -> Select {
        match lancer_sql::parse_statement(sql).unwrap() {
            lancer_sql::Statement::Select(lancer_sql::ast::stmt::Query::Select(s)) => *s,
            other => panic!("not a plain select: {other:?}"),
        }
    }

    fn op_names(ops: &[Operator<'_>]) -> Vec<&'static str> {
        ops.iter()
            .map(|op| match op {
                Operator::Scan => "scan",
                Operator::Join(_) => "join",
                Operator::IndexProbe => "probe",
                Operator::Filter(_) => "filter",
                Operator::Project => "project",
                Operator::Aggregate => "aggregate",
                Operator::Distinct => "distinct",
                Operator::Sort => "sort",
                Operator::Limit => "limit",
            })
            .collect()
    }

    #[test]
    fn assembly_follows_the_fixed_stage_order() {
        let s = parse_select("SELECT c0 FROM t0");
        assert_eq!(op_names(&assemble(&s)), vec!["scan", "probe", "project"]);
        let s = parse_select(
            "SELECT DISTINCT c0, COUNT(*) FROM t0 WHERE c0 = 1 GROUP BY c0 ORDER BY c0 LIMIT 2",
        );
        assert_eq!(
            op_names(&assemble(&s)),
            vec!["scan", "probe", "filter", "aggregate", "distinct", "sort", "limit"]
        );
        let s = parse_select("SELECT * FROM t0, t1 LEFT JOIN t2 ON t1.c0 = t2.c0 WHERE t0.c0 = 1");
        assert_eq!(op_names(&assemble(&s)), vec!["scan", "join", "filter", "project"]);
    }

    #[test]
    fn executor_probe_choice_agrees_with_the_plan_tree() {
        // The executor's probe index and the plan's SEARCH index come from
        // the same `probe_candidates` catalog fact, so for probes the
        // planner considers sound they must name the same index.
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_script(
            "CREATE TABLE t0(c0 INT, c1 INT);
             CREATE INDEX i0 ON t0(c0);
             INSERT INTO t0(c0, c1) VALUES (1, 10), (2, 20);",
        )
        .unwrap();
        let explain = e.execute_sql("EXPLAIN SELECT c1 FROM t0 WHERE c0 = 1").unwrap();
        let plan_line = explain.rows[0][0].to_string();
        assert!(plan_line.contains("USING INDEX i0"), "{plan_line}");
        let candidates = probe_candidates(e.database(), "t0", "c0");
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].def.name, "i0");
        // And the probe is result-preserving on the fault-free engine.
        let r = e.execute_sql("SELECT c1 FROM t0 WHERE c0 = 1").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Integer(10)]]);
    }

    #[test]
    fn executor_keeps_the_collation_oblivious_fast_path() {
        // The planner refuses a collation-mismatched index for text probes
        // (the sound choice); the executor deliberately probes it anyway —
        // the documented §4.4 divergence.  Both read the same candidates.
        use lancer_sql::ast::stmt::{CreateIndex, IndexedColumn, Statement};
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0 TEXT)").unwrap();
        let mut col = IndexedColumn::column("c0");
        col.collation = Some(Collation::Rtrim);
        e.execute(&Statement::CreateIndex(CreateIndex {
            name: "i0".into(),
            table: "t0".into(),
            columns: vec![col],
            unique: false,
            where_clause: None,
            if_not_exists: false,
        }))
        .unwrap();
        e.execute_sql("INSERT INTO t0(c0) VALUES ('a'), ('a  ')").unwrap();
        let plan = e.execute_sql("EXPLAIN SELECT * FROM t0 WHERE c0 = 'a'").unwrap();
        assert_eq!(plan.rows[0][0].to_string(), "SCAN t0 WITH FILTER");
        assert_eq!(probe_candidates(e.database(), "t0", "c0").len(), 1);
        // The executor still probes i0 (RTRIM equality matches both rows)
        // and the residual WHERE keeps only the exact match.
        let r = e.execute_sql("SELECT * FROM t0 WHERE c0 = 'a'").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn columnar_dialect_scans_columnar_and_matches_row_semantics() {
        let setup = "CREATE TABLE t0(c0 INTEGER, c1 TEXT);
             INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b'), (3, 'c'), (NULL, 'd');";
        let mut cols = Engine::new(Dialect::Duckdb);
        cols.execute_script(setup).unwrap();
        let plan = cols.execute_sql("EXPLAIN SELECT c0 FROM t0 WHERE c0 > 1").unwrap();
        assert!(plan.rows[0][0].to_string().contains("COLUMNAR SCAN t0"), "{plan:?}");
        // Same query, kernel filter + columnar projection vs the row path
        // (Postgres shares strict typing, so values line up exactly).
        let mut rows = Engine::new(Dialect::Postgres);
        rows.execute_script(setup).unwrap();
        for q in [
            "SELECT c0 FROM t0 WHERE c0 > 1",
            "SELECT c1, c0 FROM t0 WHERE c0 IS NOT NULL",
            "SELECT * FROM t0 WHERE c1 = 'b' OR c0 < 2",
            "SELECT COUNT(*), SUM(c0), MIN(c0), MAX(c1) FROM t0 WHERE c0 >= 1",
        ] {
            assert_eq!(
                cols.execute_sql(q).unwrap().rows,
                rows.execute_sql(q).unwrap().rows,
                "layouts diverged on {q}"
            );
        }
    }

    #[test]
    fn selection_bitmap_tail_fault_drops_the_last_tail_row_in_both_layouts() {
        use crate::bugs::BugProfile;
        let mut insert = String::from("INSERT INTO t0(c0) VALUES (1)");
        for i in 2..=9 {
            insert.push_str(&format!(", ({i})"));
        }
        let setup = format!("CREATE TABLE t0(c0 INTEGER); {insert};");
        let fault = BugProfile::with(&[BugId::DuckdbSelectionBitmapTailOffByOne]);
        // Columnar layout: the kernel's bitmap loses the last kept row of
        // the partial tail lane group (rows 8.. of 9).
        let mut cols = Engine::with_bugs(Dialect::Duckdb, fault.clone());
        cols.execute_script(&setup).unwrap();
        let got = cols.execute_sql("SELECT c0 FROM t0 WHERE c0 >= 1").unwrap();
        assert_eq!(got.rows.len(), 8, "row with c0 = 9 should be dropped");
        assert!(!got.rows.iter().any(|r| r[0] == Value::Integer(9)));
        // Row layout applies the identical off-by-one.
        let mut rows = Engine::with_bugs(Dialect::Postgres, fault);
        rows.execute_script(&setup).unwrap();
        let row_got = rows.execute_sql("SELECT c0 FROM t0 WHERE c0 >= 1").unwrap();
        assert_eq!(got.rows, row_got.rows);
        // A lane-multiple input has no partial tail group: no row lost.
        let mut aligned = Engine::with_bugs(
            Dialect::Duckdb,
            BugProfile::with(&[BugId::DuckdbSelectionBitmapTailOffByOne]),
        );
        aligned.execute_script("CREATE TABLE t0(c0 INTEGER);").unwrap();
        aligned
            .execute_sql("INSERT INTO t0(c0) VALUES (1), (2), (3), (4), (5), (6), (7), (8)")
            .unwrap();
        assert_eq!(aligned.execute_sql("SELECT c0 FROM t0 WHERE c0 >= 1").unwrap().rows.len(), 8);
    }

    #[test]
    fn analyze_checksum_fault_rejects_partial_row_groups() {
        use crate::bugs::BugProfile;
        let fault = BugProfile::with(&[BugId::DuckdbAnalyzeRowGroupChecksum]);
        let mut e = Engine::with_bugs(Dialect::Duckdb, fault);
        e.execute_script(
            "CREATE TABLE t0(c0 INTEGER);
             INSERT INTO t0(c0) VALUES (1), (2), (3), (4), (5), (6), (7), (8);",
        )
        .unwrap();
        // Eight rows fill the row group exactly: ANALYZE passes.
        e.execute_sql("ANALYZE t0").unwrap();
        // A ninth row leaves a partial tail group: checksum "mismatch".
        e.execute_sql("INSERT INTO t0(c0) VALUES (9)").unwrap();
        let err = e.execute_sql("ANALYZE t0").unwrap_err();
        assert!(err.message.contains("row group checksum mismatch"), "{}", err.message);
    }

    #[test]
    fn sum_lane_fault_skips_the_partial_tail_block_in_both_layouts() {
        use crate::bugs::BugProfile;
        let setup = "CREATE TABLE t0(c0 INTEGER);
             INSERT INTO t0(c0) VALUES (1), (2), (3), (4), (5), (6), (7), (8), (9), (10);";
        let fault = BugProfile::with(&[BugId::DuckdbSumLaneWideningSkipsTail]);
        let mut cols = Engine::with_bugs(Dialect::Duckdb, fault.clone());
        cols.execute_script(setup).unwrap();
        // Only the first 8 of 10 values are folded: 36 instead of 55.
        let got = cols.execute_sql("SELECT SUM(c0) FROM t0").unwrap();
        assert_eq!(got.rows, vec![vec![Value::Integer(36)]]);
        // The row path undercounts identically (shared eval_aggregate_expr
        // hook), and COUNT is unaffected.
        let mut rows = Engine::with_bugs(Dialect::Postgres, fault);
        rows.execute_script(setup).unwrap();
        assert_eq!(rows.execute_sql("SELECT SUM(c0) FROM t0").unwrap().rows, got.rows);
        assert_eq!(
            cols.execute_sql("SELECT COUNT(c0) FROM t0").unwrap().rows,
            vec![vec![Value::Integer(10)]]
        );
    }

    #[test]
    fn wildcard_projection_is_identity_on_the_batch() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_script("CREATE TABLE t0(c0 INT); INSERT INTO t0(c0) VALUES (1), (2);").unwrap();
        let r = e.execute_sql("SELECT * FROM t0").unwrap();
        assert_eq!(r.columns, vec!["c0"]);
        assert_eq!(r.rows, vec![vec![Value::Integer(1)], vec![Value::Integer(2)]]);
    }
}
