//! DDL execution: `CREATE TABLE` / `CREATE INDEX` / `CREATE VIEW` / `DROP` /
//! `ALTER TABLE`.

use lancer_sql::ast::stmt::{AlterTable, CreateIndex, CreateTable, TableEngine};
use lancer_sql::ast::{Expr, Select};
use lancer_sql::value::Value;
use lancer_storage::index::{Index, IndexDef};
use lancer_storage::schema::{ColumnMeta, TableSchema};
use lancer_storage::{StorageError, View};

use crate::bugs::BugId;
use crate::error::{EngineError, EngineResult};
use crate::eval::{RowSchema, SourceSchema};
use crate::exec::{Engine, QueryResult};

impl Engine {
    pub(crate) fn exec_create_table(&mut self, ct: &CreateTable) -> EngineResult<QueryResult> {
        self.cover("stmt.create_table");
        if ct.if_not_exists && self.db.table(&ct.name).is_some() {
            return Ok(QueryResult::empty());
        }
        // Dialect validation.
        for col in &ct.columns {
            match col.type_name {
                None if !self.dialect.allows_untyped_columns() => {
                    return Err(EngineError::semantic(format!(
                        "column {} must have a data type in this DBMS",
                        col.name
                    )));
                }
                Some(t) if !self.dialect.supports_type(t) => {
                    return Err(EngineError::semantic(format!(
                        "type {t} is not supported by this DBMS"
                    )));
                }
                _ => {}
            }
            if col.collation().is_some() && !self.dialect.has_collations() {
                return Err(EngineError::semantic("COLLATE is not supported by this DBMS"));
            }
        }
        if ct.without_rowid && !self.dialect.has_without_rowid() {
            return Err(EngineError::semantic("WITHOUT ROWID is not supported by this DBMS"));
        }
        if ct.engine != TableEngine::Default && !self.dialect.has_table_engines() {
            return Err(EngineError::semantic("storage engines are not supported by this DBMS"));
        }
        if ct.inherits.is_some() && !self.dialect.has_inheritance() {
            return Err(EngineError::semantic("INHERITS is not supported by this DBMS"));
        }
        if let Some(parent) = &ct.inherits {
            if self.db.table(parent).is_none() {
                return Err(StorageError::NoSuchTable(parent.clone()).into());
            }
        }
        let schema = TableSchema::from_create(ct)?;
        if schema.without_rowid && !schema.has_primary_key() {
            return Err(EngineError::semantic(format!(
                "PRIMARY KEY missing on table {}",
                schema.name
            )));
        }
        if schema.engine == TableEngine::Memory {
            self.cover("exec.memory_engine");
        }
        if schema.without_rowid {
            self.cover("exec.without_rowid");
        }
        let name = schema.name.clone();
        let pk: Vec<String> = schema.primary_key.clone();
        let uniques: Vec<Vec<String>> = schema
            .columns
            .iter()
            .filter(|c| c.unique)
            .map(|c| vec![c.name.clone()])
            .chain(schema.unique_constraints.clone())
            .collect();
        self.db.create_table(schema)?;
        // Implicit constraint indexes (this is how the real DBMS enforce
        // PRIMARY KEY / UNIQUE, and it is the surface several injected
        // faults corrupt).
        if !pk.is_empty() {
            self.cover("constraint.primary_key");
            self.create_implicit_index(&name, &format!("{name}_pk"), &pk)?;
        }
        for (i, cols) in uniques.iter().enumerate() {
            self.cover("constraint.unique");
            self.create_implicit_index(&name, &format!("{name}_unique_{i}"), cols)?;
        }
        Ok(QueryResult::empty())
    }

    fn create_implicit_index(
        &mut self,
        table: &str,
        index_name: &str,
        columns: &[String],
    ) -> EngineResult<()> {
        let schema = self.db.require_table(table)?.schema.clone();
        let mut exprs = Vec::new();
        let mut collations = Vec::new();
        for c in columns {
            let meta = schema.column(c).ok_or_else(|| StorageError::NoSuchColumn(c.clone()))?;
            exprs.push(Expr::col(meta.name.clone()));
            collations.push(meta.collation);
        }
        let def = IndexDef {
            name: index_name.to_owned(),
            table: table.to_owned(),
            exprs,
            collations,
            unique: true,
            where_clause: None,
            implicit: true,
        };
        let index = self.build_index(def)?;
        self.db.create_index(index)?;
        Ok(())
    }

    /// Computes the key of `row_values` for an index definition; returns
    /// `None` when a partial-index predicate excludes the row.
    pub(crate) fn index_key_for_row(
        &self,
        def: &IndexDef,
        table_schema: &TableSchema,
        row_values: &[Value],
    ) -> EngineResult<Option<Vec<Value>>> {
        let schema = RowSchema::single(SourceSchema {
            name: table_schema.name.clone(),
            columns: table_schema.columns.clone(),
        });
        let ev = self.evaluator();
        if let Some(pred) = &def.where_clause {
            let t = ev.eval_predicate(pred, &schema, row_values)?;
            if !t.is_true() {
                return Ok(None);
            }
        }
        let mut key = Vec::with_capacity(def.exprs.len());
        for e in &def.exprs {
            key.push(ev.eval(e, &schema, row_values)?);
        }
        Ok(Some(key))
    }

    /// Builds an index over the current contents of its table, enforcing
    /// uniqueness.
    pub(crate) fn build_index(&self, def: IndexDef) -> EngineResult<Index> {
        let table = self.db.require_table(&def.table)?;
        let schema = table.schema.clone();
        let mut index = Index::new(def);
        for row in table.rows() {
            if let Some(key) = self.index_key_for_row(&index.def, &schema, &row.values)? {
                index.insert(key, row.id)?;
            }
        }
        Ok(index)
    }

    pub(crate) fn exec_create_index(&mut self, ci: &CreateIndex) -> EngineResult<QueryResult> {
        self.cover("stmt.create_index");
        if ci.if_not_exists && self.db.index(&ci.name).is_some() {
            return Ok(QueryResult::empty());
        }
        if ci.where_clause.is_some() && !self.dialect.has_partial_indexes() {
            return Err(EngineError::semantic("partial indexes are not supported by this DBMS"));
        }
        let table = self.db.require_table(&ci.table)?;
        let table_schema = table.schema.clone();
        // Validate column references in index expressions; the SQLite-like
        // dialect resolves unknown plain identifiers to strings, matching its
        // double-quote leniency (Listing 8).
        let mut exprs = Vec::new();
        let mut collations = Vec::new();
        let row_schema = RowSchema::single(SourceSchema {
            name: table_schema.name.clone(),
            columns: table_schema.columns.clone(),
        });
        let ev = self.evaluator();
        for col in &ci.columns {
            for cref in col.expr.column_refs() {
                if row_schema.resolve(cref).is_none()
                    && self.dialect() != crate::dialect::Dialect::Sqlite
                {
                    return Err(StorageError::NoSuchColumn(cref.column.clone()).into());
                }
            }
            let coll = col.collation.unwrap_or_else(|| ev.collation_of(&col.expr, &row_schema));
            exprs.push(col.expr.clone());
            collations.push(coll);
        }
        if let Some(pred) = &ci.where_clause {
            for cref in pred.column_refs() {
                if row_schema.resolve(cref).is_none()
                    && self.dialect() != crate::dialect::Dialect::Sqlite
                {
                    return Err(StorageError::NoSuchColumn(cref.column.clone()).into());
                }
            }
        }
        let def = IndexDef {
            name: ci.name.clone(),
            table: ci.table.clone(),
            exprs,
            collations,
            unique: ci.unique,
            where_clause: ci.where_clause.clone(),
            implicit: false,
        };
        let index = self.build_index(def)?;
        self.db.create_index(index)?;
        Ok(QueryResult::empty())
    }

    pub(crate) fn exec_create_view(
        &mut self,
        name: &str,
        query: &Select,
    ) -> EngineResult<QueryResult> {
        self.cover("stmt.create_view");
        // Validate the defining query by executing it once.
        self.exec_select(query)?;
        self.db.create_view(View { name: name.to_owned(), query: query.clone() })?;
        Ok(QueryResult::empty())
    }

    pub(crate) fn exec_drop_table(
        &mut self,
        name: &str,
        if_exists: bool,
    ) -> EngineResult<QueryResult> {
        self.cover("stmt.drop_table");
        if if_exists && self.db.table(name).is_none() {
            return Ok(QueryResult::empty());
        }
        self.db.drop_table(name)?;
        self.analyzed.remove(&name.to_ascii_lowercase());
        self.statistics.remove(&name.to_ascii_lowercase());
        self.poisoned_columns.retain(|(t, _, _)| !t.eq_ignore_ascii_case(name));
        Ok(QueryResult::empty())
    }

    pub(crate) fn exec_drop_index(
        &mut self,
        name: &str,
        if_exists: bool,
    ) -> EngineResult<QueryResult> {
        self.cover("stmt.drop_index");
        if if_exists && self.db.index(name).is_none() {
            return Ok(QueryResult::empty());
        }
        self.db.drop_index(name)?;
        Ok(QueryResult::empty())
    }

    pub(crate) fn exec_drop_view(
        &mut self,
        name: &str,
        if_exists: bool,
    ) -> EngineResult<QueryResult> {
        self.cover("stmt.drop_view");
        if if_exists && self.db.view(name).is_none() {
            return Ok(QueryResult::empty());
        }
        self.db.drop_view(name)?;
        Ok(QueryResult::empty())
    }

    pub(crate) fn exec_alter(&mut self, alter: &AlterTable) -> EngineResult<QueryResult> {
        match alter {
            AlterTable::RenameTable { table, new_name } => {
                self.cover("stmt.alter_rename_table");
                self.db.rename_table(table, new_name)?;
                Ok(QueryResult::empty())
            }
            AlterTable::RenameColumn { table, old, new } => {
                self.cover("stmt.alter_rename_column");
                {
                    let t = self.db.require_table_mut(table)?;
                    t.rename_column(old, new)?;
                }
                // Keep index definitions in sync with the new column name —
                // unless the corresponding faults are enabled.
                let break_index = self.bugs().is_enabled(BugId::SqliteAlterRenameBreaksIndex);
                let poison = self.bugs().is_enabled(BugId::SqliteDoubleQuotedStringIndex);
                let mut poisoned = false;
                for idx in self.db.indexes_on_mut(table) {
                    let references_old = idx
                        .def
                        .exprs
                        .iter()
                        .chain(idx.def.where_clause.iter())
                        .flat_map(Expr::column_refs)
                        .any(|c| c.column.eq_ignore_ascii_case(old));
                    if !references_old {
                        continue;
                    }
                    if break_index {
                        idx.corrupt(format!("index references renamed column {old}"));
                    } else if poison && !idx.def.implicit {
                        poisoned = true;
                    } else {
                        for e in &mut idx.def.exprs {
                            rename_column_in_expr(e, old, new);
                        }
                        if let Some(w) = &mut idx.def.where_clause {
                            rename_column_in_expr(w, old, new);
                        }
                    }
                }
                if poisoned {
                    // Listing 8: the index keeps treating the old identifier
                    // as a string literal; later scans project that literal
                    // instead of the column value.
                    self.poisoned_columns.push((table.clone(), new.clone(), old.clone()));
                }
                Ok(QueryResult::empty())
            }
            AlterTable::AddColumn { table, def } => {
                self.cover("stmt.alter_add_column");
                if let Some(t) = def.type_name {
                    if !self.dialect.supports_type(t) {
                        return Err(EngineError::semantic(format!(
                            "type {t} is not supported by this DBMS"
                        )));
                    }
                } else if !self.dialect.allows_untyped_columns() {
                    return Err(EngineError::semantic(format!(
                        "column {} must have a data type in this DBMS",
                        def.name
                    )));
                }
                let meta = ColumnMeta::from_def(def);
                let is_empty = self.db.require_table(table)?.is_empty();
                if meta.not_null && meta.default.is_none() && !is_empty {
                    return Err(EngineError::constraint(format!(
                        "cannot add a NOT NULL column with default value NULL: {}",
                        def.name
                    )));
                }
                self.cover("constraint.default");
                let mut fill = meta.default.clone().unwrap_or(Value::Null);
                // Injected fault: the DEFAULT fill is skipped for NOT NULL
                // columns, leaving NULLs that REINDEX later reports.
                if meta.not_null && self.bugs().is_enabled(BugId::SqliteNotNullDefaultAltered) {
                    fill = Value::Null;
                }
                let t = self.db.require_table_mut(table)?;
                t.add_column(meta, fill)?;
                Ok(QueryResult::empty())
            }
        }
    }
}

/// Rewrites column references named `old` to `new` inside an expression.
fn rename_column_in_expr(expr: &mut Expr, old: &str, new: &str) {
    fn walk(e: &mut Expr, old: &str, new: &str) {
        if let Expr::Column(c) = e {
            if c.column.eq_ignore_ascii_case(old) {
                c.column = new.to_owned();
            }
            return;
        }
        match e {
            Expr::Unary { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Collate { expr, .. } => walk(expr, old, new),
            Expr::Binary { left, right, .. } => {
                walk(left, old, new);
                walk(right, old, new);
            }
            Expr::Like { expr, pattern, .. } => {
                walk(expr, old, new);
                walk(pattern, old, new);
            }
            Expr::Between { expr, low, high, .. } => {
                walk(expr, old, new);
                walk(low, old, new);
                walk(high, old, new);
            }
            Expr::InList { expr, list, .. } => {
                walk(expr, old, new);
                for i in list {
                    walk(i, old, new);
                }
            }
            Expr::Case { operand, branches, else_expr } => {
                if let Some(o) = operand {
                    walk(o, old, new);
                }
                for (w, t) in branches {
                    walk(w, old, new);
                    walk(t, old, new);
                }
                if let Some(el) = else_expr {
                    walk(el, old, new);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    walk(a, old, new);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    walk(a, old, new);
                }
            }
            Expr::Literal(_) | Expr::Column(_) => {}
        }
    }
    walk(expr, old, new);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;

    #[test]
    fn dialect_gates_on_create_table() {
        let mut sqlite = Engine::new(Dialect::Sqlite);
        sqlite.execute_sql("CREATE TABLE t0(c0)").unwrap();
        let mut mysql = Engine::new(Dialect::Mysql);
        assert!(mysql.execute_sql("CREATE TABLE t0(c0)").is_err(), "MySQL requires types");
        mysql.execute_sql("CREATE TABLE t0(c0 INT) ENGINE = MEMORY").unwrap();
        assert!(sqlite.execute_sql("CREATE TABLE t1(c0 INT) ENGINE = MEMORY").is_err());
        let mut pg = Engine::new(Dialect::Postgres);
        pg.execute_sql("CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT)").unwrap();
        pg.execute_sql("CREATE TABLE t1(c0 INT) INHERITS (t0)").unwrap();
        assert!(sqlite.execute_sql("CREATE TABLE t2(c0 INT) INHERITS (t0)").is_err());
        assert!(pg.execute_sql("CREATE TABLE t2(c0 TEXT) WITHOUT ROWID").is_err());
    }

    #[test]
    fn without_rowid_requires_primary_key() {
        let mut e = Engine::new(Dialect::Sqlite);
        assert!(e.execute_sql("CREATE TABLE t0(c0) WITHOUT ROWID").is_err());
        e.execute_sql("CREATE TABLE t0(c0 TEXT PRIMARY KEY) WITHOUT ROWID").unwrap();
    }

    #[test]
    fn implicit_indexes_enforce_primary_key() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0 INT PRIMARY KEY)").unwrap();
        assert_eq!(e.database().indexes_on("t0").len(), 1);
        e.execute_sql("INSERT INTO t0(c0) VALUES (1)").unwrap();
        let err = e.execute_sql("INSERT INTO t0(c0) VALUES (1)").unwrap_err();
        assert!(err.message.contains("UNIQUE constraint failed"), "{}", err.message);
    }

    #[test]
    fn create_index_builds_over_existing_rows_and_checks_unique() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0)").unwrap();
        e.execute_sql("INSERT INTO t0(c0) VALUES (1), (1)").unwrap();
        assert!(e.execute_sql("CREATE UNIQUE INDEX i0 ON t0(c0)").is_err());
        e.execute_sql("CREATE INDEX i1 ON t0(c0)").unwrap();
        assert_eq!(e.database().index("i1").unwrap().len(), 2);
    }

    #[test]
    fn partial_index_only_contains_matching_rows() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0)").unwrap();
        e.execute_sql("INSERT INTO t0(c0) VALUES (0), (1), (NULL)").unwrap();
        e.execute_sql("CREATE INDEX i0 ON t0(c0) WHERE c0 NOT NULL").unwrap();
        assert_eq!(e.database().index("i0").unwrap().len(), 2);
        let mut mysql = Engine::new(Dialect::Mysql);
        mysql.execute_sql("CREATE TABLE t0(c0 INT)").unwrap();
        assert!(mysql.execute_sql("CREATE INDEX i0 ON t0(c0) WHERE c0 NOT NULL").is_err());
    }

    #[test]
    fn alter_table_variants() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0)").unwrap();
        e.execute_sql("INSERT INTO t0(c0) VALUES (1)").unwrap();
        e.execute_sql("CREATE INDEX i0 ON t0(c0)").unwrap();
        e.execute_sql("ALTER TABLE t0 RENAME COLUMN c0 TO c9").unwrap();
        // Index expression follows the rename when no fault is enabled.
        let idx = e.database().index("i0").unwrap();
        assert_eq!(idx.def.exprs[0], Expr::col("c9"));
        e.execute_sql("ALTER TABLE t0 ADD COLUMN c1 TEXT DEFAULT 'x'").unwrap();
        let row = e.execute_sql("SELECT * FROM t0").unwrap();
        assert_eq!(row.rows[0][1], Value::Text("x".into()));
        e.execute_sql("ALTER TABLE t0 RENAME TO t9").unwrap();
        assert!(e.database().table("t9").is_some());
        assert!(e.execute_sql("ALTER TABLE t9 ADD COLUMN c2 TEXT NOT NULL").is_err());
    }

    #[test]
    fn views_validate_their_query() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0)").unwrap();
        assert!(e.execute_sql("CREATE VIEW v0 AS SELECT * FROM missing").is_err());
        e.execute_sql("CREATE VIEW v0 AS SELECT c0 FROM t0").unwrap();
        assert!(e.execute_sql("CREATE VIEW v0 AS SELECT c0 FROM t0").is_err());
        e.execute_sql("DROP VIEW v0").unwrap();
    }

    #[test]
    fn drop_if_exists_is_silent() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("DROP TABLE IF EXISTS nope").unwrap();
        assert!(e.execute_sql("DROP TABLE nope").is_err());
        e.execute_sql("DROP INDEX IF EXISTS nope").unwrap();
        e.execute_sql("DROP VIEW IF EXISTS nope").unwrap();
    }
}
