//! The retained straight-line reference evaluator for `SELECT`.
//!
//! This is the pre-pipeline, row-at-a-time `exec_select` kept verbatim
//! (modulo the shared leaf helpers in `exec::query`) as an executable
//! specification of the batched operator pipeline in `exec::pipeline`.
//! The differential property suite (`tests/pipeline_differential.rs`)
//! executes randomly generated queries through both and requires
//! identical results — rows, order, errors and all — with faults enabled
//! *and* disabled, so a pipeline regression is caught at the query that
//! exposes it rather than as a drifted campaign report.
//!
//! The module is deliberately self-recursive: views and compound
//! operands evaluated from here go through the reference path, never the
//! pipeline, so the two implementations stay fully independent above the
//! expression-evaluator layer.

use lancer_sql::ast::expr::{BinaryOp, Expr, TypeName};
use lancer_sql::ast::stmt::{CompoundOp, JoinKind, Query, Select, SelectItem, TableEngine};
use lancer_sql::collation::Collation;
use lancer_sql::value::Value;
use lancer_storage::schema::ColumnMeta;

use crate::bugs::BugId;
use crate::error::{EngineError, EngineResult};
use crate::eval::{RowSchema, SourceSchema};
use crate::exec::query::{
    concat_row, contains, cross_product, expr_references_column, find_is_not_literal_column,
    rewrite_like_int_affinity, selection_tail_victim, SourceData,
};
use crate::exec::{Engine, QueryResult};

impl Engine {
    /// Executes a query through the retained straight-line reference
    /// evaluator instead of the batched pipeline.  Exposed (hidden) for
    /// the differential test suites; production paths always use the
    /// pipeline.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Engine::execute`] would report for the same
    /// query — that equivalence is the point.
    #[doc(hidden)]
    pub fn execute_query_reference(&self, q: &Query) -> EngineResult<QueryResult> {
        self.exec_query_reference(q)
    }

    fn exec_query_reference(&self, q: &Query) -> EngineResult<QueryResult> {
        match q {
            Query::Select(s) => self.exec_select_reference(s),
            Query::Compound { left, op, right } => {
                let l = self.exec_query_reference(left)?;
                let r = self.exec_query_reference(right)?;
                if !l.rows.is_empty() && !r.rows.is_empty() && l.rows[0].len() != r.rows[0].len() {
                    return Err(EngineError::semantic(
                        "SELECTs to the left and right of a compound operator do not have the same number of result columns",
                    ));
                }
                let columns = l.columns;
                let rows = match op {
                    CompoundOp::Intersect => {
                        self.cover("exec.compound_intersect");
                        let mut out: Vec<Vec<Value>> = Vec::new();
                        for row in l.rows {
                            if r.contains_row(&row) && !contains(&out, &row) {
                                out.push(row);
                            }
                        }
                        out
                    }
                    CompoundOp::Union => {
                        self.cover("exec.compound_union");
                        let mut out: Vec<Vec<Value>> = Vec::new();
                        for row in l.rows.into_iter().chain(r.rows) {
                            if !contains(&out, &row) {
                                out.push(row);
                            }
                        }
                        out
                    }
                    CompoundOp::UnionAll => {
                        self.cover("exec.compound_union");
                        let mut out = l.rows;
                        out.extend(r.rows);
                        out
                    }
                    CompoundOp::Except => {
                        self.cover("exec.compound_except");
                        let mut out: Vec<Vec<Value>> = Vec::new();
                        for row in l.rows {
                            if !r.contains_row(&row) && !contains(&out, &row) {
                                out.push(row);
                            }
                        }
                        out
                    }
                };
                Ok(QueryResult { columns, rows, affected: 0 })
            }
        }
    }

    /// Loads the rows of one `FROM` source, expanding views through the
    /// reference evaluator (never the pipeline).
    fn load_source_reference(&self, name: &str) -> EngineResult<SourceData> {
        if let Some(view) = self.db.view(name).cloned() {
            self.cover("exec.view_expansion");
            let result = self.exec_select_reference(&view.query)?;
            let columns = result
                .columns
                .iter()
                .map(|c| ColumnMeta {
                    name: c.clone(),
                    type_name: None,
                    collation: Collation::Binary,
                    not_null: false,
                    primary_key: false,
                    unique: false,
                    default: None,
                    check: None,
                })
                .collect();
            return Ok(SourceData {
                schema: SourceSchema { name: name.to_owned(), columns },
                rows: result.rows,
                memory_engine: false,
            });
        }
        self.cover("exec.table_scan");
        let table = self.db.require_table(name)?;
        let schema = table.schema.clone();
        let mut rows: Vec<Vec<Value>> = table.rows().map(|r| r.values).collect();

        // SQLite WITHOUT ROWID tables are physically the primary-key index;
        // the injected NOCASE dedup fault hides case-differing keys
        // (Listing 4).
        if schema.without_rowid
            && self.bugs().is_enabled(BugId::SqliteNoCaseWithoutRowidDedup)
            && self.table_has_nocase(&schema.name)
        {
            if let Some(pk_col) = schema.primary_key.first() {
                if let Some(pk_idx) = schema.column_index(pk_col) {
                    let mut seen: Vec<String> = Vec::new();
                    rows.retain(|r| match &r[pk_idx] {
                        Value::Text(t) => {
                            let key = t.to_ascii_lowercase();
                            if seen.contains(&key) {
                                false
                            } else {
                                seen.push(key);
                                true
                            }
                        }
                        _ => true,
                    });
                }
            }
        }

        // PostgreSQL table inheritance: scanning the parent includes child
        // rows projected onto the parent's columns.
        let children = self.db.children_of(name);
        if !children.is_empty() && self.dialect() == crate::dialect::Dialect::Postgres {
            self.cover("exec.inheritance_expansion");
            let skip_children = self.bugs().is_enabled(BugId::PostgresSerialNotNullBypass)
                && schema.columns.iter().any(|c| c.type_name == Some(TypeName::Serial));
            if !skip_children {
                for child in children {
                    let child_table = self.db.require_table(&child)?;
                    let child_schema = child_table.schema.clone();
                    for row in child_table.rows() {
                        let projected: Vec<Value> = schema
                            .columns
                            .iter()
                            .map(|pc| {
                                child_schema
                                    .column_index(&pc.name)
                                    .map(|ci| row.values[ci].clone())
                                    .unwrap_or(Value::Null)
                            })
                            .collect();
                        rows.push(projected);
                    }
                }
            }
        }

        Ok(SourceData {
            schema: SourceSchema { name: schema.name.clone(), columns: schema.columns.clone() },
            rows,
            memory_engine: schema.engine == TableEngine::Memory,
        })
    }

    pub(crate) fn exec_select_reference(&self, s: &Select) -> EngineResult<QueryResult> {
        self.select_preflight(s)?;

        // Load sources and build the joined row set.
        let mut sources: Vec<SourceData> = Vec::new();
        for name in &s.from {
            sources.push(self.load_source_reference(name)?);
        }
        let multi_table = s.from.len() + s.joins.len() > 1;
        // Injected fault: joins with MEMORY-engine tables drop rows whose
        // key needs an implicit cast (negative integers) — Listing 11.
        if multi_table
            && s.where_clause.is_some()
            && self.bugs().is_enabled(BugId::MysqlMemoryEngineJoinMiss)
        {
            for src in &mut sources {
                if src.memory_engine {
                    src.rows
                        .retain(|r| !r.iter().any(|v| matches!(v, Value::Integer(i) if *i < 0)));
                }
            }
        }

        let mut schema = RowSchema::default();
        let multi_source = sources.len() > 1;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (i, src) in sources.into_iter().enumerate() {
            if multi_source {
                self.cover("exec.cross_join");
            }
            schema.sources.push(src.schema);
            if i == 0 {
                rows = src.rows;
            } else {
                rows = cross_product(&rows, &src.rows);
            }
        }
        if schema.sources.is_empty() {
            rows = vec![Vec::new()];
        }
        // Explicit joins.
        for join in &s.joins {
            let right = self.load_source_reference(&join.table)?;
            let right_width = right.schema.columns.len();
            schema.sources.push(right.schema.clone());
            match join.kind {
                JoinKind::Cross => self.cover("exec.cross_join"),
                JoinKind::Inner => self.cover("exec.inner_join"),
                JoinKind::Left => self.cover("exec.left_join"),
            }
            let ev = self.evaluator();
            let mut next: Vec<Vec<Value>> = Vec::new();
            match join.kind {
                JoinKind::Cross => {
                    next = cross_product(&rows, &right.rows);
                }
                JoinKind::Inner => {
                    for l in &rows {
                        for r in &right.rows {
                            let combined = concat_row(l, r);
                            let keep = match &join.on {
                                Some(on) => ev.eval_predicate(on, &schema, &combined)?.is_true(),
                                None => true,
                            };
                            if keep {
                                next.push(combined);
                            }
                        }
                    }
                }
                JoinKind::Left => {
                    for l in &rows {
                        let mut matched = false;
                        for r in &right.rows {
                            let combined = concat_row(l, r);
                            let keep = match &join.on {
                                Some(on) => ev.eval_predicate(on, &schema, &combined)?.is_true(),
                                None => true,
                            };
                            if keep {
                                matched = true;
                                next.push(combined);
                            }
                        }
                        if !matched {
                            let mut combined = Vec::with_capacity(l.len() + right_width);
                            combined.extend_from_slice(l);
                            combined.extend(std::iter::repeat_n(Value::Null, right_width));
                            next.push(combined);
                        }
                    }
                }
            }
            rows = next;
        }

        // Injected fault: a partial index whose predicate is `col NOT NULL`
        // is (incorrectly) used for `col IS NOT <literal>` conditions,
        // dropping NULL pivot rows (Listing 1).
        if self.bugs().is_enabled(BugId::SqlitePartialIndexImpliesNotNull) && s.from.len() == 1 {
            if let Some(w) = &s.where_clause {
                if let Some(col) = find_is_not_literal_column(w) {
                    let table = &s.from[0];
                    let has_partial = self.db.indexes_on(table).iter().any(|i| {
                        i.def.where_clause.as_ref().is_some_and(|p| {
                            matches!(p, Expr::IsNull { negated: true, expr }
                                if expr_references_column(expr, &col))
                        })
                    });
                    if has_partial {
                        self.cover("exec.partial_index");
                        if let Some((ci, _)) =
                            schema.resolve(&lancer_sql::ast::expr::ColumnRef::unqualified(&col))
                        {
                            rows.retain(|r| !r[ci].is_null());
                        }
                    }
                }
            }
        }

        // Index fast path for single-table equality predicates.
        if s.from.len() == 1 && s.joins.is_empty() {
            if let Some(w) = &s.where_clause {
                if let Some((col, lit)) = reference_equality_probe(w) {
                    rows =
                        self.index_equality_probe_reference(&s.from[0], &col, &lit, &schema, rows)?;
                }
            }
        }

        // WHERE filter.
        if let Some(w) = &s.where_clause {
            self.cover("exec.where_filter");
            let mut where_clause = w.clone();
            // Injected fault: the LIKE optimisation on INTEGER-affinity
            // NOCASE columns rejects exact matches (Listing 7).
            if self.bugs().is_enabled(BugId::SqliteLikeIntAffinityOptimisation) {
                where_clause = rewrite_like_int_affinity(&where_clause, &schema);
            }
            let ev = self.evaluator();
            let tail_fault = self.bugs().is_enabled(BugId::DuckdbSelectionBitmapTailOffByOne);
            let input_len = rows.len();
            let mut kept = Vec::new();
            let mut kept_idx: Vec<usize> = Vec::new();
            for (i, r) in rows.into_iter().enumerate() {
                if ev.eval_predicate(&where_clause, &schema, &r)?.is_true() {
                    if tail_fault {
                        kept_idx.push(i);
                    }
                    kept.push(r);
                }
            }
            // Injected fault: the selection bitmap mishandles the partial
            // tail lane group (columnar extension) — identical to the
            // pipeline's filter, row and columnar layouts alike.
            if tail_fault {
                if let Some(victim) = selection_tail_victim(&kept_idx, input_len) {
                    kept.remove(victim);
                }
            }
            rows = kept;
        }

        // Poisoned projection after RENAME COLUMN + double-quoted index
        // expression (Listing 8).
        if s.from.len() == 1 {
            let table = &s.from[0];
            let poisons: Vec<(String, String)> = self
                .poisoned_columns
                .iter()
                .filter(|(t, _, _)| t.eq_ignore_ascii_case(table))
                .map(|(_, new, old)| (new.clone(), old.clone()))
                .collect();
            for (new_name, old_name) in poisons {
                if let Some((ci, _)) =
                    schema.resolve(&lancer_sql::ast::expr::ColumnRef::unqualified(&new_name))
                {
                    for r in &mut rows {
                        r[ci] = Value::Text(old_name.to_ascii_uppercase());
                    }
                }
            }
        }

        // Aggregation or plain projection.
        let has_aggregate = s.group_by.iter().any(Expr::contains_aggregate)
            || s.having.as_ref().is_some_and(Expr::contains_aggregate)
            || s.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            });
        let (columns, mut projected) = if !s.group_by.is_empty() || has_aggregate {
            self.project_aggregate_reference(s, &schema, &rows)?
        } else {
            self.project_plain_reference(s, &schema, &rows)?
        };

        // DISTINCT.
        if s.distinct {
            self.cover("exec.distinct");
            projected = self.apply_distinct_reference(s, projected)?;
        }

        // ORDER BY.
        if !s.order_by.is_empty() {
            self.cover("exec.order_by");
            projected.sort_by(|a, b| {
                for (i, term) in s.order_by.iter().enumerate() {
                    let (av, bv) = match (
                        a.get(i.min(a.len().saturating_sub(1))),
                        b.get(i.min(b.len().saturating_sub(1))),
                    ) {
                        (Some(x), Some(y)) => (x, y),
                        _ => continue,
                    };
                    let coll = term.collation.unwrap_or_default();
                    let ord = av.total_cmp(bv, coll);
                    let ord = if term.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        // LIMIT / OFFSET.
        if s.limit.is_some() || s.offset.is_some() {
            self.cover("exec.limit_offset");
            let offset = s.offset.unwrap_or(0) as usize;
            let limit = s.limit.map(|l| l as usize).unwrap_or(usize::MAX);
            projected = projected.into_iter().skip(offset).take(limit).collect();
        }

        Ok(QueryResult { columns, rows: projected, affected: 0 })
    }

    /// The reference copy of the single-table equality index probe.
    fn index_equality_probe_reference(
        &self,
        table: &str,
        col: &str,
        lit: &Value,
        schema: &RowSchema,
        rows: Vec<Vec<Value>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        if crate::exec::access::probe_blocked_by_inheritance(&self.db, self.dialect(), table) {
            return Ok(rows);
        }
        let Some(t) = self.db.table(table) else { return Ok(rows) };
        let table_schema = t.schema.clone();
        let Some(col_meta) = table_schema.column(col).cloned() else { return Ok(rows) };
        // Find a usable (non-partial) index whose first key is the column.
        let index_name = self
            .db
            .indexes_on(table)
            .iter()
            .find(|i| {
                i.def.where_clause.is_none()
                    && matches!(i.def.exprs.first(), Some(Expr::Column(c)) if c.column.eq_ignore_ascii_case(col))
            })
            .map(|i| i.def.name.clone());
        let Some(index_name) = index_name else { return Ok(rows) };
        self.cover("exec.index_lookup");
        let mut probe = lit.clone();
        if self.bugs().is_enabled(BugId::SqliteRowidAliasInsertMismatch)
            && col_meta.primary_key
            && col_meta.type_name == Some(TypeName::Integer)
        {
            probe = Value::Integer(probe.to_integer_lenient().unwrap_or(0));
        }
        let binary_probe = self.bugs().is_enabled(BugId::SqliteCollateIndexBinaryKeys);
        let index = self.db.index(&index_name).expect("index just resolved");
        let matching: Vec<u64> = if binary_probe {
            index
                .entries()
                .iter()
                .filter(|e| {
                    e.key.first().is_some_and(|k| {
                        k.total_cmp(&probe, Collation::Binary) == std::cmp::Ordering::Equal
                    })
                })
                .map(|e| e.row_id)
                .collect()
        } else {
            index
                .entries()
                .iter()
                .filter(|e| {
                    e.key.first().is_some_and(|k| {
                        let coll = index.def.collations.first().copied().unwrap_or_default();
                        match (k, &probe) {
                            (Value::Text(a), Value::Text(b)) => coll.equal(a, b),
                            _ => k.same_as(&probe),
                        }
                    })
                })
                .map(|e| e.row_id)
                .collect()
        };
        let t = self.db.require_table(table)?;
        let mut out = Vec::new();
        for rid in matching {
            if let Some(row) = t.get(rid) {
                out.push(row.values);
            }
        }
        if schema.width() != t.schema.columns.len() {
            return Ok(rows);
        }
        Ok(out)
    }

    fn project_plain_reference(
        &self,
        s: &Select,
        schema: &RowSchema,
        rows: &[Vec<Value>],
    ) -> EngineResult<(Vec<String>, Vec<Vec<Value>>)> {
        let ev = self.evaluator();
        let mut columns: Vec<String> = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    for (_, c) in schema.flat_columns() {
                        columns.push(c.name);
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                }
            }
        }
        let mut projected = Vec::with_capacity(rows.len());
        for r in rows {
            let mut out_row = Vec::with_capacity(columns.len());
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => out_row.extend(r.iter().cloned()),
                    SelectItem::Expr { expr, .. } => out_row.push(ev.eval(expr, schema, r)?),
                }
            }
            projected.push(out_row);
        }
        Ok((columns, projected))
    }

    fn project_aggregate_reference(
        &self,
        s: &Select,
        schema: &RowSchema,
        rows: &[Vec<Value>],
    ) -> EngineResult<(Vec<String>, Vec<Vec<Value>>)> {
        self.cover("exec.group_by");
        let ev = self.evaluator();
        // Build groups.
        let mut group_keys: Vec<Vec<Value>> = Vec::new();
        let mut groups: Vec<Vec<Vec<Value>>> = Vec::new();
        let mut input_rows: Vec<Vec<Value>> = rows.to_vec();

        // Injected fault: GROUP BY over an inheritance parent merges child
        // rows with parent rows that share the first grouping key
        // (Listing 15).
        if self.bugs().is_enabled(BugId::PostgresInheritanceGroupByMissingRow)
            && !s.group_by.is_empty()
            && s.from.len() == 1
            && !self.db.children_of(&s.from[0]).is_empty()
        {
            let mut seen: Vec<Value> = Vec::new();
            let mut filtered = Vec::new();
            for r in input_rows {
                let key = ev.eval(&s.group_by[0], schema, &r)?;
                if seen.iter().any(|k| k.same_as(&key)) {
                    continue;
                }
                seen.push(key);
                filtered.push(r);
            }
            input_rows = filtered;
        }

        if s.group_by.is_empty() {
            group_keys.push(Vec::new());
            groups.push(input_rows);
        } else {
            let drop_null_groups = self.bugs().is_enabled(BugId::SqliteGroupByNoCaseDuplicates)
                && s.group_by.iter().any(|g| ev.collation_of(g, schema) == Collation::NoCase);
            for r in input_rows {
                let mut key = Vec::with_capacity(s.group_by.len());
                for g in &s.group_by {
                    key.push(ev.eval(g, schema, &r)?);
                }
                // Injected fault: NULL-keyed groups are dropped when grouping
                // on a NOCASE column (§4.4 COLLATE bugs).
                if drop_null_groups && key.iter().any(Value::is_null) {
                    continue;
                }
                match group_keys.iter().position(|k| {
                    k.len() == key.len() && k.iter().zip(key.iter()).all(|(a, b)| a.same_as(b))
                }) {
                    Some(i) => groups[i].push(r),
                    None => {
                        group_keys.push(key);
                        groups.push(vec![r]);
                    }
                }
            }
        }

        let mut columns: Vec<String> = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    for (_, c) in schema.flat_columns() {
                        columns.push(c.name);
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                }
            }
        }

        let mut out_rows = Vec::new();
        for group in &groups {
            // HAVING.
            if let Some(h) = &s.having {
                self.cover("exec.having");
                let hv = self.eval_aggregate_expr(h, schema, group)?;
                if !self.evaluator().value_to_tribool(&hv)?.is_true() {
                    continue;
                }
            }
            let mut out_row = Vec::new();
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => {
                        if let Some(first) = group.first() {
                            out_row.extend(first.iter().cloned());
                        } else {
                            out_row.extend(std::iter::repeat_n(Value::Null, schema.width()));
                        }
                    }
                    SelectItem::Expr { expr, .. } => {
                        out_row.push(self.eval_aggregate_expr(expr, schema, group)?);
                    }
                }
            }
            out_rows.push(out_row);
        }
        // A query with aggregates but no GROUP BY always yields one row,
        // even over an empty input.
        if s.group_by.is_empty() && out_rows.is_empty() && s.having.is_none() {
            let mut out_row = Vec::new();
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => {
                        out_row.extend(std::iter::repeat_n(Value::Null, schema.width()));
                    }
                    SelectItem::Expr { expr, .. } => {
                        out_row.push(self.eval_aggregate_expr(expr, schema, &[])?);
                    }
                }
            }
            out_rows.push(out_row);
        }
        Ok((columns, out_rows))
    }

    fn apply_distinct_reference(
        &self,
        s: &Select,
        rows: Vec<Vec<Value>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        // Injected fault: the skip-scan optimisation applied to DISTINCT
        // after ANALYZE dedupes on the first column only (Listing 6).
        let skip_scan = self.bugs().is_enabled(BugId::SqliteSkipScanDistinct)
            && s.from.len() == 1
            && self.analyzed.contains(&s.from[0].to_ascii_lowercase())
            && !self.db.indexes_on(&s.from[0]).is_empty();
        // Injected fault: DISTINCT treats NULL as a duplicate of zero
        // (§4.4 type flexibility).
        let null_zero = self.bugs().is_enabled(BugId::SqliteDistinctNegativeZero);
        let mut out: Vec<Vec<Value>> = Vec::new();
        for row in rows {
            let duplicate = out.iter().any(|existing| {
                if skip_scan {
                    match (existing.first(), row.first()) {
                        (Some(a), Some(b)) => a.same_as(b),
                        _ => existing.is_empty() && row.is_empty(),
                    }
                } else if null_zero {
                    existing.len() == row.len()
                        && existing.iter().zip(row.iter()).all(|(a, b)| {
                            a.same_as(b)
                                || (a.same_as(&Value::Integer(0)) && b.is_null())
                                || (a.is_null() && b.same_as(&Value::Integer(0)))
                        })
                } else {
                    existing.len() == row.len()
                        && existing.iter().zip(row.iter()).all(|(a, b)| a.same_as(b))
                }
            });
            if !duplicate {
                out.push(row);
            }
        }
        Ok(out)
    }
}

/// The original inline equality-probe detection, kept here so the
/// reference path does not depend on `exec::access` (whose helpers the
/// pipeline and planner share).
fn reference_equality_probe(expr: &Expr) -> Option<(String, Value)> {
    match expr {
        Expr::Binary { op: BinaryOp::Eq, left, right } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) if !v.is_null() => {
                Some((c.column.clone(), v.clone()))
            }
            (Expr::Literal(v), Expr::Column(c)) if !v.is_null() => {
                Some((c.column.clone(), v.clone()))
            }
            _ => None,
        },
        _ => None,
    }
}
