//! # lancer-engine
//!
//! The relational DBMS engine that plays the role of the *system under test*
//! in this reproduction of "Testing Database Engines via Pivoted Query
//! Synthesis" (OSDI 2020).
//!
//! The engine provides three dialect profiles ([`Dialect`]) emulating the
//! semantic differences between SQLite, MySQL and PostgreSQL that the paper
//! relies on, a dialect-aware expression evaluator and query executor, and a
//! registry of injected faults ([`bugs`]) modelled on the bug classes the
//! paper discovered.  With an empty [`BugProfile`] the engine is
//! reference-correct; campaigns run it with faults enabled and let SQLancer
//! (in `lancer-core`) rediscover them.
//!
//! The [`plan`] module adds a deterministic planner on top: `EXPLAIN`
//! support via [`Engine::explain`], and [`PlanFingerprint`]s — the
//! plan-coverage signal query-plan-guided campaigns in `lancer-core::qpg`
//! feed on.

#![warn(missing_docs)]

pub mod bugs;
pub mod coverage;
pub mod dialect;
pub mod error;
pub mod eval;
pub mod exec;
pub mod plan;

pub use bugs::{BugId, BugInfo, BugProfile, BugStatus, Oracle};
pub use coverage::Coverage;
pub use dialect::Dialect;
pub use error::{EngineError, EngineResult, ErrorClass};
pub use eval::{Evaluator, RowSchema, SourceSchema};
pub use exec::batch::RowBatch;
pub use exec::{workspace_rewinds, Engine, QueryResult, SessionHandle, WorkspaceSnapshot};
pub use plan::{PlanFingerprint, PlanNode, QueryPlan, ScanKind};
