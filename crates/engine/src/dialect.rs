//! SQL dialect profiles.
//!
//! The paper's key observation is that the three tested DBMS diverge so much
//! in SQL surface and semantics that differential testing is ineffective
//! (§1, §2).  The engine therefore exposes three *profiles* that reproduce
//! the differences the paper leans on:
//!
//! * **SQLite-like** — untyped columns, aggressive implicit conversions,
//!   `IS NOT` on scalars, `WITHOUT ROWID` tables, collations, `PRAGMA`s,
//!   partial and expression indexes, `VACUUM`/`REINDEX`.
//! * **MySQL-like** — unsigned/tiny integer types, alternative storage
//!   engines, the `<=>` operator, `CHECK TABLE`/`REPAIR TABLE`, `SET GLOBAL`
//!   options, implicit conversions to boolean.
//! * **PostgreSQL-like** — strict typing with few implicit conversions (the
//!   generated predicate root must be boolean), `SERIAL`, table inheritance,
//!   `CREATE STATISTICS`, `DISCARD`, `VACUUM FULL`.
//!
//! A fourth profile extends the population beyond the paper:
//!
//! * **DuckDB-like** — a columnar, strictly typed analytical engine: no
//!   collations, no type affinity, boolean predicates required, and a
//!   column-at-a-time executor ([`Dialect::prefers_columnar`]).

use lancer_sql::ast::expr::TypeName;
use serde::{Deserialize, Serialize};

/// The emulated DBMS dialects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dialect {
    /// SQLite-like profile.
    Sqlite,
    /// MySQL-like profile.
    Mysql,
    /// PostgreSQL-like profile.
    Postgres,
    /// DuckDB-like profile (columnar, strictly typed).
    Duckdb,
}

impl Dialect {
    /// All dialects, for iteration in campaigns and benches.
    pub const ALL: [Dialect; 4] =
        [Dialect::Sqlite, Dialect::Mysql, Dialect::Postgres, Dialect::Duckdb];

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dialect::Sqlite => "sqlite",
            Dialect::Mysql => "mysql",
            Dialect::Postgres => "postgres",
            Dialect::Duckdb => "duckdb",
        }
    }

    /// Whether columns may be declared without a type.
    #[must_use]
    pub fn allows_untyped_columns(self) -> bool {
        self == Dialect::Sqlite
    }

    /// Whether arbitrary expressions are implicitly converted to boolean in
    /// `WHERE` (true for SQLite and MySQL; PostgreSQL and DuckDB require a
    /// boolean).
    #[must_use]
    pub fn implicit_boolean_conversion(self) -> bool {
        !self.strict_typing()
    }

    /// Whether the dialect enforces strict typing: no type affinity, no
    /// implicit conversions between storage classes, boolean predicates
    /// required at the `WHERE` root.
    #[must_use]
    pub fn strict_typing(self) -> bool {
        matches!(self, Dialect::Postgres | Dialect::Duckdb)
    }

    /// Whether the executor should use the columnar batch layout
    /// (column-at-a-time scan, filter and aggregate paths) for this
    /// dialect.  Off for the three row-store profiles so their execution
    /// traces stay byte-identical to the row pipeline.
    #[must_use]
    pub fn prefers_columnar(self) -> bool {
        self == Dialect::Duckdb
    }

    /// Whether a value of any storage class may be stored in any column
    /// (SQLite's dynamic typing).
    #[must_use]
    pub fn dynamic_typing(self) -> bool {
        self == Dialect::Sqlite
    }

    /// Whether the scalar `IS NOT` / `IS` operators apply to non-boolean
    /// operands (the operator from Listing 1 of the paper).
    #[must_use]
    pub fn has_scalar_is(self) -> bool {
        self == Dialect::Sqlite
    }

    /// Whether the dialect provides the MySQL `<=>` null-safe equality.
    #[must_use]
    pub fn has_null_safe_eq(self) -> bool {
        self == Dialect::Mysql
    }

    /// Whether the dialect provides unsigned integer types.
    #[must_use]
    pub fn has_unsigned_types(self) -> bool {
        self == Dialect::Mysql
    }

    /// Whether the dialect provides alternative table storage engines.
    #[must_use]
    pub fn has_table_engines(self) -> bool {
        self == Dialect::Mysql
    }

    /// Whether the dialect supports `WITHOUT ROWID` tables.
    #[must_use]
    pub fn has_without_rowid(self) -> bool {
        self == Dialect::Sqlite
    }

    /// Whether the dialect supports non-default collations (`NOCASE`,
    /// `RTRIM`).
    #[must_use]
    pub fn has_collations(self) -> bool {
        self == Dialect::Sqlite
    }

    /// Whether the dialect supports table inheritance (`INHERITS`).
    #[must_use]
    pub fn has_inheritance(self) -> bool {
        self == Dialect::Postgres
    }

    /// Whether the dialect supports partial indexes (`CREATE INDEX ... WHERE`).
    #[must_use]
    pub fn has_partial_indexes(self) -> bool {
        matches!(self, Dialect::Sqlite | Dialect::Postgres)
    }

    /// Whether the dialect supports indexes on expressions.
    #[must_use]
    pub fn has_expression_indexes(self) -> bool {
        true
    }

    /// Whether the dialect supports `PRAGMA` statements.
    #[must_use]
    pub fn has_pragma(self) -> bool {
        self == Dialect::Sqlite
    }

    /// Whether the dialect supports `SET [GLOBAL]` options.
    #[must_use]
    pub fn has_set_option(self) -> bool {
        matches!(self, Dialect::Mysql | Dialect::Postgres)
    }

    /// Whether the dialect supports `VACUUM`.
    #[must_use]
    pub fn has_vacuum(self) -> bool {
        matches!(self, Dialect::Sqlite | Dialect::Postgres)
    }

    /// Whether the dialect supports `REINDEX`.
    #[must_use]
    pub fn has_reindex(self) -> bool {
        matches!(self, Dialect::Sqlite | Dialect::Postgres)
    }

    /// Whether the dialect supports MySQL `CHECK TABLE` / `REPAIR TABLE`.
    #[must_use]
    pub fn has_check_repair_table(self) -> bool {
        self == Dialect::Mysql
    }

    /// Whether the dialect supports PostgreSQL `CREATE STATISTICS` and
    /// `DISCARD`.
    #[must_use]
    pub fn has_statistics_and_discard(self) -> bool {
        self == Dialect::Postgres
    }

    /// The column types the dialect accepts in `CREATE TABLE`.
    #[must_use]
    pub fn supported_types(self) -> Vec<TypeName> {
        match self {
            Dialect::Sqlite => {
                vec![TypeName::Integer, TypeName::Real, TypeName::Text, TypeName::Blob]
            }
            Dialect::Mysql => vec![
                TypeName::Integer,
                TypeName::TinyInt,
                TypeName::Unsigned,
                TypeName::Real,
                TypeName::Text,
                TypeName::Blob,
            ],
            Dialect::Postgres => vec![
                TypeName::Integer,
                TypeName::Real,
                TypeName::Text,
                TypeName::Boolean,
                TypeName::Serial,
            ],
            Dialect::Duckdb => {
                vec![TypeName::Integer, TypeName::Real, TypeName::Text, TypeName::Boolean]
            }
        }
    }

    /// Returns `true` if the given type may be used in this dialect.
    #[must_use]
    pub fn supports_type(self, t: TypeName) -> bool {
        self.supported_types().contains(&t)
    }

    /// Static census data for the Table 1 reproduction: (DB-Engines rank,
    /// Stack Overflow rank, LOC of the emulated system, release year) as
    /// reported in the paper for the real DBMS.
    #[must_use]
    pub fn paper_characteristics(self) -> PaperCharacteristics {
        match self {
            Dialect::Sqlite => PaperCharacteristics {
                db_engines_rank: 11,
                stackoverflow_rank: 4,
                loc: "0.3M",
                released: 2000,
                age_years: 19,
            },
            Dialect::Mysql => PaperCharacteristics {
                db_engines_rank: 2,
                stackoverflow_rank: 1,
                loc: "3.8M",
                released: 1995,
                age_years: 24,
            },
            Dialect::Postgres => PaperCharacteristics {
                db_engines_rank: 4,
                stackoverflow_rank: 2,
                loc: "1.4M",
                released: 1996,
                age_years: 23,
            },
            // Not part of the paper's census; figures for the emulated
            // system around the study period (DB-Engines December 2019).
            Dialect::Duckdb => PaperCharacteristics {
                db_engines_rank: 217,
                stackoverflow_rank: 20,
                loc: "0.2M",
                released: 2018,
                age_years: 1,
            },
        }
    }
}

/// Table 1 row data, as reported by the paper for the real DBMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperCharacteristics {
    /// DB-Engines popularity rank (December 2019).
    pub db_engines_rank: u32,
    /// Stack Overflow developer-survey rank (2019).
    pub stackoverflow_rank: u32,
    /// Lines of code of the real DBMS.
    pub loc: &'static str,
    /// First release year.
    pub released: u32,
    /// Age in years at the time of the study.
    pub age_years: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dialect_feature_matrix_matches_paper() {
        assert!(Dialect::Sqlite.allows_untyped_columns());
        assert!(!Dialect::Mysql.allows_untyped_columns());
        assert!(!Dialect::Postgres.implicit_boolean_conversion());
        assert!(Dialect::Mysql.implicit_boolean_conversion());
        assert!(Dialect::Sqlite.has_scalar_is());
        assert!(!Dialect::Postgres.has_scalar_is());
        assert!(Dialect::Mysql.has_null_safe_eq());
        assert!(Dialect::Mysql.has_table_engines());
        assert!(Dialect::Postgres.has_inheritance());
        assert!(Dialect::Sqlite.has_without_rowid());
        assert!(Dialect::Sqlite.has_pragma());
        assert!(!Dialect::Sqlite.has_set_option());
        assert!(Dialect::Mysql.has_check_repair_table());
        assert!(Dialect::Postgres.has_statistics_and_discard());
    }

    #[test]
    fn duckdb_profile_is_columnar_and_strict() {
        assert!(Dialect::Duckdb.prefers_columnar());
        assert!(
            !Dialect::ALL.iter().any(|d| d.prefers_columnar() && *d != Dialect::Duckdb),
            "the row-store profiles must keep the row pipeline"
        );
        assert!(Dialect::Duckdb.strict_typing());
        assert!(Dialect::Postgres.strict_typing());
        assert!(!Dialect::Sqlite.strict_typing());
        assert!(!Dialect::Mysql.strict_typing());
        assert!(!Dialect::Duckdb.implicit_boolean_conversion());
        assert!(!Dialect::Duckdb.has_collations());
        assert!(!Dialect::Duckdb.dynamic_typing());
        assert!(!Dialect::Duckdb.allows_untyped_columns());
        assert!(!Dialect::Duckdb.has_partial_indexes());
        assert!(!Dialect::Duckdb.has_vacuum());
        assert!(!Dialect::Duckdb.has_pragma());
    }

    #[test]
    fn supported_types_respect_dialect() {
        assert!(Dialect::Mysql.supports_type(TypeName::Unsigned));
        assert!(!Dialect::Sqlite.supports_type(TypeName::Unsigned));
        assert!(Dialect::Postgres.supports_type(TypeName::Boolean));
        assert!(!Dialect::Mysql.supports_type(TypeName::Boolean));
        assert!(Dialect::Postgres.supports_type(TypeName::Serial));
        assert!(Dialect::Duckdb.supports_type(TypeName::Boolean));
        assert!(!Dialect::Duckdb.supports_type(TypeName::Blob));
        assert!(!Dialect::Duckdb.supports_type(TypeName::Serial));
    }

    #[test]
    fn paper_characteristics_present_for_all() {
        for d in Dialect::ALL {
            let c = d.paper_characteristics();
            assert!(c.released >= 1995);
            assert!(!c.loc.is_empty());
        }
    }
}
