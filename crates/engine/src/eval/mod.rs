//! The engine's expression evaluator.
//!
//! This is the *DBMS side* of expression evaluation: it implements the
//! dialect semantics (implicit conversions, collations, three-valued logic)
//! and contains the value-level fault hooks.  SQLancer's ground-truth AST
//! interpreter lives in `lancer-core::interp` and is an independent
//! implementation of the same semantics — divergence between the two (with
//! all faults disabled) would be a bug in this reproduction and is guarded
//! against by cross-crate property tests.

use lancer_sql::ast::expr::{AggFunc, BinaryOp, ColumnRef, Expr, ScalarFunc, TypeName, UnaryOp};
use lancer_sql::collation::Collation;
use lancer_sql::value::{
    real_to_int_saturating, text_integer_prefix, text_numeric_prefix, TriBool, Value,
};
use lancer_storage::schema::ColumnMeta;

use crate::bugs::{BugId, BugProfile};
use crate::dialect::Dialect;
use crate::error::{EngineError, EngineResult};

/// The schema of one row source (a table or view) participating in a query.
#[derive(Debug, Clone)]
pub struct SourceSchema {
    /// The source name (table, view or alias).
    pub name: String,
    /// Column metadata in order.
    pub columns: Vec<ColumnMeta>,
}

/// The flattened schema of a joined row: all sources side by side.
#[derive(Debug, Clone, Default)]
pub struct RowSchema {
    /// The participating sources in join order.
    pub sources: Vec<SourceSchema>,
}

impl RowSchema {
    /// A schema with a single source.
    #[must_use]
    pub fn single(source: SourceSchema) -> RowSchema {
        RowSchema { sources: vec![source] }
    }

    /// An empty schema (for constant expressions).
    #[must_use]
    pub fn empty() -> RowSchema {
        RowSchema::default()
    }

    /// Total number of columns across all sources.
    #[must_use]
    pub fn width(&self) -> usize {
        self.sources.iter().map(|s| s.columns.len()).sum()
    }

    /// Resolves a column reference to a flat index and its metadata.
    #[must_use]
    pub fn resolve(&self, col: &ColumnRef) -> Option<(usize, &ColumnMeta)> {
        let mut offset = 0usize;
        for source in &self.sources {
            if col.table.as_ref().is_none_or(|t| t.eq_ignore_ascii_case(&source.name)) {
                if let Some(i) =
                    source.columns.iter().position(|c| c.name.eq_ignore_ascii_case(&col.column))
                {
                    return Some((offset + i, &source.columns[i]));
                }
            }
            offset += source.columns.len();
        }
        None
    }

    /// All (source, column) pairs flattened, for `SELECT *` projection.
    #[must_use]
    pub fn flat_columns(&self) -> Vec<(String, ColumnMeta)> {
        let mut out = Vec::new();
        for source in &self.sources {
            for c in &source.columns {
                out.push((source.name.clone(), c.clone()));
            }
        }
        out
    }
}

/// Dialect-aware expression evaluator over a single (joined) row.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    /// The SQL dialect being emulated.
    pub dialect: Dialect,
    /// The enabled fault profile.
    pub bugs: &'a BugProfile,
    /// Whether `LIKE` is case sensitive (SQLite `PRAGMA case_sensitive_like`).
    pub case_sensitive_like: bool,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator.
    #[must_use]
    pub fn new(dialect: Dialect, bugs: &'a BugProfile) -> Evaluator<'a> {
        Evaluator { dialect, bugs, case_sensitive_like: false }
    }

    /// Evaluates an expression to a value.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown columns (non-SQLite dialects), strict-
    /// typing violations (PostgreSQL), division by zero (PostgreSQL) and
    /// aggregates outside aggregate context.
    pub fn eval(&self, expr: &Expr, schema: &RowSchema, row: &[Value]) -> EngineResult<Value> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(c) => self.eval_column(c, schema, row),
            Expr::Unary { op, expr } => self.eval_unary(*op, expr, schema, row),
            Expr::Binary { op, left, right } => self.eval_binary(*op, left, right, schema, row),
            Expr::Like { negated, expr, pattern } => {
                self.eval_like(*negated, expr, pattern, schema, row)
            }
            Expr::Between { negated, expr, low, high } => {
                let v = self.eval(expr, schema, row)?;
                let lo = self.eval(low, schema, row)?;
                let hi = self.eval(high, schema, row)?;
                let coll = self.collation_of(expr, schema);
                let ge = self.compare_tri(&v, &lo, coll).map(|o| o != std::cmp::Ordering::Less);
                let le = self.compare_tri(&v, &hi, coll).map(|o| o != std::cmp::Ordering::Greater);
                let t = TriBool::from_option(ge).and(TriBool::from_option(le));
                let t = if *negated { t.not() } else { t };
                Ok(self.tribool_value(t))
            }
            Expr::InList { negated, expr, list } => {
                let v = self.eval(expr, schema, row)?;
                let coll = self.collation_of(expr, schema);
                let mut any_unknown = false;
                let mut found = false;
                for item in list {
                    let iv = self.eval(item, schema, row)?;
                    match self.compare_tri(&v, &iv, coll) {
                        None => any_unknown = true,
                        Some(std::cmp::Ordering::Equal) => {
                            found = true;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                let t = if found {
                    TriBool::True
                } else if any_unknown {
                    TriBool::Unknown
                } else {
                    TriBool::False
                };
                let t = if *negated { t.not() } else { t };
                Ok(self.tribool_value(t))
            }
            Expr::IsNull { negated, expr } => {
                let v = self.eval(expr, schema, row)?;
                let is_null = v.is_null();
                let t: TriBool = (is_null != *negated).into();
                Ok(self.tribool_value(t))
            }
            Expr::Cast { expr, type_name } => {
                let v = self.eval(expr, schema, row)?;
                self.cast(v, *type_name)
            }
            Expr::Case { operand, branches, else_expr } => {
                match operand {
                    Some(op) => {
                        let base = self.eval(op, schema, row)?;
                        let coll = self.collation_of(op, schema);
                        for (when, then) in branches {
                            let wv = self.eval(when, schema, row)?;
                            if self.compare_tri(&base, &wv, coll) == Some(std::cmp::Ordering::Equal)
                            {
                                return self.eval(then, schema, row);
                            }
                        }
                    }
                    None => {
                        for (when, then) in branches {
                            if self.truthiness(when, schema, row)?.is_true() {
                                return self.eval(then, schema, row);
                            }
                        }
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, schema, row),
                    None => Ok(Value::Null),
                }
            }
            Expr::Function { func, args } => self.eval_function(*func, args, schema, row),
            Expr::Aggregate { .. } => {
                Err(EngineError::semantic("aggregate functions are not allowed in this context"))
            }
            Expr::Collate { expr, .. } => self.eval(expr, schema, row),
        }
    }

    /// Evaluates an expression as a predicate (`WHERE` / `HAVING` / `ON`).
    ///
    /// # Errors
    ///
    /// In the PostgreSQL-like dialect, non-boolean predicate results are a
    /// type error; the other dialects convert implicitly.
    pub fn eval_predicate(
        &self,
        expr: &Expr,
        schema: &RowSchema,
        row: &[Value],
    ) -> EngineResult<TriBool> {
        let v = self.eval(expr, schema, row)?;
        self.value_to_tribool(&v)
    }

    /// Converts a value to a tri-state boolean under the dialect's rules.
    ///
    /// # Errors
    ///
    /// Returns a type error in the PostgreSQL-like dialect for non-boolean
    /// values.
    pub fn value_to_tribool(&self, v: &Value) -> EngineResult<TriBool> {
        if self.dialect.implicit_boolean_conversion() {
            // Injected fault: small doubles stored in TEXT evaluate to FALSE
            // (MySQL, §4.5 value-range bugs).
            if self.bugs.is_enabled(BugId::MysqlSmallDoubleTextFalse) {
                if let Value::Text(t) = v {
                    let n = text_numeric_prefix(t);
                    if n != 0.0 && n.abs() < 1.0 {
                        return Ok(TriBool::False);
                    }
                }
            }
            Ok(v.to_tribool_lenient())
        } else {
            match v {
                Value::Null => Ok(TriBool::Unknown),
                Value::Boolean(b) => Ok((*b).into()),
                other => Err(EngineError::semantic(format!(
                    "argument of WHERE must be type boolean, not type {}",
                    other.storage_class()
                ))),
            }
        }
    }

    fn truthiness(&self, expr: &Expr, schema: &RowSchema, row: &[Value]) -> EngineResult<TriBool> {
        let v = self.eval(expr, schema, row)?;
        self.value_to_tribool(&v)
    }

    fn tribool_value(&self, t: TriBool) -> Value {
        if self.dialect.strict_typing() {
            t.to_bool_value()
        } else {
            t.to_int_value()
        }
    }

    fn eval_column(&self, c: &ColumnRef, schema: &RowSchema, row: &[Value]) -> EngineResult<Value> {
        match schema.resolve(c) {
            Some((i, _)) => Ok(row.get(i).cloned().unwrap_or(Value::Null)),
            None => {
                if self.dialect == Dialect::Sqlite && c.table.is_none() {
                    // SQLite's double-quoted-string fallback (Listing 8).
                    Ok(Value::Text(c.column.clone()))
                } else {
                    Err(EngineError::semantic(format!("no such column: {}", c.column)))
                }
            }
        }
    }

    fn eval_unary(
        &self,
        op: UnaryOp,
        expr: &Expr,
        schema: &RowSchema,
        row: &[Value],
    ) -> EngineResult<Value> {
        match op {
            UnaryOp::Not => {
                // Injected fault: MySQL folds double negation for integer
                // operands (Listing 13).
                if self.bugs.is_enabled(BugId::MysqlDoubleNegationFolded) {
                    if let Expr::Unary { op: UnaryOp::Not, expr: inner } = expr {
                        return self.eval(inner, schema, row);
                    }
                }
                let t = self.truthiness(expr, schema, row)?;
                Ok(self.tribool_value(t.not()))
            }
            UnaryOp::Neg => {
                let v = self.eval(expr, schema, row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Integer(i) => Ok(Value::Integer(i.checked_neg().unwrap_or(i64::MAX))),
                    Value::Real(r) => Ok(Value::Real(-r)),
                    Value::Boolean(b) => Ok(Value::Integer(-i64::from(b))),
                    other => self.coerce_numeric_or_error(&other, "-").map(|n| match n {
                        Num::Int(i) => Value::Integer(i.checked_neg().unwrap_or(i64::MAX)),
                        Num::Real(r) => Value::Real(-r),
                    }),
                }
            }
            UnaryOp::Plus => self.eval(expr, schema, row),
            UnaryOp::BitNot => {
                let v = self.eval(expr, schema, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let i = self.to_integer(&v, "~")?;
                Ok(Value::Integer(!i))
            }
        }
    }

    fn eval_binary(
        &self,
        op: BinaryOp,
        left: &Expr,
        right: &Expr,
        schema: &RowSchema,
        row: &[Value],
    ) -> EngineResult<Value> {
        match op {
            BinaryOp::And => {
                let l = self.truthiness(left, schema, row)?;
                // Short circuit only on definite FALSE, like the DBMS do.
                if l == TriBool::False {
                    return Ok(self.tribool_value(TriBool::False));
                }
                let r = self.truthiness(right, schema, row)?;
                Ok(self.tribool_value(l.and(r)))
            }
            BinaryOp::Or => {
                let l = self.truthiness(left, schema, row)?;
                if l == TriBool::True {
                    return Ok(self.tribool_value(TriBool::True));
                }
                let r = self.truthiness(right, schema, row)?;
                Ok(self.tribool_value(l.or(r)))
            }
            BinaryOp::Is | BinaryOp::IsNot => {
                if !self.dialect.has_scalar_is() {
                    // The other dialects only support IS [NOT] with NULL /
                    // boolean literals; the NULL form is parsed as IsNull, so
                    // anything reaching here with a non-boolean operand is an
                    // error (this is the dialect gap from Listing 1).
                    let rv = self.eval(right, schema, row)?;
                    if !matches!(rv, Value::Boolean(_) | Value::Null) {
                        return Err(EngineError::semantic(format!(
                            "syntax error: IS {} is not supported for this operand",
                            if op == BinaryOp::IsNot { "NOT" } else { "" }
                        )));
                    }
                    let lv = self.eval(left, schema, row)?;
                    let eq = lv.same_as(&rv);
                    let t: TriBool = (if op == BinaryOp::Is { eq } else { !eq }).into();
                    return Ok(self.tribool_value(t));
                }
                let lv = self.eval(left, schema, row)?;
                let rv = self.eval(right, schema, row)?;
                let coll = self.comparison_collation(left, right, schema);
                let eq = self.values_equal_nullsafe(&lv, &rv, coll);
                let t: TriBool = (if op == BinaryOp::Is { eq } else { !eq }).into();
                Ok(self.tribool_value(t))
            }
            BinaryOp::NullSafeEq => {
                if !self.dialect.has_null_safe_eq() {
                    return Err(EngineError::semantic("syntax error near '<=>'"));
                }
                let lv = self.eval(left, schema, row)?;
                let rv = self.eval(right, schema, row)?;
                // Injected fault: <=> against an out-of-range constant for a
                // TINYINT column misbehaves for NULL values (Listing 12).
                if self.bugs.is_enabled(BugId::MysqlNullSafeEqOutOfRange)
                    && lv.is_null()
                    && self.column_type(left, schema) == Some(TypeName::TinyInt)
                {
                    if let Value::Integer(i) = rv {
                        if !(-128..=127).contains(&i) {
                            return Ok(self.tribool_value(TriBool::True));
                        }
                    }
                }
                let coll = self.comparison_collation(left, right, schema);
                let eq = self.values_equal_nullsafe(&lv, &rv, coll);
                Ok(self.tribool_value(eq.into()))
            }
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => {
                let mut lv = self.eval(left, schema, row)?;
                let mut rv = self.eval(right, schema, row)?;
                // Injected fault: INTEGER-affinity column compared against a
                // REAL constant truncates the constant first (§4.4).
                if self.bugs.is_enabled(BugId::SqliteIntRealComparisonTruncates) {
                    if self.column_type(left, schema) == Some(TypeName::Integer) {
                        if let Value::Real(r) = rv {
                            rv = Value::Integer(real_to_int_saturating(r));
                        }
                    }
                    if self.column_type(right, schema) == Some(TypeName::Integer) {
                        if let Value::Real(r) = lv {
                            lv = Value::Integer(real_to_int_saturating(r));
                        }
                    }
                }
                // Injected fault: comparisons against constants outside the
                // TINYINT range clamp the constant (§4.5 value-range bugs).
                if self.bugs.is_enabled(BugId::MysqlTinyIntRangeCompare) {
                    if self.column_type(left, schema) == Some(TypeName::TinyInt) {
                        if let Value::Integer(i) = rv {
                            rv = Value::Integer(i.clamp(-128, 127));
                        }
                    }
                    if self.column_type(right, schema) == Some(TypeName::TinyInt) {
                        if let Value::Integer(i) = lv {
                            lv = Value::Integer(i.clamp(-128, 127));
                        }
                    }
                }
                let coll = self.comparison_collation(left, right, schema);
                let t = self.compare_values_tri(op, &lv, &rv, coll);
                Ok(self.tribool_value(t))
            }
            BinaryOp::Concat => {
                let lv = self.eval(left, schema, row)?;
                let rv = self.eval(right, schema, row)?;
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                let ls = lv.to_text_lenient().unwrap_or_default();
                let rs = rv.to_text_lenient().unwrap_or_default();
                Ok(Value::Text(format!("{ls}{rs}")))
            }
            BinaryOp::BitAnd | BinaryOp::BitOr | BinaryOp::ShiftLeft | BinaryOp::ShiftRight => {
                let lv = self.eval(left, schema, row)?;
                let rv = self.eval(right, schema, row)?;
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                let a = self.to_integer(&lv, "bitwise")?;
                let b = self.to_integer(&rv, "bitwise")?;
                let r = match op {
                    BinaryOp::BitAnd => a & b,
                    BinaryOp::BitOr => a | b,
                    BinaryOp::ShiftLeft => {
                        if (0..64).contains(&b) {
                            a.wrapping_shl(b as u32)
                        } else {
                            0
                        }
                    }
                    BinaryOp::ShiftRight => {
                        if (0..64).contains(&b) {
                            a.wrapping_shr(b as u32)
                        } else if a < 0 {
                            -1
                        } else {
                            0
                        }
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Integer(r))
            }
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                self.eval_arithmetic(op, left, right, schema, row)
            }
        }
    }

    fn eval_arithmetic(
        &self,
        op: BinaryOp,
        left: &Expr,
        right: &Expr,
        schema: &RowSchema,
        row: &[Value],
    ) -> EngineResult<Value> {
        let lv = self.eval(left, schema, row)?;
        let rv = self.eval(right, schema, row)?;
        if lv.is_null() || rv.is_null() {
            return Ok(Value::Null);
        }
        // Injected fault: subtracting a large integer from a TEXT value goes
        // through floating point and loses precision (Listing 2).
        if op == BinaryOp::Sub
            && self.bugs.is_enabled(BugId::SqliteTextMinusIntegerPrecision)
            && matches!(lv, Value::Text(_))
        {
            if let Value::Integer(i) = rv {
                if i.unsigned_abs() > (1_u64 << 53) {
                    let l = lv.to_real_lenient().unwrap_or(0.0);
                    return Ok(Value::Integer(real_to_int_saturating(l - i as f64)));
                }
            }
        }
        let ln = self.coerce_numeric_or_error(&lv, "arithmetic")?;
        let rn = self.coerce_numeric_or_error(&rv, "arithmetic")?;
        // Injected fault: unsigned subtraction wraps to a huge positive value
        // (MySQL intended behaviour, §4.5).
        if op == BinaryOp::Sub
            && self.bugs.is_enabled(BugId::MysqlUnsignedSubtractionWraps)
            && self.column_type(left, schema) == Some(TypeName::Unsigned)
        {
            if let (Num::Int(a), Num::Int(b)) = (ln, rn) {
                if a < b {
                    return Ok(Value::Integer(i64::MAX));
                }
            }
        }
        match (ln, rn) {
            (Num::Int(a), Num::Int(b)) => match op {
                BinaryOp::Add => Ok(match a.checked_add(b) {
                    Some(v) => Value::Integer(v),
                    None => Value::Real(a as f64 + b as f64),
                }),
                BinaryOp::Sub => Ok(match a.checked_sub(b) {
                    Some(v) => Value::Integer(v),
                    None => Value::Real(a as f64 - b as f64),
                }),
                BinaryOp::Mul => Ok(match a.checked_mul(b) {
                    Some(v) => Value::Integer(v),
                    None => Value::Real(a as f64 * b as f64),
                }),
                // `i64::MIN / -1` (and `% -1`) overflow like the other
                // operators; promote to REAL instead of wrapping.
                BinaryOp::Div => {
                    if b == 0 {
                        self.division_by_zero()
                    } else {
                        Ok(match a.checked_div(b) {
                            Some(v) => Value::Integer(v),
                            None => Value::Real(a as f64 / b as f64),
                        })
                    }
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        self.division_by_zero()
                    } else {
                        Ok(match a.checked_rem(b) {
                            Some(v) => Value::Integer(v),
                            None => Value::Real(a as f64 % b as f64),
                        })
                    }
                }
                _ => unreachable!(),
            },
            (a, b) => {
                let a = a.as_real();
                let b = b.as_real();
                let r = match op {
                    BinaryOp::Add => a + b,
                    BinaryOp::Sub => a - b,
                    BinaryOp::Mul => a * b,
                    BinaryOp::Div => {
                        if b == 0.0 {
                            return self.division_by_zero();
                        }
                        a / b
                    }
                    BinaryOp::Mod => {
                        if b == 0.0 {
                            return self.division_by_zero();
                        }
                        a % b
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Real(r))
            }
        }
    }

    fn division_by_zero(&self) -> EngineResult<Value> {
        if self.dialect.strict_typing() {
            Err(EngineError::semantic("division by zero"))
        } else {
            Ok(Value::Null)
        }
    }

    fn eval_like(
        &self,
        negated: bool,
        expr: &Expr,
        pattern: &Expr,
        schema: &RowSchema,
        row: &[Value],
    ) -> EngineResult<Value> {
        let v = self.eval(expr, schema, row)?;
        let p = self.eval(pattern, schema, row)?;
        if v.is_null() || p.is_null() {
            return Ok(Value::Null);
        }
        // Injected fault: a LIKE pattern ending in a backslash crashes the
        // pattern compiler (simulated SEGFAULT, §4.2).
        if self.bugs.is_enabled(BugId::SqliteLikeEscapeCrash) {
            if let Value::Text(ref pt) = p {
                if pt.ends_with('\\') {
                    return Err(EngineError::crash("SEGFAULT in likeFunc()"));
                }
            }
        }
        // Injected fault: LIKE on BLOB values yields FALSE instead of
        // matching their text conversion (§4.4 type flexibility).
        if self.bugs.is_enabled(BugId::SqliteLikeOnBlobAlwaysFalse) && matches!(v, Value::Blob(_)) {
            let t: TriBool = false.into();
            let t = if negated { t.not() } else { t };
            return Ok(self.tribool_value(t));
        }
        let text = v.to_text_lenient().unwrap_or_default();
        let pat = p.to_text_lenient().unwrap_or_default();
        let matched = like_match(&pat, &text, self.case_sensitive_like);
        let t: TriBool = matched.into();
        let t = if negated { t.not() } else { t };
        Ok(self.tribool_value(t))
    }

    fn eval_function(
        &self,
        func: ScalarFunc,
        args: &[Expr],
        schema: &RowSchema,
        row: &[Value],
    ) -> EngineResult<Value> {
        let vals: Vec<Value> =
            args.iter().map(|a| self.eval(a, schema, row)).collect::<EngineResult<_>>()?;
        eval_scalar_function(func, &vals, self.dialect)
    }

    /// Casts a value to a target type under the dialect rules.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid casts in the strict dialect.
    pub fn cast(&self, v: Value, target: TypeName) -> EngineResult<Value> {
        if v.is_null() {
            return Ok(Value::Null);
        }
        match target {
            TypeName::Integer | TypeName::Serial => {
                if self.dialect.strict_typing() {
                    if let Value::Text(ref t) = v {
                        if t.trim().parse::<i64>().is_err() {
                            return Err(EngineError::semantic(format!(
                                "invalid input syntax for type integer: \"{t}\""
                            )));
                        }
                    }
                }
                Ok(Value::Integer(v.to_integer_lenient().unwrap_or(0)))
            }
            TypeName::TinyInt => {
                let i = v.to_integer_lenient().unwrap_or(0);
                Ok(Value::Integer(i.clamp(-128, 127)))
            }
            TypeName::Unsigned => {
                let i = v.to_integer_lenient().unwrap_or(0);
                if i < 0 {
                    // Injected fault: negative values keep their sign instead
                    // of wrapping into the unsigned domain (Listing 11).
                    if self.bugs.is_enabled(BugId::MysqlUnsignedCastNegativeCompare) {
                        Ok(Value::Integer(i))
                    } else {
                        Ok(Value::Integer(i64::MAX))
                    }
                } else {
                    Ok(Value::Integer(i))
                }
            }
            TypeName::Real => Ok(Value::Real(v.to_real_lenient().unwrap_or(0.0))),
            TypeName::Text => Ok(Value::Text(v.to_text_lenient().unwrap_or_default())),
            TypeName::Blob => match v {
                Value::Blob(b) => Ok(Value::Blob(b)),
                other => Ok(Value::Blob(other.to_text_lenient().unwrap_or_default().into_bytes())),
            },
            TypeName::Boolean => {
                if self.dialect.strict_typing() {
                    match &v {
                        Value::Boolean(_) => Ok(v),
                        Value::Integer(i) => Ok(Value::Boolean(*i != 0)),
                        Value::Text(t) => match t.trim().to_ascii_lowercase().as_str() {
                            "t" | "true" | "yes" | "on" | "1" => Ok(Value::Boolean(true)),
                            "f" | "false" | "no" | "off" | "0" => Ok(Value::Boolean(false)),
                            _ => Err(EngineError::semantic(format!(
                                "invalid input syntax for type boolean: \"{t}\""
                            ))),
                        },
                        _ => Err(EngineError::semantic("cannot cast this type to boolean")),
                    }
                } else {
                    Ok(self.tribool_value(v.to_tribool_lenient()))
                }
            }
        }
    }

    /// The static type of a column-reference expression, if it is one.
    fn column_type(&self, expr: &Expr, schema: &RowSchema) -> Option<TypeName> {
        match expr {
            Expr::Column(c) => schema.resolve(c).and_then(|(_, meta)| meta.type_name),
            Expr::Collate { expr, .. } | Expr::Cast { expr, .. } => self.column_type(expr, schema),
            _ => None,
        }
    }

    /// The collation governing comparisons over an expression.
    #[must_use]
    pub fn collation_of(&self, expr: &Expr, schema: &RowSchema) -> Collation {
        match expr {
            Expr::Collate { collation, .. } => *collation,
            Expr::Column(c) => {
                schema.resolve(c).map(|(_, meta)| meta.collation).unwrap_or_default()
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => self.collation_of(expr, schema),
            Expr::Binary { op: BinaryOp::Concat, left, right } => {
                let l = self.collation_of(left, schema);
                if l != Collation::Binary {
                    l
                } else {
                    self.collation_of(right, schema)
                }
            }
            _ => Collation::Binary,
        }
    }

    pub(crate) fn comparison_collation(
        &self,
        left: &Expr,
        right: &Expr,
        schema: &RowSchema,
    ) -> Collation {
        if !self.dialect.has_collations() {
            return Collation::Binary;
        }
        let l = self.collation_of(left, schema);
        if l != Collation::Binary {
            l
        } else {
            self.collation_of(right, schema)
        }
    }

    /// Three-valued comparison; `None` means unknown (a NULL operand).
    #[must_use]
    pub fn compare_tri(
        &self,
        a: &Value,
        b: &Value,
        collation: Collation,
    ) -> Option<std::cmp::Ordering> {
        if a.is_null() || b.is_null() {
            return None;
        }
        // Injected fault: RTRIM comparisons trim both sides (Listing 5).
        if self.bugs.is_enabled(BugId::SqliteRtrimComparisonTrimsBothSides)
            && collation == Collation::Rtrim
        {
            if let (Value::Text(x), Value::Text(y)) = (a, b) {
                return Some(x.trim().cmp(y.trim()));
            }
        }
        Some(a.total_cmp(b, collation))
    }

    /// Maps a three-valued comparison onto one of the six ordering
    /// operators.  Shared by the scalar comparison arm above and the
    /// vectorised filter kernels in `exec::colbatch`, so both layouts
    /// decide comparisons with literally the same code.  Callers apply
    /// any fault-driven operand mutations *before* this point.
    pub(crate) fn compare_values_tri(
        &self,
        op: BinaryOp,
        lv: &Value,
        rv: &Value,
        coll: Collation,
    ) -> TriBool {
        match self.compare_tri(lv, rv, coll) {
            None => TriBool::Unknown,
            Some(ord) => {
                let b = match op {
                    BinaryOp::Eq => ord == std::cmp::Ordering::Equal,
                    BinaryOp::Ne => ord != std::cmp::Ordering::Equal,
                    BinaryOp::Lt => ord == std::cmp::Ordering::Less,
                    BinaryOp::Le => ord != std::cmp::Ordering::Greater,
                    BinaryOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinaryOp::Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!("compare_values_tri is only called with ordering operators"),
                };
                b.into()
            }
        }
    }

    fn values_equal_nullsafe(&self, a: &Value, b: &Value, collation: Collation) -> bool {
        match (a.is_null(), b.is_null()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => self.compare_tri(a, b, collation) == Some(std::cmp::Ordering::Equal),
        }
    }

    fn coerce_numeric_or_error(&self, v: &Value, op: &str) -> EngineResult<Num> {
        match v {
            Value::Integer(i) => Ok(Num::Int(*i)),
            Value::Real(r) => Ok(Num::Real(*r)),
            Value::Boolean(b) => Ok(Num::Int(i64::from(*b))),
            Value::Text(t) => {
                if self.dialect.strict_typing() {
                    Err(EngineError::semantic(format!(
                        "invalid input syntax for numeric operator {op}: \"{t}\""
                    )))
                } else {
                    let r = text_numeric_prefix(t);
                    if r.fract() == 0.0 && r.abs() < 9.2e18 && !t.contains('.') && !t.contains('e')
                    {
                        Ok(Num::Int(text_integer_prefix(t)))
                    } else {
                        Ok(Num::Real(r))
                    }
                }
            }
            Value::Blob(_) => {
                if self.dialect.strict_typing() {
                    Err(EngineError::semantic("operator does not accept bytea operands"))
                } else {
                    Ok(Num::Int(0))
                }
            }
            Value::Null => Ok(Num::Int(0)),
        }
    }

    fn to_integer(&self, v: &Value, op: &str) -> EngineResult<i64> {
        match self.coerce_numeric_or_error(v, op)? {
            Num::Int(i) => Ok(i),
            Num::Real(r) => Ok(real_to_int_saturating(r)),
        }
    }
}

/// Internal numeric union used by arithmetic.
#[derive(Debug, Clone, Copy)]
enum Num {
    Int(i64),
    Real(f64),
}

impl Num {
    fn as_real(self) -> f64 {
        match self {
            Num::Int(i) => i as f64,
            Num::Real(r) => r,
        }
    }
}

/// SQL `LIKE` matching with `%` and `_` wildcards.
#[must_use]
pub fn like_match(pattern: &str, text: &str, case_sensitive: bool) -> bool {
    let (p, t) = if case_sensitive {
        (pattern.to_owned(), text.to_owned())
    } else {
        (pattern.to_ascii_lowercase(), text.to_ascii_lowercase())
    };
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => (0..=t.len()).any(|k| rec(rest, &t[k..])),
            Some(('_', rest)) => !t.is_empty() && rec(rest, &t[1..]),
            Some((c, rest)) => t.first() == Some(c) && rec(rest, &t[1..]),
        }
    }
    let pc: Vec<char> = p.chars().collect();
    let tc: Vec<char> = t.chars().collect();
    rec(&pc, &tc)
}

/// Evaluates a scalar function over already-evaluated arguments.
///
/// Exposed so that the aggregate executor can reuse it.
///
/// # Errors
///
/// Returns an error for argument values the function does not accept in the
/// strict dialect.
pub fn eval_scalar_function(
    func: ScalarFunc,
    vals: &[Value],
    dialect: Dialect,
) -> EngineResult<Value> {
    let first = || vals.first().cloned().unwrap_or(Value::Null);
    match func {
        ScalarFunc::Abs => match first() {
            Value::Null => Ok(Value::Null),
            Value::Integer(i) => Ok(Value::Integer(i.checked_abs().unwrap_or(i64::MAX))),
            Value::Real(r) => Ok(Value::Real(r.abs())),
            Value::Boolean(b) => Ok(Value::Integer(i64::from(b))),
            other => {
                if dialect.strict_typing() {
                    Err(EngineError::semantic("function abs() does not accept this type"))
                } else {
                    Ok(Value::Real(other.to_real_lenient().unwrap_or(0.0).abs()))
                }
            }
        },
        ScalarFunc::Length => match first() {
            Value::Null => Ok(Value::Null),
            Value::Blob(b) => Ok(Value::Integer(b.len() as i64)),
            other => Ok(Value::Integer(
                other.to_text_lenient().unwrap_or_default().chars().count() as i64,
            )),
        },
        ScalarFunc::Lower => match first() {
            Value::Null => Ok(Value::Null),
            other => Ok(Value::Text(other.to_text_lenient().unwrap_or_default().to_lowercase())),
        },
        ScalarFunc::Upper => match first() {
            Value::Null => Ok(Value::Null),
            other => Ok(Value::Text(other.to_text_lenient().unwrap_or_default().to_uppercase())),
        },
        ScalarFunc::Coalesce => {
            for v in vals {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        ScalarFunc::IfNull => {
            let a = first();
            if a.is_null() {
                Ok(vals.get(1).cloned().unwrap_or(Value::Null))
            } else {
                Ok(a)
            }
        }
        ScalarFunc::NullIf => {
            let a = first();
            let b = vals.get(1).cloned().unwrap_or(Value::Null);
            if !a.is_null() && !b.is_null() && a.same_as(&b) {
                Ok(Value::Null)
            } else {
                Ok(a)
            }
        }
        ScalarFunc::Min | ScalarFunc::Max => {
            if vals.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let mut best = vals.first().cloned().unwrap_or(Value::Null);
            for v in &vals[1..] {
                let ord = v.total_cmp(&best, Collation::Binary);
                let better = if func == ScalarFunc::Min {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                };
                if better {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        ScalarFunc::Hex => match first() {
            Value::Null => Ok(Value::Null),
            Value::Blob(b) => {
                Ok(Value::Text(b.iter().map(|x| format!("{x:02X}")).collect::<String>()))
            }
            other => {
                let t = other.to_text_lenient().unwrap_or_default();
                Ok(Value::Text(t.bytes().map(|x| format!("{x:02X}")).collect::<String>()))
            }
        },
        ScalarFunc::TypeOf => Ok(Value::Text(first().storage_class().to_string())),
        ScalarFunc::Trim => match first() {
            Value::Null => Ok(Value::Null),
            other => Ok(Value::Text(other.to_text_lenient().unwrap_or_default().trim().to_owned())),
        },
        ScalarFunc::Ltrim => match first() {
            Value::Null => Ok(Value::Null),
            other => {
                Ok(Value::Text(other.to_text_lenient().unwrap_or_default().trim_start().to_owned()))
            }
        },
        ScalarFunc::Rtrim => match first() {
            Value::Null => Ok(Value::Null),
            other => {
                Ok(Value::Text(other.to_text_lenient().unwrap_or_default().trim_end().to_owned()))
            }
        },
        ScalarFunc::Replace => {
            if vals.iter().take(3).any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s = vals[0].to_text_lenient().unwrap_or_default();
            let from = vals[1].to_text_lenient().unwrap_or_default();
            let to = vals[2].to_text_lenient().unwrap_or_default();
            if from.is_empty() {
                Ok(Value::Text(s))
            } else {
                Ok(Value::Text(s.replace(&from, &to)))
            }
        }
        ScalarFunc::Substr => {
            if vals.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s = vals[0].to_text_lenient().unwrap_or_default();
            let chars: Vec<char> = s.chars().collect();
            let start = vals[1].to_integer_lenient().unwrap_or(1);
            let len = vals.get(2).and_then(Value::to_integer_lenient).unwrap_or(i64::MAX);
            if len < 0 {
                return Ok(Value::Text(String::new()));
            }
            // SQL SUBSTR is 1-based; 0 and negative starts follow SQLite rules
            // (negative counts from the end).
            let begin: i64 = if start > 0 {
                start - 1
            } else if start < 0 {
                (chars.len() as i64 + start).max(0)
            } else {
                0
            };
            let begin = begin.clamp(0, chars.len() as i64) as usize;
            let end = (begin as i64).saturating_add(len).clamp(0, chars.len() as i64) as usize;
            Ok(Value::Text(chars[begin..end].iter().collect()))
        }
        ScalarFunc::Instr => {
            if vals.iter().take(2).any(Value::is_null) {
                return Ok(Value::Null);
            }
            let hay = vals[0].to_text_lenient().unwrap_or_default();
            let needle = vals[1].to_text_lenient().unwrap_or_default();
            if needle.is_empty() {
                return Ok(Value::Integer(if hay.is_empty() { 0 } else { 1 }));
            }
            match hay.find(&needle) {
                Some(byte_pos) => {
                    let char_pos = hay[..byte_pos].chars().count() as i64 + 1;
                    Ok(Value::Integer(char_pos))
                }
                None => Ok(Value::Integer(0)),
            }
        }
    }
}

/// Evaluates an aggregate function over a column of values (one per row).
///
/// # Errors
///
/// Returns an error if `SUM`/`AVG` is applied to values that cannot be
/// interpreted numerically in the strict dialect.
pub fn eval_aggregate(
    func: AggFunc,
    values: &[Value],
    distinct: bool,
    dialect: Dialect,
) -> EngineResult<Value> {
    let mut vals: Vec<Value> = values.iter().filter(|v| !v.is_null()).cloned().collect();
    if distinct {
        let mut seen: Vec<Value> = Vec::new();
        vals.retain(|v| {
            if seen.iter().any(|s| s.same_as(v)) {
                false
            } else {
                seen.push(v.clone());
                true
            }
        });
    }
    match func {
        AggFunc::Count => Ok(Value::Integer(vals.len() as i64)),
        AggFunc::Min | AggFunc::Max => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut best = vals[0].clone();
            for v in &vals[1..] {
                let ord = v.total_cmp(&best, Collation::Binary);
                let better = if func == AggFunc::Min {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                };
                if better {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        AggFunc::Sum | AggFunc::Avg => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut all_int = true;
            let mut sum_i: i64 = 0;
            let mut sum_f: f64 = 0.0;
            for v in &vals {
                match v {
                    Value::Integer(i) => {
                        sum_f += *i as f64;
                        match sum_i.checked_add(*i) {
                            Some(s) => sum_i = s,
                            None => all_int = false,
                        }
                    }
                    Value::Real(r) => {
                        all_int = false;
                        sum_f += r;
                    }
                    Value::Boolean(b) => {
                        sum_f += f64::from(u8::from(*b));
                        sum_i = sum_i.saturating_add(i64::from(*b));
                    }
                    other => {
                        if dialect.strict_typing() {
                            return Err(EngineError::semantic("function sum(text) does not exist"));
                        }
                        all_int = false;
                        sum_f += other.to_real_lenient().unwrap_or(0.0);
                    }
                }
            }
            if func == AggFunc::Avg {
                Ok(Value::Real(sum_f / vals.len() as f64))
            } else if all_int {
                Ok(Value::Integer(sum_i))
            } else {
                Ok(Value::Real(sum_f))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancer_sql::parser::parse_expression;

    fn eval_const(dialect: Dialect, sql: &str) -> EngineResult<Value> {
        let bugs = BugProfile::none();
        let ev = Evaluator::new(dialect, &bugs);
        let e = parse_expression(sql).unwrap();
        ev.eval(&e, &RowSchema::empty(), &[])
    }

    #[test]
    fn three_valued_logic_over_null() {
        assert_eq!(eval_const(Dialect::Sqlite, "NULL AND 0").unwrap(), Value::Integer(0));
        assert_eq!(eval_const(Dialect::Sqlite, "NULL AND 1").unwrap(), Value::Null);
        assert_eq!(eval_const(Dialect::Sqlite, "NULL OR 1").unwrap(), Value::Integer(1));
        assert_eq!(eval_const(Dialect::Sqlite, "NOT NULL").unwrap(), Value::Null);
        assert_eq!(eval_const(Dialect::Sqlite, "NULL = NULL").unwrap(), Value::Null);
        assert_eq!(eval_const(Dialect::Sqlite, "NULL IS NULL").unwrap(), Value::Integer(1));
    }

    #[test]
    fn scalar_is_not_only_in_sqlite() {
        assert_eq!(eval_const(Dialect::Sqlite, "NULL IS NOT 1").unwrap(), Value::Integer(1));
        assert!(eval_const(Dialect::Postgres, "NULL IS NOT 1").is_err());
        assert!(eval_const(Dialect::Mysql, "2 IS NOT 1").is_err());
        assert_eq!(eval_const(Dialect::Mysql, "NULL <=> NULL").unwrap(), Value::Integer(1));
        assert!(eval_const(Dialect::Sqlite, "NULL <=> NULL").is_err());
    }

    #[test]
    fn arithmetic_and_division() {
        assert_eq!(eval_const(Dialect::Sqlite, "1 + 2 * 3").unwrap(), Value::Integer(7));
        assert_eq!(eval_const(Dialect::Sqlite, "7 / 2").unwrap(), Value::Integer(3));
        assert_eq!(eval_const(Dialect::Sqlite, "7 % 0").unwrap(), Value::Null);
        assert_eq!(eval_const(Dialect::Sqlite, "1 / 0").unwrap(), Value::Null);
        assert!(eval_const(Dialect::Postgres, "1 / 0").is_err());
        // Overflow promotes to real.
        assert!(matches!(
            eval_const(Dialect::Sqlite, "9223372036854775807 + 1").unwrap(),
            Value::Real(_)
        ));
        // Text minus integer keeps exact integer semantics without the fault.
        assert_eq!(
            eval_const(Dialect::Sqlite, "'' - 2851427734582196970").unwrap(),
            Value::Integer(-2851427734582196970)
        );
    }

    #[test]
    fn division_overflow_promotes_to_real_in_every_dialect() {
        // `i64::MIN / -1` (and `% -1`) cannot be represented as an
        // integer; like `+`/`-`/`*` overflow, the result promotes to
        // REAL instead of silently wrapping back to `i64::MIN`.
        const MIN: &str = "(-9223372036854775807 - 1)";
        for d in [Dialect::Sqlite, Dialect::Mysql, Dialect::Postgres, Dialect::Duckdb] {
            assert_eq!(
                eval_const(d, &format!("{MIN} / -1")).unwrap(),
                Value::Real(9_223_372_036_854_775_808.0),
                "{d:?}: MIN / -1 must promote"
            );
            assert_eq!(
                eval_const(d, &format!("{MIN} % -1")).unwrap(),
                Value::Real(0.0),
                "{d:?}: MIN % -1 must promote"
            );
            // Plain divisions stay integer.
            assert_eq!(eval_const(d, "7 / -1").unwrap(), Value::Integer(-7));
            assert_eq!(eval_const(d, &format!("{MIN} / 1")).unwrap(), Value::Integer(i64::MIN));
        }
    }

    #[test]
    fn text_arithmetic_strictness() {
        assert_eq!(eval_const(Dialect::Sqlite, "'3abc' + 1").unwrap(), Value::Integer(4));
        assert!(eval_const(Dialect::Postgres, "'3abc' + 1").is_err());
    }

    #[test]
    fn comparisons_and_collations() {
        assert_eq!(eval_const(Dialect::Sqlite, "1 < 2").unwrap(), Value::Integer(1));
        assert_eq!(eval_const(Dialect::Sqlite, "'a' = 'A'").unwrap(), Value::Integer(0));
        assert_eq!(
            eval_const(Dialect::Sqlite, "'a' = 'A' COLLATE NOCASE").unwrap(),
            Value::Integer(1)
        );
        assert_eq!(
            eval_const(Dialect::Sqlite, "'x  ' = 'x' COLLATE RTRIM").unwrap(),
            Value::Integer(1)
        );
        // Cross-class: numbers sort before text.
        assert_eq!(eval_const(Dialect::Sqlite, "5 < 'a'").unwrap(), Value::Integer(1));
    }

    #[test]
    fn like_matching() {
        assert_eq!(eval_const(Dialect::Sqlite, "'abc' LIKE 'a%'").unwrap(), Value::Integer(1));
        assert_eq!(eval_const(Dialect::Sqlite, "'abc' LIKE 'A_C'").unwrap(), Value::Integer(1));
        assert_eq!(eval_const(Dialect::Sqlite, "'abc' NOT LIKE 'x%'").unwrap(), Value::Integer(1));
        assert_eq!(eval_const(Dialect::Sqlite, "NULL LIKE 'x%'").unwrap(), Value::Null);
        assert!(like_match("./", "./", false));
        assert!(!like_match("a", "ab", false));
        assert!(like_match("%", "", false));
    }

    #[test]
    fn between_and_in() {
        assert_eq!(eval_const(Dialect::Sqlite, "2 BETWEEN 1 AND 3").unwrap(), Value::Integer(1));
        assert_eq!(
            eval_const(Dialect::Sqlite, "2 NOT BETWEEN 1 AND 3").unwrap(),
            Value::Integer(0)
        );
        assert_eq!(eval_const(Dialect::Sqlite, "NULL BETWEEN 1 AND 3").unwrap(), Value::Null);
        assert_eq!(eval_const(Dialect::Sqlite, "2 IN (1, 2, 3)").unwrap(), Value::Integer(1));
        assert_eq!(eval_const(Dialect::Sqlite, "5 IN (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_const(Dialect::Sqlite, "5 NOT IN (1, 2)").unwrap(), Value::Integer(1));
    }

    #[test]
    fn case_and_cast() {
        assert_eq!(
            eval_const(Dialect::Sqlite, "CASE WHEN 1 THEN 'a' ELSE 'b' END").unwrap(),
            Value::Text("a".into())
        );
        assert_eq!(
            eval_const(Dialect::Sqlite, "CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END").unwrap(),
            Value::Text("b".into())
        );
        assert_eq!(eval_const(Dialect::Sqlite, "CASE WHEN 0 THEN 'a' END").unwrap(), Value::Null);
        assert_eq!(
            eval_const(Dialect::Sqlite, "CAST('42abc' AS INT)").unwrap(),
            Value::Integer(42)
        );
        assert!(eval_const(Dialect::Postgres, "CAST('42abc' AS INT)").is_err());
        assert_eq!(
            eval_const(Dialect::Mysql, "CAST(-1 AS UNSIGNED)").unwrap(),
            Value::Integer(i64::MAX),
            "negative casts saturate to the unsigned stand-in without the fault"
        );
        assert_eq!(
            eval_const(Dialect::Postgres, "CAST('true' AS BOOLEAN)").unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn functions() {
        assert_eq!(eval_const(Dialect::Sqlite, "ABS(-3)").unwrap(), Value::Integer(3));
        assert_eq!(eval_const(Dialect::Sqlite, "LENGTH('abc')").unwrap(), Value::Integer(3));
        assert_eq!(eval_const(Dialect::Sqlite, "COALESCE(NULL, 2)").unwrap(), Value::Integer(2));
        assert_eq!(
            eval_const(Dialect::Sqlite, "IFNULL(NULL, 'x')").unwrap(),
            Value::Text("x".into())
        );
        assert_eq!(eval_const(Dialect::Sqlite, "NULLIF(1, 1)").unwrap(), Value::Null);
        assert_eq!(eval_const(Dialect::Sqlite, "MIN(3, 1, 2)").unwrap(), Value::Integer(1));
        assert_eq!(eval_const(Dialect::Sqlite, "HEX('AB')").unwrap(), Value::Text("4142".into()));
        assert_eq!(eval_const(Dialect::Sqlite, "TYPEOF(1.5)").unwrap(), Value::Text("real".into()));
        assert_eq!(eval_const(Dialect::Sqlite, "TRIM('  a ')").unwrap(), Value::Text("a".into()));
        assert_eq!(
            eval_const(Dialect::Sqlite, "REPLACE('abcabc', 'b', 'x')").unwrap(),
            Value::Text("axcaxc".into())
        );
        assert_eq!(
            eval_const(Dialect::Sqlite, "SUBSTR('hello', 2, 3)").unwrap(),
            Value::Text("ell".into())
        );
        assert_eq!(
            eval_const(Dialect::Sqlite, "SUBSTR('hello', -3)").unwrap(),
            Value::Text("llo".into())
        );
        assert_eq!(eval_const(Dialect::Sqlite, "INSTR('hello', 'll')").unwrap(), Value::Integer(3));
        assert_eq!(eval_const(Dialect::Sqlite, "INSTR('hello', 'z')").unwrap(), Value::Integer(0));
        assert_eq!(eval_const(Dialect::Sqlite, "UPPER('ab')").unwrap(), Value::Text("AB".into()));
    }

    #[test]
    fn postgres_strict_where_typing() {
        let bugs = BugProfile::none();
        let ev = Evaluator::new(Dialect::Postgres, &bugs);
        let e = parse_expression("1 + 1").unwrap();
        assert!(ev.eval_predicate(&e, &RowSchema::empty(), &[]).is_err());
        let e = parse_expression("1 < 2").unwrap();
        assert_eq!(ev.eval_predicate(&e, &RowSchema::empty(), &[]).unwrap(), TriBool::True);
        let lenient = Evaluator::new(Dialect::Sqlite, &bugs);
        let e = parse_expression("2").unwrap();
        assert_eq!(lenient.eval_predicate(&e, &RowSchema::empty(), &[]).unwrap(), TriBool::True);
    }

    #[test]
    fn aggregates() {
        let vals = vec![Value::Integer(1), Value::Null, Value::Integer(3), Value::Integer(1)];
        assert_eq!(
            eval_aggregate(AggFunc::Count, &vals, false, Dialect::Sqlite).unwrap(),
            Value::Integer(3)
        );
        assert_eq!(
            eval_aggregate(AggFunc::Count, &vals, true, Dialect::Sqlite).unwrap(),
            Value::Integer(2)
        );
        assert_eq!(
            eval_aggregate(AggFunc::Sum, &vals, false, Dialect::Sqlite).unwrap(),
            Value::Integer(5)
        );
        assert_eq!(
            eval_aggregate(AggFunc::Min, &vals, false, Dialect::Sqlite).unwrap(),
            Value::Integer(1)
        );
        assert_eq!(
            eval_aggregate(AggFunc::Max, &vals, false, Dialect::Sqlite).unwrap(),
            Value::Integer(3)
        );
        assert_eq!(
            eval_aggregate(AggFunc::Avg, &vals, true, Dialect::Sqlite).unwrap(),
            Value::Real(2.0)
        );
        assert_eq!(eval_aggregate(AggFunc::Sum, &[], false, Dialect::Sqlite).unwrap(), Value::Null);
        assert!(eval_aggregate(AggFunc::Sum, &[Value::Text("a".into())], false, Dialect::Postgres)
            .is_err());
    }

    #[test]
    fn value_level_fault_hooks_change_results() {
        // Text-minus-integer precision loss (Listing 2).
        let bugs = BugProfile::with(&[BugId::SqliteTextMinusIntegerPrecision]);
        let ev = Evaluator::new(Dialect::Sqlite, &bugs);
        let e = parse_expression("'' - 2851427734582196970").unwrap();
        let buggy = ev.eval(&e, &RowSchema::empty(), &[]).unwrap();
        assert_ne!(buggy, Value::Integer(-2851427734582196970));

        // Unsigned cast keeps the negative value (Listing 11).
        let bugs = BugProfile::with(&[BugId::MysqlUnsignedCastNegativeCompare]);
        let ev = Evaluator::new(Dialect::Mysql, &bugs);
        let e = parse_expression("CAST(-1 AS UNSIGNED)").unwrap();
        assert_eq!(ev.eval(&e, &RowSchema::empty(), &[]).unwrap(), Value::Integer(-1));

        // Double negation folded (Listing 13).
        let bugs = BugProfile::with(&[BugId::MysqlDoubleNegationFolded]);
        let ev = Evaluator::new(Dialect::Mysql, &bugs);
        let e = parse_expression("NOT (NOT 123)").unwrap();
        assert_eq!(ev.eval(&e, &RowSchema::empty(), &[]).unwrap(), Value::Integer(123));

        // LIKE escape crash.
        let bugs = BugProfile::with(&[BugId::SqliteLikeEscapeCrash]);
        let ev = Evaluator::new(Dialect::Sqlite, &bugs);
        let e = parse_expression("'abc' LIKE 'a\\'").unwrap();
        let err = ev.eval(&e, &RowSchema::empty(), &[]).unwrap_err();
        assert!(err.is_crash());
    }

    #[test]
    fn small_double_text_fault_only_changes_boolean_context() {
        let bugs = BugProfile::with(&[BugId::MysqlSmallDoubleTextFalse]);
        let ev = Evaluator::new(Dialect::Mysql, &bugs);
        assert_eq!(ev.value_to_tribool(&Value::Text("0.5".into())).unwrap(), TriBool::False);
        let clean = BugProfile::none();
        let ev = Evaluator::new(Dialect::Mysql, &clean);
        assert_eq!(ev.value_to_tribool(&Value::Text("0.5".into())).unwrap(), TriBool::True);
    }
}
