//! Engine execution errors.

use std::fmt;

use lancer_storage::StorageError;

/// The class of an execution error, used by the PQS error oracle to decide
/// whether an error was expected for a given statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// A constraint violation (`UNIQUE`, `NOT NULL`, `CHECK`).
    Constraint,
    /// A semantic error (unknown table/column, type error in a strict
    /// dialect, unsupported feature).
    Semantic,
    /// Database corruption ("malformed disk image"); *always* unexpected.
    Corruption,
    /// An internal DBMS error that should never surface to the client
    /// (e.g. "negative bitmapset member not allowed"); always unexpected.
    Internal,
    /// A simulated process crash (SEGFAULT); always unexpected.
    Crash,
}

/// An error produced while executing a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// The error class.
    pub class: ErrorClass,
    /// The DBMS-style error message.
    pub message: String,
}

impl EngineError {
    /// Creates a constraint-violation error.
    #[must_use]
    pub fn constraint(message: impl Into<String>) -> Self {
        EngineError { class: ErrorClass::Constraint, message: message.into() }
    }

    /// Creates a semantic error.
    #[must_use]
    pub fn semantic(message: impl Into<String>) -> Self {
        EngineError { class: ErrorClass::Semantic, message: message.into() }
    }

    /// Creates a corruption error.
    #[must_use]
    pub fn corruption(message: impl Into<String>) -> Self {
        EngineError { class: ErrorClass::Corruption, message: message.into() }
    }

    /// Creates an internal error.
    #[must_use]
    pub fn internal(message: impl Into<String>) -> Self {
        EngineError { class: ErrorClass::Internal, message: message.into() }
    }

    /// Creates a simulated crash.
    #[must_use]
    pub fn crash(message: impl Into<String>) -> Self {
        EngineError { class: ErrorClass::Crash, message: message.into() }
    }

    /// Returns `true` for simulated crashes.
    #[must_use]
    pub fn is_crash(&self) -> bool {
        self.class == ErrorClass::Crash
    }

    /// Returns `true` for errors that the error oracle must always treat as
    /// bugs regardless of the executed statement (corruption, internal
    /// errors, crashes).
    #[must_use]
    pub fn always_unexpected(&self) -> bool {
        matches!(self.class, ErrorClass::Corruption | ErrorClass::Internal | ErrorClass::Crash)
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        let class = match &e {
            StorageError::UniqueViolation { .. } | StorageError::NotNullViolation { .. } => {
                ErrorClass::Constraint
            }
            StorageError::Corruption(_) => ErrorClass::Corruption,
            StorageError::Internal(_) => ErrorClass::Internal,
            _ => ErrorClass::Semantic,
        };
        EngineError { class, message: e.to_string() }
    }
}

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_map_to_expected_classes() {
        let e: EngineError = StorageError::UniqueViolation { constraint: "t0.c0".into() }.into();
        assert_eq!(e.class, ErrorClass::Constraint);
        let e: EngineError = StorageError::Corruption("index i0".into()).into();
        assert_eq!(e.class, ErrorClass::Corruption);
        assert!(e.always_unexpected());
        let e: EngineError = StorageError::NoSuchTable("t9".into()).into();
        assert_eq!(e.class, ErrorClass::Semantic);
        assert!(!e.always_unexpected());
    }

    #[test]
    fn crash_detection() {
        assert!(EngineError::crash("SEGFAULT").is_crash());
        assert!(!EngineError::semantic("no such column").is_crash());
    }
}
