//! Deterministic query planning and plan fingerprinting.
//!
//! Query-plan guidance ("Testing Database Engines via Query Plan Guidance",
//! Ba & Rigger) steers test-case generation toward *states the DBMS has not
//! planned before*: every query is planned, the plan is reduced to a stable
//! fingerprint, and generation mutates the database whenever no new
//! fingerprints show up.  This module provides the planner side of that
//! loop for the emulated engine:
//!
//! * [`QueryPlan`] — a deterministic tree computed **from the catalog
//!   alone** (tables, indexes, `ANALYZE` state, dialect), before and
//!   independent of execution.  Planning never touches row data, so it is
//!   side-effect free and cheap enough to run per generated query.
//! * [`PlanFingerprint`] — an FNV-1a hash of the plan's stable text
//!   rendering.  Two queries receive the same fingerprint exactly when the
//!   engine would execute them the same way structurally.
//! * `EXPLAIN <query>` — [`Engine::explain`] backs the SQL-level statement,
//!   returning the rendered plan as result rows like a real DBMS.
//!
//! The plan follows the executor's strategy shapes (`exec/query.rs`): a
//! single-table equality predicate probes an index when one matches,
//! everything else is a full scan; base tables are joined left-deep in
//! `FROM`-list order followed by the explicit `JOIN` clauses; filters
//! over a single source are pushed into the scan.  On top of those
//! shapes the planner models decisions a *real* DBMS planner makes even
//! where the emulated executor is simpler, so they become part of plan
//! identity for QPG coverage:
//!
//! * **collation-aware index eligibility** per [`Dialect`] — on a dialect
//!   with collations, a text probe only uses an index whose first-key
//!   collation matches the column's (the executor's fast path is
//!   deliberately collation-oblivious; that gap is the class of decision
//!   the paper's §4.4 collation bugs hide in),
//! * **covering-index detection** — the executor always fetches base
//!   rows, but which access path *could* answer from the index alone is
//!   a planner-level distinction,
//! * **`ANALYZE` statistics as plan state** — statistics change plans in
//!   every real DBMS; here they flag the rendered scan even though the
//!   emulated executor only consults them in fault-gated paths.

use std::fmt;

use lancer_sql::ast::expr::Expr;
use lancer_sql::ast::stmt::{CompoundOp, JoinKind, Query, Select, SelectItem};
use lancer_sql::value::Value;

use crate::dialect::Dialect;
use crate::exec::access::{find_equality_probe, probe_blocked_by_inheritance, probe_candidates};
use crate::exec::Engine;

/// A stable 64-bit digest of a [`QueryPlan`]'s text rendering.
///
/// Fingerprints are the unit of plan coverage: a QPG campaign counts how
/// many distinct fingerprints it has observed and mutates state when the
/// count stops growing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanFingerprint(pub u64);

impl fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// How a single `FROM` source is accessed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanKind {
    /// Read every row of the table.
    Full,
    /// Read every row, materialising column vectors instead of rows (the
    /// columnar dialect's layout; part of plan identity so fingerprints
    /// distinguish the two layouts).
    ColumnarScan,
    /// Probe the named index, then fetch matching rows from the table.
    Index {
        /// The chosen index.
        index: String,
    },
    /// Answer the query from the named index alone (every referenced
    /// column is part of the index key).
    CoveringIndex {
        /// The chosen index.
        index: String,
    },
}

/// One node of a [`QueryPlan`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanNode {
    /// A base-table access path.
    Scan {
        /// The scanned table.
        table: String,
        /// The access strategy.
        kind: ScanKind,
        /// Whether the `WHERE` clause is evaluated inside the scan
        /// (single-source queries) rather than in a separate filter node.
        pushed_filter: bool,
        /// Whether `ANALYZE` statistics exist for the table.  Statistics
        /// are part of plan identity — as in a real DBMS planner — even
        /// though the emulated executor only consults them in fault-gated
        /// paths (the skip-scan DISTINCT shape).
        analyzed: bool,
    },
    /// A view reference, planned as its defining query.
    View {
        /// The view name.
        name: String,
        /// The plan of the defining query.
        input: Box<PlanNode>,
    },
    /// A `FROM` source that does not exist in the catalog (the plan is
    /// still produced; execution would error).
    Missing {
        /// The unresolved name.
        table: String,
    },
    /// A constant row source (`SELECT` without `FROM`).
    Values,
    /// A left-deep join of two inputs.
    Join {
        /// The join kind (comma/`CROSS`, `INNER`, `LEFT`).
        kind: JoinKind,
        /// Left input (everything joined so far).
        left: Box<PlanNode>,
        /// Right input (the next source).
        right: Box<PlanNode>,
    },
    /// A residual `WHERE` filter over a multi-source input.
    Filter {
        /// The filtered input.
        input: Box<PlanNode>,
    },
    /// Grouping / aggregation.
    Aggregate {
        /// Number of `GROUP BY` keys (0 for a bare aggregate).
        group_keys: usize,
        /// The aggregated input.
        input: Box<PlanNode>,
    },
    /// `SELECT DISTINCT` deduplication.
    Distinct {
        /// The deduplicated input.
        input: Box<PlanNode>,
    },
    /// An `ORDER BY` sort.
    Sort {
        /// Number of ordering terms.
        terms: usize,
        /// The sorted input.
        input: Box<PlanNode>,
    },
    /// `LIMIT` / `OFFSET` truncation.
    Limit {
        /// The truncated input.
        input: Box<PlanNode>,
    },
    /// A compound query (`UNION` / `INTERSECT` / `EXCEPT`).
    Compound {
        /// The set operator.
        op: CompoundOp,
        /// Left operand plan.
        left: Box<PlanNode>,
        /// Right operand plan.
        right: Box<PlanNode>,
    },
}

/// A deterministic query plan: what the engine *would do* for a query
/// given the current catalog, computed without executing anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    root: PlanNode,
}

impl QueryPlan {
    /// The root node of the plan tree.
    #[must_use]
    pub fn root(&self) -> &PlanNode {
        &self.root
    }

    /// The plan rendered as stable, indented text (one node per line).
    /// Equal plans render identically; the rendering is what
    /// [`fingerprint`](QueryPlan::fingerprint) hashes and what `EXPLAIN`
    /// returns as rows.
    #[must_use]
    pub fn render(&self) -> Vec<String> {
        let mut lines = Vec::new();
        render_node(&self.root, 0, &mut lines);
        lines
    }

    /// The FNV-1a fingerprint of the rendered plan.
    #[must_use]
    pub fn fingerprint(&self) -> PlanFingerprint {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for line in self.render() {
            for byte in line.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= u64::from(b'\n');
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        PlanFingerprint(hash)
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, line) in self.render().iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            f.write_str(line)?;
        }
        Ok(())
    }
}

fn render_node(node: &PlanNode, depth: usize, out: &mut Vec<String>) {
    let pad = "  ".repeat(depth);
    match node {
        PlanNode::Scan { table, kind, pushed_filter, analyzed } => {
            let mut line = match kind {
                ScanKind::Full => format!("{pad}SCAN {table}"),
                ScanKind::ColumnarScan => format!("{pad}COLUMNAR SCAN {table}"),
                ScanKind::Index { index } => format!("{pad}SEARCH {table} USING INDEX {index}"),
                ScanKind::CoveringIndex { index } => {
                    format!("{pad}SEARCH {table} USING COVERING INDEX {index}")
                }
            };
            if *pushed_filter {
                line.push_str(" WITH FILTER");
            }
            if *analyzed {
                line.push_str(" (ANALYZED)");
            }
            out.push(line);
        }
        PlanNode::View { name, input } => {
            out.push(format!("{pad}VIEW {name}"));
            render_node(input, depth + 1, out);
        }
        PlanNode::Missing { table } => out.push(format!("{pad}MISSING {table}")),
        PlanNode::Values => out.push(format!("{pad}VALUES")),
        PlanNode::Join { kind, left, right } => {
            let label = match kind {
                JoinKind::Cross => "CROSS JOIN",
                JoinKind::Inner => "INNER JOIN",
                JoinKind::Left => "LEFT JOIN",
            };
            out.push(format!("{pad}{label}"));
            render_node(left, depth + 1, out);
            render_node(right, depth + 1, out);
        }
        PlanNode::Filter { input } => {
            out.push(format!("{pad}FILTER"));
            render_node(input, depth + 1, out);
        }
        PlanNode::Aggregate { group_keys, input } => {
            out.push(format!("{pad}AGGREGATE (GROUP BY {group_keys})"));
            render_node(input, depth + 1, out);
        }
        PlanNode::Distinct { input } => {
            out.push(format!("{pad}DISTINCT"));
            render_node(input, depth + 1, out);
        }
        PlanNode::Sort { terms, input } => {
            out.push(format!("{pad}SORT ({terms} terms)"));
            render_node(input, depth + 1, out);
        }
        PlanNode::Limit { input } => {
            out.push(format!("{pad}LIMIT"));
            render_node(input, depth + 1, out);
        }
        PlanNode::Compound { op, left, right } => {
            out.push(format!("{pad}COMPOUND ({op})"));
            render_node(left, depth + 1, out);
            render_node(right, depth + 1, out);
        }
    }
}

impl Engine {
    /// Plans a query against the current catalog without executing it.
    ///
    /// Planning is a pure function of the catalog (tables, indexes,
    /// `ANALYZE` state) and the dialect: the same engine state and query
    /// always produce the same plan, and therefore the same
    /// [`PlanFingerprint`] — the determinism the QPG feedback loop and the
    /// `EXPLAIN` statement both rely on.
    ///
    /// ```
    /// use lancer_engine::{Dialect, Engine};
    ///
    /// let mut e = Engine::new(Dialect::Sqlite);
    /// e.execute_script(
    ///     "CREATE TABLE t0(c0 INT); CREATE INDEX i0 ON t0(c0);
    ///      INSERT INTO t0(c0) VALUES (1), (2);",
    /// )
    /// .unwrap();
    /// let r = e.execute_sql("EXPLAIN SELECT c0 FROM t0 WHERE c0 = 1").unwrap();
    /// assert_eq!(r.columns, vec!["QUERY PLAN"]);
    /// let plan = r.rows[0][0].clone();
    /// assert!(plan.to_string().contains("USING COVERING INDEX i0"), "{plan:?}");
    /// ```
    #[must_use]
    pub fn explain(&self, q: &Query) -> QueryPlan {
        QueryPlan { root: self.plan_query(q) }
    }

    fn plan_query(&self, q: &Query) -> PlanNode {
        match q {
            Query::Select(s) => self.plan_select(s),
            Query::Compound { left, op, right } => PlanNode::Compound {
                op: *op,
                left: Box::new(self.plan_query(left)),
                right: Box::new(self.plan_query(right)),
            },
        }
    }

    fn plan_select(&self, s: &Select) -> PlanNode {
        let single_source = s.from.len() + s.joins.len() == 1;
        // Base sources in FROM order, then the explicit joins — exactly the
        // left-deep order the executor materialises rows in.
        let mut root: Option<PlanNode> = None;
        for name in &s.from {
            let scan = self.plan_source(name, s, single_source);
            root = Some(match root {
                None => scan,
                // Comma-separated FROM items are cross joins.
                Some(left) => PlanNode::Join {
                    kind: JoinKind::Cross,
                    left: Box::new(left),
                    right: Box::new(scan),
                },
            });
        }
        for join in &s.joins {
            let right = self.plan_source(&join.table, s, false);
            root = Some(match root {
                None => right,
                Some(left) => {
                    PlanNode::Join { kind: join.kind, left: Box::new(left), right: Box::new(right) }
                }
            });
        }
        let mut root = root.unwrap_or(PlanNode::Values);

        // A residual filter is only needed when the WHERE clause could not
        // be pushed into a single scan.
        if s.where_clause.is_some() && !single_source {
            root = PlanNode::Filter { input: Box::new(root) };
        }
        let has_aggregate = !s.group_by.is_empty()
            || s.having.as_ref().is_some_and(Expr::contains_aggregate)
            || s.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            });
        if has_aggregate {
            root = PlanNode::Aggregate { group_keys: s.group_by.len(), input: Box::new(root) };
        }
        if s.distinct {
            root = PlanNode::Distinct { input: Box::new(root) };
        }
        if !s.order_by.is_empty() {
            root = PlanNode::Sort { terms: s.order_by.len(), input: Box::new(root) };
        }
        if s.limit.is_some() || s.offset.is_some() {
            root = PlanNode::Limit { input: Box::new(root) };
        }
        root
    }

    fn plan_source(&self, name: &str, s: &Select, single_source: bool) -> PlanNode {
        if let Some(view) = self.database().view(name) {
            return PlanNode::View {
                name: view.name.clone(),
                input: Box::new(self.plan_select(&view.query)),
            };
        }
        let Some(table) = self.database().table(name) else {
            return PlanNode::Missing { table: name.to_owned() };
        };
        let pushed_filter = single_source && s.where_clause.is_some();
        let analyzed = self.analyzed.contains(&name.to_ascii_lowercase());
        // The columnar dialect materialises single-table scans into
        // column vectors — the same gate `op_scan` applies — and that
        // layout choice is plan identity.
        let full_scan = if single_source && self.dialect().prefers_columnar() {
            ScanKind::ColumnarScan
        } else {
            ScanKind::Full
        };
        let kind = if single_source {
            s.where_clause
                .as_ref()
                .and_then(find_equality_probe)
                .and_then(|(col, lit)| self.eligible_index(name, &col, &lit, s))
                .unwrap_or(full_scan)
        } else {
            full_scan
        };
        PlanNode::Scan { table: table.schema.name.clone(), kind, pushed_filter, analyzed }
    }

    /// Finds the index an equality probe would use, if any, and decides
    /// whether it is covering.
    ///
    /// The candidate list is [`probe_candidates`] — the *same* catalog
    /// fact the executor's pipeline assembly reads (non-partial, first
    /// key is the probed column), so the two cannot drift apart.  On top
    /// of that the planner enforces the soundness rule a real planner
    /// applies and the executor's fast path deliberately omits: on a
    /// dialect with collations, a *text* probe may only use an index
    /// whose first-key collation equals the column's declared collation
    /// (keys stored under a different collation order differently, so the
    /// lookup would be unsound).  Where the two disagree — a mismatched
    /// index the executor would happily probe — the plan reports the
    /// sound choice, not the fast path's.
    fn eligible_index(&self, table: &str, col: &str, lit: &Value, s: &Select) -> Option<ScanKind> {
        // An inheritance parent's index covers only its own rows, never
        // the children a parent scan includes — both executors refuse the
        // probe there (see `probe_blocked_by_inheritance`), and so does
        // the plan.
        if probe_blocked_by_inheritance(self.database(), self.dialect(), table) {
            return None;
        }
        let schema = &self.database().table(table)?.schema;
        let col_meta = schema.column(col)?;
        for idx in probe_candidates(self.database(), table, col) {
            if self.dialect() == Dialect::Sqlite && matches!(lit, Value::Text(_)) {
                let key_collation = idx.def.collations.first().copied().unwrap_or_default();
                if key_collation != col_meta.collation {
                    continue;
                }
            }
            // Covering: every column the query touches is a key of this
            // index, so the executor never needs the base table.
            let indexed: Vec<&str> = idx
                .def
                .exprs
                .iter()
                .filter_map(|e| match e {
                    Expr::Column(c) => Some(c.column.as_str()),
                    _ => None,
                })
                .collect();
            let covers = |e: &Expr| {
                e.column_refs()
                    .iter()
                    .all(|c| indexed.iter().any(|i| i.eq_ignore_ascii_case(&c.column)))
            };
            let projection_covered = s.items.iter().all(|item| match item {
                SelectItem::Wildcard => {
                    schema.columns.len() == indexed.len()
                        && schema
                            .columns
                            .iter()
                            .all(|c| indexed.iter().any(|i| i.eq_ignore_ascii_case(&c.name)))
                }
                SelectItem::Expr { expr, .. } => covers(expr),
            });
            let where_covered = s.where_clause.as_ref().is_none_or(&covers);
            let name = idx.def.name.clone();
            return Some(if projection_covered && where_covered {
                ScanKind::CoveringIndex { index: name }
            } else {
                ScanKind::Index { index: name }
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planned(script: &str, query: &str) -> (QueryPlan, Engine) {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_script(script).unwrap();
        let stmt = lancer_sql::parse_statement(query).unwrap();
        let q = match stmt {
            lancer_sql::Statement::Select(q) => q,
            other => panic!("not a query: {other:?}"),
        };
        let plan = e.explain(&q);
        (plan, e)
    }

    #[test]
    fn full_scan_without_usable_index() {
        let (plan, _) = planned("CREATE TABLE t0(c0 INT)", "SELECT * FROM t0");
        assert_eq!(plan.render(), vec!["SCAN t0"]);
    }

    #[test]
    fn equality_probe_picks_an_index() {
        let (plan, _) = planned(
            "CREATE TABLE t0(c0 INT, c1 INT); CREATE INDEX i0 ON t0(c0)",
            "SELECT c1 FROM t0 WHERE c0 = 1",
        );
        assert_eq!(plan.render(), vec!["SEARCH t0 USING INDEX i0 WITH FILTER"]);
    }

    #[test]
    fn covering_index_when_projection_is_indexed() {
        let (plan, _) = planned(
            "CREATE TABLE t0(c0 INT, c1 INT); CREATE INDEX i0 ON t0(c0, c1)",
            "SELECT c1 FROM t0 WHERE c0 = 1",
        );
        assert_eq!(plan.render(), vec!["SEARCH t0 USING COVERING INDEX i0 WITH FILTER"]);
    }

    #[test]
    fn collation_mismatch_disqualifies_text_probes_only() {
        use lancer_sql::ast::stmt::{CreateIndex, IndexedColumn, Statement};
        use lancer_sql::collation::Collation;

        // An index whose key collation (RTRIM) differs from the column's
        // (BINARY) — the shape the state generator produces with its
        // explicit collation overrides.
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_sql("CREATE TABLE t0(c0 TEXT)").unwrap();
        let mut col = IndexedColumn::column("c0");
        col.collation = Some(Collation::Rtrim);
        e.execute(&Statement::CreateIndex(CreateIndex {
            name: "i0".into(),
            table: "t0".into(),
            columns: vec![col],
            unique: false,
            where_clause: None,
            if_not_exists: false,
        }))
        .unwrap();
        let parse = |sql: &str| match lancer_sql::parse_statement(sql).unwrap() {
            lancer_sql::Statement::Select(q) => q,
            other => panic!("not a query: {other:?}"),
        };
        // A text probe must not use the mismatched index...
        let plan = e.explain(&parse("SELECT * FROM t0 WHERE c0 = 'a'"));
        assert_eq!(plan.render(), vec!["SCAN t0 WITH FILTER"]);
        // ...but a non-text probe is collation-independent.
        let plan = e.explain(&parse("SELECT * FROM t0 WHERE c0 = 1"));
        assert_eq!(plan.render(), vec!["SEARCH t0 USING COVERING INDEX i0 WITH FILTER"]);
    }

    #[test]
    fn partial_indexes_are_never_probed() {
        let (plan, _) = planned(
            "CREATE TABLE t0(c0 INT); CREATE INDEX i0 ON t0(c0) WHERE c0 IS NOT NULL",
            "SELECT * FROM t0 WHERE c0 = 1",
        );
        assert_eq!(plan.render(), vec!["SCAN t0 WITH FILTER"]);
    }

    #[test]
    fn joins_are_left_deep_in_from_order() {
        let (plan, _) = planned(
            "CREATE TABLE t0(c0 INT); CREATE TABLE t1(c0 INT); CREATE TABLE t2(c0 INT)",
            "SELECT * FROM t0, t1 LEFT JOIN t2 ON t1.c0 = t2.c0 WHERE t0.c0 = 1",
        );
        assert_eq!(
            plan.render(),
            vec![
                "FILTER",
                "  LEFT JOIN",
                "    CROSS JOIN",
                "      SCAN t0",
                "      SCAN t1",
                "    SCAN t2",
            ]
        );
    }

    #[test]
    fn wrapping_nodes_follow_executor_order() {
        let (plan, _) = planned(
            "CREATE TABLE t0(c0 INT)",
            "SELECT DISTINCT c0, COUNT(*) FROM t0 GROUP BY c0 ORDER BY c0 LIMIT 3",
        );
        assert_eq!(
            plan.render(),
            vec![
                "LIMIT",
                "  SORT (1 terms)",
                "    DISTINCT",
                "      AGGREGATE (GROUP BY 1)",
                "        SCAN t0",
            ]
        );
    }

    #[test]
    fn views_plan_their_defining_query() {
        let (plan, _) = planned(
            "CREATE TABLE t0(c0 INT); CREATE VIEW v0 AS SELECT c0 FROM t0 WHERE c0 > 1",
            "SELECT * FROM v0",
        );
        assert_eq!(plan.render(), vec!["VIEW v0", "  SCAN t0 WITH FILTER"]);
    }

    #[test]
    fn compound_queries_and_constant_rows() {
        let (plan, _) = planned("CREATE TABLE t0(c0 INT)", "SELECT 1 INTERSECT SELECT c0 FROM t0");
        assert_eq!(plan.render(), vec!["COMPOUND (INTERSECT)", "  VALUES", "  SCAN t0"]);
    }

    #[test]
    fn analyze_changes_the_plan_fingerprint() {
        let (plan_before, mut e) = planned("CREATE TABLE t0(c0 INT)", "SELECT * FROM t0");
        e.execute_sql("ANALYZE t0").unwrap();
        let q = match lancer_sql::parse_statement("SELECT * FROM t0").unwrap() {
            lancer_sql::Statement::Select(q) => q,
            other => panic!("not a query: {other:?}"),
        };
        let plan_after = e.explain(&q);
        assert_eq!(plan_after.render(), vec!["SCAN t0 (ANALYZED)"]);
        assert_ne!(plan_before.fingerprint(), plan_after.fingerprint());
    }

    #[test]
    fn fingerprints_are_stable_and_text_keyed() {
        let (a, _) = planned("CREATE TABLE t0(c0 INT)", "SELECT * FROM t0");
        let (b, _) = planned("CREATE TABLE t0(c0 INT)", "SELECT c0 FROM t0");
        // Same plan shape → same fingerprint, even for different SQL.
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(format!("{}", a.fingerprint()).len(), 16);
        assert_eq!(a.to_string(), "SCAN t0");
    }

    #[test]
    fn explain_statement_returns_plan_rows() {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_script("CREATE TABLE t0(c0 INT); CREATE INDEX i0 ON t0(c0)").unwrap();
        let r = e.execute_sql("EXPLAIN SELECT * FROM t0 WHERE c0 = 1").unwrap();
        assert_eq!(r.columns, vec!["QUERY PLAN"]);
        assert_eq!(r.rows.len(), 1);
        assert!(matches!(&r.rows[0][0], Value::Text(t) if t.contains("USING COVERING INDEX i0")));
        // EXPLAIN never executes the query: planning a query over a missing
        // table still succeeds and surfaces the unresolved source.
        let r = e.execute_sql("EXPLAIN SELECT * FROM nope").unwrap();
        assert!(matches!(&r.rows[0][0], Value::Text(t) if t == "MISSING nope"));
    }
}
