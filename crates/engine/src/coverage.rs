//! Feature-coverage instrumentation.
//!
//! Table 4 of the paper reports line/branch coverage of each DBMS after a
//! 24-hour SQLancer run.  gcov-style coverage of a C codebase is not
//! available here, so the engine instead registers a *feature point* for
//! every operator, statement kind, optimisation and maintenance path it
//! implements, and marks points as they execute.  The covered fraction plays
//! the same role as the paper's coverage numbers: "how much of the engine
//! does the generated workload exercise".

use std::collections::BTreeSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// All feature points the engine can exercise.
pub const ALL_FEATURES: &[&str] = &[
    // Statement kinds.
    "stmt.create_table",
    "stmt.create_index",
    "stmt.create_view",
    "stmt.create_statistics",
    "stmt.drop_table",
    "stmt.drop_index",
    "stmt.drop_view",
    "stmt.alter_rename_table",
    "stmt.alter_rename_column",
    "stmt.alter_add_column",
    "stmt.insert",
    "stmt.update",
    "stmt.delete",
    "stmt.select",
    "stmt.vacuum",
    "stmt.reindex",
    "stmt.analyze",
    "stmt.check_table",
    "stmt.repair_table",
    "stmt.pragma",
    "stmt.set_option",
    "stmt.discard",
    "stmt.begin",
    "stmt.commit",
    "stmt.rollback",
    "stmt.session",
    // Expression evaluation.
    "expr.literal",
    "expr.column",
    "expr.unary_not",
    "expr.unary_neg",
    "expr.unary_bitnot",
    "expr.arithmetic",
    "expr.concat",
    "expr.bitwise",
    "expr.comparison",
    "expr.is",
    "expr.null_safe_eq",
    "expr.and_or",
    "expr.like",
    "expr.between",
    "expr.in_list",
    "expr.is_null",
    "expr.cast",
    "expr.case",
    "expr.function",
    "expr.aggregate",
    "expr.collate",
    // Executor paths.
    "exec.table_scan",
    "exec.index_lookup",
    "exec.partial_index",
    "exec.cross_join",
    "exec.inner_join",
    "exec.left_join",
    "exec.where_filter",
    "exec.distinct",
    "exec.group_by",
    "exec.having",
    "exec.order_by",
    "exec.limit_offset",
    "exec.compound_intersect",
    "exec.compound_union",
    "exec.compound_except",
    "exec.view_expansion",
    "exec.inheritance_expansion",
    "exec.memory_engine",
    "exec.without_rowid",
    // Constraint enforcement.
    "constraint.primary_key",
    "constraint.unique",
    "constraint.not_null",
    "constraint.check",
    "constraint.default",
    "constraint.on_conflict_ignore",
    "constraint.on_conflict_replace",
];

/// Records which feature points have executed.
///
/// The hit set lives behind an [`Arc`] so engine snapshots share it; a
/// coverage set saturates quickly, after which clones and repeat hits are
/// both free.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Coverage {
    hit: Arc<BTreeSet<String>>,
}

impl Coverage {
    /// Creates an empty coverage recorder.
    #[must_use]
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Marks a feature point as executed.
    pub fn hit(&mut self, feature: &str) {
        debug_assert!(ALL_FEATURES.contains(&feature), "unregistered coverage feature: {feature}");
        // Repeat hits (the overwhelmingly common case) must not unshare a
        // set a snapshot still holds.
        if !self.hit.contains(feature) {
            Arc::make_mut(&mut self.hit).insert(feature.to_owned());
        }
    }

    /// Number of distinct feature points executed.
    #[must_use]
    pub fn hit_count(&self) -> usize {
        self.hit.len()
    }

    /// Total number of registered feature points.
    #[must_use]
    pub fn total(&self) -> usize {
        ALL_FEATURES.len()
    }

    /// The covered fraction in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        self.hit_count() as f64 / self.total() as f64
    }

    /// Feature points that have not executed yet.
    #[must_use]
    pub fn missing(&self) -> Vec<&'static str> {
        ALL_FEATURES.iter().copied().filter(|f| !self.hit.contains(*f)).collect()
    }

    /// Merges another coverage record into this one.
    pub fn merge(&mut self, other: &Coverage) {
        if Arc::ptr_eq(&self.hit, &other.hit) || other.hit.is_subset(&self.hit) {
            return;
        }
        if self.hit.is_empty() {
            self.hit = Arc::clone(&other.hit);
            return;
        }
        let hit = Arc::make_mut(&mut self.hit);
        for f in other.hit.iter() {
            hit.insert(f.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_accumulates_and_merges() {
        let mut a = Coverage::new();
        assert_eq!(a.hit_count(), 0);
        a.hit("stmt.select");
        a.hit("stmt.select");
        assert_eq!(a.hit_count(), 1);
        assert!(a.fraction() > 0.0 && a.fraction() < 1.0);
        let mut b = Coverage::new();
        b.hit("expr.like");
        a.merge(&b);
        assert_eq!(a.hit_count(), 2);
        assert_eq!(a.missing().len(), ALL_FEATURES.len() - 2);
    }

    #[test]
    fn all_features_are_unique() {
        let set: BTreeSet<_> = ALL_FEATURES.iter().collect();
        assert_eq!(set.len(), ALL_FEATURES.len());
    }
}
