//! Feature-coverage instrumentation.
//!
//! Table 4 of the paper reports line/branch coverage of each DBMS after a
//! 24-hour SQLancer run.  gcov-style coverage of a C codebase is not
//! available here, so the engine instead registers a *feature point* for
//! every operator, statement kind, optimisation and maintenance path it
//! implements, and marks points as they execute.  The covered fraction plays
//! the same role as the paper's coverage numbers: "how much of the engine
//! does the generated workload exercise".

use std::collections::BTreeSet;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard};

use serde::{Deserialize, Serialize};

/// All feature points the engine can exercise.
pub const ALL_FEATURES: &[&str] = &[
    // Statement kinds.
    "stmt.create_table",
    "stmt.create_index",
    "stmt.create_view",
    "stmt.create_statistics",
    "stmt.drop_table",
    "stmt.drop_index",
    "stmt.drop_view",
    "stmt.alter_rename_table",
    "stmt.alter_rename_column",
    "stmt.alter_add_column",
    "stmt.insert",
    "stmt.update",
    "stmt.delete",
    "stmt.select",
    "stmt.vacuum",
    "stmt.reindex",
    "stmt.analyze",
    "stmt.check_table",
    "stmt.repair_table",
    "stmt.pragma",
    "stmt.set_option",
    "stmt.discard",
    "stmt.begin",
    "stmt.commit",
    "stmt.rollback",
    "stmt.session",
    // Expression evaluation.
    "expr.literal",
    "expr.column",
    "expr.unary_not",
    "expr.unary_neg",
    "expr.unary_bitnot",
    "expr.arithmetic",
    "expr.concat",
    "expr.bitwise",
    "expr.comparison",
    "expr.is",
    "expr.null_safe_eq",
    "expr.and_or",
    "expr.like",
    "expr.between",
    "expr.in_list",
    "expr.is_null",
    "expr.cast",
    "expr.case",
    "expr.function",
    "expr.aggregate",
    "expr.collate",
    // Executor paths.
    "exec.table_scan",
    "exec.index_lookup",
    "exec.partial_index",
    "exec.cross_join",
    "exec.inner_join",
    "exec.left_join",
    "exec.where_filter",
    "exec.distinct",
    "exec.group_by",
    "exec.having",
    "exec.order_by",
    "exec.limit_offset",
    "exec.compound_intersect",
    "exec.compound_union",
    "exec.compound_except",
    "exec.view_expansion",
    "exec.inheritance_expansion",
    "exec.memory_engine",
    "exec.without_rowid",
    // Constraint enforcement.
    "constraint.primary_key",
    "constraint.unique",
    "constraint.not_null",
    "constraint.check",
    "constraint.default",
    "constraint.on_conflict_ignore",
    "constraint.on_conflict_replace",
];

/// Records which feature points have executed.
///
/// The recorder is an interior-mutability *sink*: [`Coverage::hit`] takes
/// `&self`, so the read-only query path ([`Engine::query`]) records the
/// same keys through the same sink as the mutable path without needing
/// exclusive engine access.  The hit set itself lives behind an [`Arc`]
/// inside the lock, so cloning an engine (replay snapshots, workspace
/// copies) is still a refcount bump: a clone is a *snapshot* of the
/// contents — it never shares the sink, and the first divergent hit
/// unshares the set via copy-on-write.  A coverage set saturates quickly,
/// after which repeat hits are lock-read-and-return.
///
/// [`Engine::query`]: crate::Engine::query
#[derive(Debug, Default)]
pub struct Coverage {
    hit: RwLock<Arc<BTreeSet<String>>>,
}

impl Coverage {
    /// Creates an empty coverage recorder.
    #[must_use]
    pub fn new() -> Coverage {
        Coverage::default()
    }

    fn read(&self) -> RwLockReadGuard<'_, Arc<BTreeSet<String>>> {
        self.hit.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// A cheap snapshot of the current hit set (refcount bump).
    fn snapshot(&self) -> Arc<BTreeSet<String>> {
        Arc::clone(&self.read())
    }

    /// Marks a feature point as executed.
    pub fn hit(&self, feature: &str) {
        debug_assert!(ALL_FEATURES.contains(&feature), "unregistered coverage feature: {feature}");
        // Repeat hits (the overwhelmingly common case) take only the read
        // lock and must not unshare a set a snapshot still holds.
        if self.read().contains(feature) {
            return;
        }
        let mut guard = self.hit.write().unwrap_or_else(PoisonError::into_inner);
        // Re-check under the write lock: another thread may have recorded
        // the same feature between the two lock acquisitions.
        if !guard.contains(feature) {
            Arc::make_mut(&mut guard).insert(feature.to_owned());
        }
    }

    /// Number of distinct feature points executed.
    #[must_use]
    pub fn hit_count(&self) -> usize {
        self.read().len()
    }

    /// Total number of registered feature points.
    #[must_use]
    pub fn total(&self) -> usize {
        ALL_FEATURES.len()
    }

    /// The covered fraction in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        self.hit_count() as f64 / self.total() as f64
    }

    /// Feature points that have not executed yet.
    #[must_use]
    pub fn missing(&self) -> Vec<&'static str> {
        let hit = self.read();
        ALL_FEATURES.iter().copied().filter(|f| !hit.contains(*f)).collect()
    }

    /// The feature points that have executed, in sorted order.  The
    /// read-path differential suites diff this between a `query` and an
    /// `execute` of the same statement.
    #[must_use]
    pub fn hit_features(&self) -> Vec<String> {
        self.read().iter().cloned().collect()
    }

    /// Merges another coverage record into this one.
    pub fn merge(&mut self, other: &Coverage) {
        let ours = self.hit.get_mut().unwrap_or_else(PoisonError::into_inner);
        let theirs = other.snapshot();
        if Arc::ptr_eq(ours, &theirs) || theirs.is_subset(ours) {
            return;
        }
        if ours.is_empty() {
            *ours = theirs;
            return;
        }
        let hit = Arc::make_mut(ours);
        for f in theirs.iter() {
            hit.insert(f.clone());
        }
    }
}

/// A clone is a snapshot: the contents are shared copy-on-write, the sink
/// (the lock) is fresh, so hits recorded through the clone never leak into
/// the original and vice versa.
impl Clone for Coverage {
    fn clone(&self) -> Coverage {
        Coverage { hit: RwLock::new(self.snapshot()) }
    }
}

// Hand-rolled serde mirroring the previous `#[derive]` on
// `struct Coverage { hit: Arc<BTreeSet<String>> }`, so the wire format is
// unchanged by the interior-mutability refactor.
impl Serialize for Coverage {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("hit".to_owned(), self.snapshot().to_value())])
    }
}

impl<'de> Deserialize<'de> for Coverage {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_accumulates_and_merges() {
        let mut a = Coverage::new();
        assert_eq!(a.hit_count(), 0);
        a.hit("stmt.select");
        a.hit("stmt.select");
        assert_eq!(a.hit_count(), 1);
        assert!(a.fraction() > 0.0 && a.fraction() < 1.0);
        let b = Coverage::new();
        b.hit("expr.like");
        a.merge(&b);
        assert_eq!(a.hit_count(), 2);
        assert_eq!(a.missing().len(), ALL_FEATURES.len() - 2);
        assert_eq!(a.hit_features(), vec!["expr.like".to_owned(), "stmt.select".to_owned()]);
    }

    #[test]
    fn all_features_are_unique() {
        let set: BTreeSet<_> = ALL_FEATURES.iter().collect();
        assert_eq!(set.len(), ALL_FEATURES.len());
    }

    #[test]
    fn clones_are_snapshots_not_shared_sinks() {
        let a = Coverage::new();
        a.hit("stmt.select");
        let b = a.clone();
        a.hit("expr.like");
        b.hit("exec.table_scan");
        assert_eq!(a.hit_features(), vec!["expr.like".to_owned(), "stmt.select".to_owned()]);
        assert_eq!(b.hit_features(), vec!["exec.table_scan".to_owned(), "stmt.select".to_owned()]);
    }

    #[test]
    fn hits_through_a_shared_reference_are_visible() {
        let cov = Coverage::new();
        let shared: &Coverage = &cov;
        shared.hit("stmt.select");
        assert_eq!(cov.hit_count(), 1, "the sink records through &self");
    }

    #[test]
    fn serde_output_matches_the_pre_refactor_derive() {
        let cov = Coverage::new();
        cov.hit("stmt.select");
        cov.hit("expr.like");
        let json = serde_json::to_string(&cov).unwrap();
        assert_eq!(json, r#"{"hit":["expr.like","stmt.select"]}"#);
        assert_eq!(serde_json::from_str(&json).unwrap(), cov.to_value());
    }
}
