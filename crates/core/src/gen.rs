//! Random generation: database states (§3.3, step 1) and expressions
//! (§3.2, Algorithm 1).

use lancer_engine::{Dialect, Engine};
use lancer_sql::ast::expr::{BinaryOp, ScalarFunc, TypeName, UnaryOp};
use lancer_sql::ast::stmt::{
    ColumnConstraint, ColumnDef, CreateIndex, CreateTable, Delete, IndexedColumn, Insert,
    OnConflict, SetScope, Statement, TableConstraint, TableEngine, Update,
};
use lancer_sql::ast::Expr;
use lancer_sql::collation::Collation;
use lancer_sql::value::Value;
use lancer_storage::schema::ColumnMeta;
use rand::seq::SliceRandom;
use rand::Rng;

/// Tuning knobs for the generators.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of tables per database.
    pub max_tables: usize,
    /// Minimum rows inserted per table (the paper uses 10–30, §3.4).
    pub min_rows: usize,
    /// Maximum rows inserted per table.
    pub max_rows: usize,
    /// Maximum expression tree depth (Algorithm 1's `maxdepth`).
    pub max_expr_depth: usize,
    /// Number of additional DDL/DML/maintenance statements generated after
    /// the initial tables and rows.
    pub extra_statements: usize,
    /// Maximum number of tables a per-query oracle pulls into one check
    /// (the pivot-row cross product of §3.1 step 2, also used by the TLP
    /// oracle's FROM clause).  Values below 1 are treated as 1.
    pub max_pivot_tables: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_tables: 3,
            min_rows: 10,
            max_rows: 30,
            max_expr_depth: 3,
            extra_statements: 12,
            max_pivot_tables: 2,
        }
    }
}

impl GenConfig {
    /// A small configuration for fast unit tests.
    #[must_use]
    pub fn tiny() -> GenConfig {
        GenConfig {
            max_tables: 2,
            min_rows: 2,
            max_rows: 5,
            max_expr_depth: 2,
            extra_statements: 4,
            max_pivot_tables: 2,
        }
    }
}

/// A column visible to the expression generator: its owning table and
/// metadata.
#[derive(Debug, Clone)]
pub struct VisibleColumn {
    /// Owning table.
    pub table: String,
    /// Column metadata.
    pub meta: ColumnMeta,
}

/// Generates a random literal value.  Values are skewed towards the small
/// integers, boundary integers, short strings (with case and trailing-space
/// variants) and NULLs that the paper's bug listings feature.
pub fn random_value<R: Rng>(rng: &mut R, dialect: Dialect) -> Value {
    match rng.gen_range(0..100) {
        0..=19 => Value::Null,
        20..=44 => Value::Integer(rng.gen_range(-3..=3)),
        45..=54 => Value::Integer(
            *[
                0,
                1,
                -1,
                127,
                128,
                -128,
                2_147_483_647,
                9_223_372_036_854_775_807,
                -9_223_372_036_854_775_808,
                2_851_427_734_582_196_970,
            ]
            .choose(rng)
            .expect("non-empty"),
        ),
        55..=64 => Value::Real(match rng.gen_range(0..4) {
            0 => 0.5,
            1 => -0.0,
            2 => f64::from(rng.gen_range(-3i32..=3)) + 0.5,
            _ => 1e30,
        }),
        65..=89 => {
            let base = ["a", "A", "ab", "Ab", "./", "b", "", " ", "a ", "0.5", "123", "u"];
            Value::Text((*base.choose(rng).expect("non-empty")).to_owned())
        }
        90..=94 => {
            if dialect == Dialect::Duckdb {
                // No BLOB storage class in the strictly typed columnar
                // profile; substitute a short string.
                let base = ["a", "A", "ab", ""];
                Value::Text((*base.choose(rng).expect("non-empty")).to_owned())
            } else {
                Value::Blob(vec![rng.gen_range(0..=255u8); rng.gen_range(0..3)])
            }
        }
        _ => {
            if dialect.strict_typing() {
                Value::Boolean(rng.gen_bool(0.5))
            } else {
                Value::Integer(i64::from(rng.gen_bool(0.5)))
            }
        }
    }
}

/// Algorithm 1: generates a random expression tree over the visible columns.
///
/// For the PostgreSQL-like dialect the *root* is guaranteed to be a
/// predicate (comparison / logical operator), because that dialect performs
/// no implicit conversion to boolean (§3.2).
pub fn random_expression<R: Rng>(
    rng: &mut R,
    columns: &[VisibleColumn],
    dialect: Dialect,
    depth: usize,
) -> Expr {
    if !dialect.implicit_boolean_conversion() && depth == 0 {
        // Force a boolean-producing root (PostgreSQL and DuckDB perform no
        // implicit conversion to boolean, §3.2).
        return random_predicate(rng, columns, dialect, 0);
    }
    let leaf_only = depth >= 4;
    if leaf_only || rng.gen_bool(0.35 + 0.1 * depth as f64) {
        // Leaf: literal or column reference.
        if !columns.is_empty() && rng.gen_bool(0.55) {
            let c = columns.choose(rng).expect("non-empty");
            return Expr::qcol(c.table.clone(), c.meta.name.clone());
        }
        return Expr::Literal(random_value(rng, dialect));
    }
    let d = depth + 1;
    match rng.gen_range(0..12) {
        0 => Expr::Unary {
            op: *UnaryOp::ALL.choose(rng).expect("non-empty"),
            expr: Box::new(random_expression(rng, columns, dialect, d)),
        },
        1 | 2 => {
            let mut ops: Vec<BinaryOp> = Vec::new();
            ops.extend(BinaryOp::COMPARISONS);
            ops.extend(BinaryOp::ARITHMETIC);
            ops.extend([BinaryOp::And, BinaryOp::Or, BinaryOp::Concat]);
            if dialect.has_scalar_is() {
                ops.extend([BinaryOp::Is, BinaryOp::IsNot]);
            }
            if dialect.has_null_safe_eq() {
                ops.push(BinaryOp::NullSafeEq);
            }
            Expr::binary(
                *ops.choose(rng).expect("non-empty"),
                random_expression(rng, columns, dialect, d),
                random_expression(rng, columns, dialect, d),
            )
        }
        3 => Expr::Like {
            negated: rng.gen_bool(0.3),
            expr: Box::new(random_expression(rng, columns, dialect, d)),
            pattern: Box::new(Expr::Literal(Value::Text(random_like_pattern(rng)))),
        },
        4 => Expr::Between {
            negated: rng.gen_bool(0.3),
            expr: Box::new(random_expression(rng, columns, dialect, d)),
            low: Box::new(random_expression(rng, columns, dialect, d)),
            high: Box::new(random_expression(rng, columns, dialect, d)),
        },
        5 => {
            let n = rng.gen_range(1..=3);
            Expr::InList {
                negated: rng.gen_bool(0.3),
                expr: Box::new(random_expression(rng, columns, dialect, d)),
                list: (0..n).map(|_| random_expression(rng, columns, dialect, d)).collect(),
            }
        }
        6 => Expr::IsNull {
            negated: rng.gen_bool(0.5),
            expr: Box::new(random_expression(rng, columns, dialect, d)),
        },
        7 => {
            let types: Vec<TypeName> = dialect.supported_types();
            Expr::Cast {
                expr: Box::new(random_expression(rng, columns, dialect, d)),
                type_name: *types.choose(rng).expect("non-empty"),
            }
        }
        8 => {
            let n = rng.gen_range(1..=2);
            Expr::Case {
                operand: if rng.gen_bool(0.3) {
                    Some(Box::new(random_expression(rng, columns, dialect, d)))
                } else {
                    None
                },
                branches: (0..n)
                    .map(|_| {
                        (
                            random_expression(rng, columns, dialect, d),
                            random_expression(rng, columns, dialect, d),
                        )
                    })
                    .collect(),
                else_expr: if rng.gen_bool(0.5) {
                    Some(Box::new(random_expression(rng, columns, dialect, d)))
                } else {
                    None
                },
            }
        }
        9 => {
            let func = *ScalarFunc::ALL.choose(rng).expect("non-empty");
            let (lo, hi) = func.arity();
            let n = rng.gen_range(lo..=hi.min(lo + 2));
            Expr::Function {
                func,
                args: (0..n).map(|_| random_expression(rng, columns, dialect, d)).collect(),
            }
        }
        10 if dialect.has_collations() => Expr::Collate {
            expr: Box::new(random_expression(rng, columns, dialect, d)),
            collation: *Collation::ALL.choose(rng).expect("non-empty"),
        },
        _ => Expr::binary(
            *BinaryOp::COMPARISONS.choose(rng).expect("non-empty"),
            random_expression(rng, columns, dialect, d),
            random_expression(rng, columns, dialect, d),
        ),
    }
}

/// Generates an expression whose root is guaranteed to produce a boolean
/// value (used as the root for the strict PostgreSQL-like dialect).
fn random_predicate<R: Rng>(
    rng: &mut R,
    columns: &[VisibleColumn],
    dialect: Dialect,
    depth: usize,
) -> Expr {
    if depth >= 2 {
        return Expr::binary(
            *BinaryOp::COMPARISONS.choose(rng).expect("non-empty"),
            random_expression(rng, columns, dialect, depth + 1),
            random_expression(rng, columns, dialect, depth + 1),
        );
    }
    match rng.gen_range(0..4) {
        0 => Expr::IsNull {
            negated: rng.gen_bool(0.5),
            expr: Box::new(random_expression(rng, columns, dialect, depth + 1)),
        },
        1 => random_predicate(rng, columns, dialect, depth + 1).not(),
        2 => Expr::binary(
            *[BinaryOp::And, BinaryOp::Or].choose(rng).expect("non-empty"),
            random_predicate(rng, columns, dialect, depth + 1),
            random_predicate(rng, columns, dialect, depth + 1),
        ),
        _ => Expr::binary(
            *BinaryOp::COMPARISONS.choose(rng).expect("non-empty"),
            random_expression(rng, columns, dialect, depth + 1),
            random_expression(rng, columns, dialect, depth + 1),
        ),
    }
}

fn random_like_pattern<R: Rng>(rng: &mut R) -> String {
    let parts = ["a", "A", "%", "_", "b", "./", "", "ab%", "%b", "a\\"];
    let n = rng.gen_range(1..=2);
    (0..n).map(|_| *parts.choose(rng).expect("non-empty")).collect()
}

/// The random database-state generator (§3.3).
#[derive(Debug)]
pub struct StateGenerator {
    dialect: Dialect,
    config: GenConfig,
    table_counter: usize,
    index_counter: usize,
}

impl StateGenerator {
    /// Creates a generator for the given dialect.
    #[must_use]
    pub fn new(dialect: Dialect, config: GenConfig) -> StateGenerator {
        StateGenerator { dialect, config, table_counter: 0, index_counter: 0 }
    }

    /// The columns currently visible in the engine's catalog.
    #[must_use]
    pub fn visible_columns(engine: &Engine) -> Vec<VisibleColumn> {
        let mut out = Vec::new();
        for t in engine.database().table_names() {
            if let Some(table) = engine.database().table(&t) {
                for c in &table.schema.columns {
                    out.push(VisibleColumn { table: t.clone(), meta: c.clone() });
                }
            }
        }
        out
    }

    /// Generates a random `CREATE TABLE` for this dialect.
    pub fn random_create_table<R: Rng>(&mut self, rng: &mut R, engine: &Engine) -> Statement {
        let name = format!("t{}", self.table_counter);
        self.table_counter += 1;
        let n_cols = rng.gen_range(1..=4);
        let types = self.dialect.supported_types();
        let mut columns = Vec::new();
        for i in 0..n_cols {
            let type_name = if self.dialect.allows_untyped_columns() && rng.gen_bool(0.4) {
                None
            } else {
                Some(*types.choose(rng).expect("non-empty"))
            };
            let mut def = ColumnDef::new(format!("c{i}"), type_name);
            if rng.gen_bool(0.2) {
                def.constraints.push(ColumnConstraint::Unique);
            }
            if rng.gen_bool(0.1) {
                def.constraints.push(ColumnConstraint::NotNull);
                def.constraints.push(ColumnConstraint::Default(Value::Integer(0)));
            }
            if self.dialect.has_collations()
                && (type_name == Some(TypeName::Text) || type_name.is_none())
                && rng.gen_bool(0.35)
            {
                def.constraints.push(ColumnConstraint::Collate(
                    *Collation::ALL.choose(rng).expect("non-empty"),
                ));
            }
            columns.push(def);
        }
        let mut ct = CreateTable::new(name, columns);
        // PRIMARY KEY: either on a column or table level.
        if rng.gen_bool(0.4) {
            if rng.gen_bool(0.5) {
                ct.columns[0].constraints.push(ColumnConstraint::PrimaryKey);
            } else {
                let cols: Vec<String> = ct
                    .columns
                    .iter()
                    .take(rng.gen_range(1..=ct.columns.len()))
                    .map(|c| c.name.clone())
                    .collect();
                ct.constraints.push(TableConstraint::PrimaryKey(cols));
            }
            if self.dialect.has_without_rowid() && rng.gen_bool(0.35) {
                ct.without_rowid = true;
            }
        }
        if self.dialect.has_table_engines() && rng.gen_bool(0.3) {
            ct.engine = TableEngine::Memory;
        }
        if self.dialect.has_inheritance() && rng.gen_bool(0.25) {
            let existing = engine.database().table_names();
            if let Some(parent) = existing.choose(rng) {
                ct.inherits = Some(parent.clone());
            }
        }
        Statement::CreateTable(ct)
    }

    /// Generates a random `INSERT` into an existing table.
    pub fn random_insert<R: Rng>(
        &self,
        rng: &mut R,
        engine: &Engine,
        table: &str,
    ) -> Option<Statement> {
        let t = engine.database().table(table)?;
        let columns: Vec<String> = t.schema.column_names();
        let chosen: Vec<String> = if rng.gen_bool(0.3) && columns.len() > 1 {
            let n = rng.gen_range(1..columns.len());
            columns.iter().take(n).cloned().collect()
        } else {
            columns
        };
        let n_rows = rng.gen_range(1..=4);
        let rows = (0..n_rows)
            .map(|_| {
                chosen.iter().map(|_| Expr::Literal(random_value(rng, self.dialect))).collect()
            })
            .collect();
        let on_conflict = match rng.gen_range(0..10) {
            0..=6 => OnConflict::Abort,
            7 | 8 => OnConflict::Ignore,
            _ => OnConflict::Replace,
        };
        Some(Statement::Insert(Insert {
            table: table.to_owned(),
            columns: chosen,
            rows,
            on_conflict,
        }))
    }

    /// Generates a random `CREATE INDEX` on an existing table.
    pub fn random_create_index<R: Rng>(
        &mut self,
        rng: &mut R,
        engine: &Engine,
        table: &str,
    ) -> Option<Statement> {
        let t = engine.database().table(table)?;
        let name = format!("i{}", self.index_counter);
        self.index_counter += 1;
        let cols: Vec<VisibleColumn> = t
            .schema
            .columns
            .iter()
            .map(|c| VisibleColumn { table: table.to_owned(), meta: c.clone() })
            .collect();
        let n = rng.gen_range(1..=2.min(cols.len().max(1)));
        let columns: Vec<IndexedColumn> = (0..n)
            .map(|_| {
                let expr = if rng.gen_bool(0.75) {
                    let c = cols.choose(rng).expect("non-empty");
                    Expr::col(c.meta.name.clone())
                } else {
                    // Expression index (the surface behind several faults).
                    let local: Vec<VisibleColumn> = cols
                        .iter()
                        .map(|c| VisibleColumn { table: String::new(), meta: c.meta.clone() })
                        .collect();
                    let mut e = random_expression(rng, &local, self.dialect, 2);
                    strip_table_qualifiers(&mut e);
                    e
                };
                IndexedColumn {
                    expr,
                    collation: if self.dialect.has_collations() && rng.gen_bool(0.25) {
                        Some(*Collation::ALL.choose(rng).expect("non-empty"))
                    } else {
                        None
                    },
                    descending: rng.gen_bool(0.2),
                }
            })
            .collect();
        let where_clause = if self.dialect.has_partial_indexes() && rng.gen_bool(0.3) {
            let c = cols.choose(rng)?;
            Some(Expr::IsNull { negated: true, expr: Box::new(Expr::col(c.meta.name.clone())) })
        } else {
            None
        };
        Some(Statement::CreateIndex(CreateIndex {
            name,
            table: table.to_owned(),
            columns,
            unique: rng.gen_bool(0.3),
            where_clause,
            if_not_exists: false,
        }))
    }

    /// Generates a random `UPDATE` or `DELETE` on an existing table.
    pub fn random_dml<R: Rng>(
        &self,
        rng: &mut R,
        engine: &Engine,
        table: &str,
    ) -> Option<Statement> {
        let t = engine.database().table(table)?;
        let cols: Vec<VisibleColumn> = t
            .schema
            .columns
            .iter()
            .map(|c| VisibleColumn { table: table.to_owned(), meta: c.clone() })
            .collect();
        let where_clause = if rng.gen_bool(0.7) {
            let mut e = random_expression(rng, &cols, self.dialect, 1);
            strip_table_qualifiers(&mut e);
            Some(e)
        } else {
            None
        };
        if rng.gen_bool(0.6) {
            let target = cols.choose(rng)?;
            let assignments =
                vec![(target.meta.name.clone(), Expr::Literal(random_value(rng, self.dialect)))];
            let on_conflict =
                if rng.gen_bool(0.2) { OnConflict::Replace } else { OnConflict::Abort };
            Some(Statement::Update(Update {
                table: table.to_owned(),
                assignments,
                where_clause,
                on_conflict,
            }))
        } else {
            Some(Statement::Delete(Delete { table: table.to_owned(), where_clause }))
        }
    }

    /// Generates a random maintenance / option statement for the dialect.
    pub fn random_maintenance<R: Rng>(&self, rng: &mut R, engine: &Engine) -> Option<Statement> {
        let tables = engine.database().table_names();
        let table = tables.choose(rng)?.clone();
        let stmt = match self.dialect {
            Dialect::Sqlite => match rng.gen_range(0..6) {
                0 => Statement::Vacuum { full: false },
                1 => Statement::Reindex { target: None },
                2 => Statement::Analyze { target: Some(table) },
                3 => Statement::Pragma {
                    name: "case_sensitive_like".into(),
                    value: Some(Value::Integer(i64::from(rng.gen_bool(0.5)))),
                },
                4 => Statement::Analyze { target: None },
                _ => Statement::Reindex { target: Some(table) },
            },
            Dialect::Mysql => match rng.gen_range(0..5) {
                0 => Statement::CheckTable { table, for_upgrade: rng.gen_bool(0.5) },
                1 => Statement::RepairTable { table },
                2 => Statement::Analyze { target: Some(table) },
                _ => Statement::Set {
                    scope: if rng.gen_bool(0.5) { SetScope::Global } else { SetScope::Session },
                    name: "key_cache_division_limit".into(),
                    value: Value::Integer(100),
                },
            },
            Dialect::Postgres => match rng.gen_range(0..6) {
                0 => Statement::Vacuum { full: rng.gen_bool(0.5) },
                1 => Statement::Reindex { target: Some(table) },
                2 => Statement::Analyze { target: None },
                3 => {
                    let t = engine.database().table(&table)?;
                    let columns: Vec<String> =
                        t.schema.column_names().into_iter().take(2).collect();
                    Statement::CreateStatistics {
                        name: format!("s_{table}_{}", rng.gen_range(0..1000)),
                        columns,
                        table,
                    }
                }
                4 => Statement::Discard,
                _ => Statement::Analyze { target: Some(table) },
            },
            // The columnar profile's only maintenance surface is ANALYZE
            // (row-group statistics); no VACUUM/REINDEX/PRAGMA equivalents.
            Dialect::Duckdb => match rng.gen_range(0..3) {
                0 => Statement::Analyze { target: None },
                _ => Statement::Analyze { target: Some(table) },
            },
        };
        Some(stmt)
    }

    /// Generates a complete random database on the engine, returning the
    /// statements that were *successfully* executed (the reproduction log).
    /// Statements that fail are returned separately together with their
    /// error messages so the caller can apply the error oracle.
    pub fn generate_database<R: Rng>(
        &mut self,
        rng: &mut R,
        engine: &mut Engine,
    ) -> (Vec<Statement>, Vec<(Statement, lancer_engine::EngineError)>) {
        let mut log = Vec::new();
        let mut failures = Vec::new();
        let n_tables = rng.gen_range(1..=self.config.max_tables);
        for _ in 0..n_tables {
            // Retry a few times: some random CREATE TABLEs are legitimately
            // rejected (e.g. WITHOUT ROWID without a primary key).
            for _ in 0..5 {
                let stmt = self.random_create_table(rng, engine);
                match engine.execute(&stmt) {
                    Ok(_) => {
                        log.push(stmt);
                        break;
                    }
                    Err(e) => failures.push((stmt, e)),
                }
            }
        }
        let tables = engine.database().table_names();
        for table in &tables {
            let target_rows = rng.gen_range(self.config.min_rows..=self.config.max_rows);
            let mut inserted = 0usize;
            let mut attempts = 0usize;
            while inserted < target_rows && attempts < target_rows * 4 {
                attempts += 1;
                if let Some(stmt) = self.random_insert(rng, engine, table) {
                    match engine.execute(&stmt) {
                        Ok(r) => {
                            inserted += r.affected;
                            if r.affected > 0 {
                                log.push(stmt);
                            }
                        }
                        Err(e) => failures.push((stmt, e)),
                    }
                }
            }
        }
        for _ in 0..self.config.extra_statements {
            let tables = engine.database().table_names();
            let Some(table) = tables.choose(rng).cloned() else { break };
            let stmt = match rng.gen_range(0..10) {
                0..=3 => self.random_create_index(rng, engine, &table),
                4..=6 => self.random_dml(rng, engine, &table),
                7 => self.random_insert(rng, engine, &table),
                _ => self.random_maintenance(rng, engine),
            };
            if let Some(stmt) = stmt {
                match engine.execute(&stmt) {
                    Ok(_) => log.push(stmt),
                    Err(e) => failures.push((stmt, e)),
                }
            }
        }
        (log, failures)
    }

    /// Appends a deterministic multi-session transaction episode to an
    /// already generated database: a fault-surface prefix (an extra index;
    /// a SERIAL table on PostgreSQL), then 2–3 logical sessions that each
    /// open a transaction, apply a handful of DML statements and COMMIT or
    /// ROLLBACK.  The interleaving is drawn from the caller's RNG stream,
    /// and `SESSION <id>` markers record it in the log, so the returned
    /// statements replay to the identical state on a fresh engine — the
    /// same determinism contract as [`generate_database`].
    ///
    /// The first session always commits and the second always rolls back,
    /// so every episode exercises both the publish and the restore path;
    /// a third session draws its terminator from the RNG.
    ///
    /// [`generate_database`]: StateGenerator::generate_database
    pub fn generate_txn_episode<R: Rng>(
        &mut self,
        rng: &mut R,
        engine: &mut Engine,
    ) -> (Vec<Statement>, Vec<(Statement, lancer_engine::EngineError)>) {
        let mut log = Vec::new();
        let mut failures = Vec::new();
        let exec =
            |stmt: Statement,
             engine: &mut Engine,
             log: &mut Vec<Statement>,
             failures: &mut Vec<(Statement, lancer_engine::EngineError)>| {
                match engine.execute(&stmt) {
                    Ok(_) => log.push(stmt),
                    Err(e) => failures.push((stmt, e)),
                }
            };
        // Fault-surface prefix: an index makes torn rollbacks observable,
        // a SERIAL table makes sequence-vs-rollback divergence observable.
        let tables = engine.database().table_names();
        if let Some(table) = tables.choose(rng).cloned() {
            if rng.gen_bool(0.8) {
                if let Some(stmt) = self.random_create_index(rng, engine, &table) {
                    exec(stmt, engine, &mut log, &mut failures);
                }
            }
        }
        let serial_table = (self.dialect == Dialect::Postgres).then(|| {
            let name = format!("t{}", self.table_counter);
            self.table_counter += 1;
            let stmt = Statement::CreateTable(CreateTable::new(
                name.clone(),
                vec![
                    ColumnDef::new("c0", Some(TypeName::Serial)),
                    ColumnDef::new("c1", Some(TypeName::Integer)),
                ],
            ));
            exec(stmt, engine, &mut log, &mut failures);
            name
        });
        struct Plan {
            id: u32,
            dml_left: usize,
            begun: bool,
            commit: bool,
        }
        let n_sessions = rng.gen_range(2..=3);
        let mut live: Vec<Plan> = (0..n_sessions)
            .map(|i| Plan {
                id: i + 1,
                dml_left: rng.gen_range(1..=4),
                begun: false,
                commit: match i {
                    0 => true,
                    1 => false,
                    _ => rng.gen_bool(0.5),
                },
            })
            .collect();
        let mut current = None;
        while !live.is_empty() {
            let slot = rng.gen_range(0..live.len());
            let id = live[slot].id;
            if current != Some(id) {
                exec(Statement::Session { id }, engine, &mut log, &mut failures);
                current = Some(id);
            }
            let stmt = if !live[slot].begun {
                live[slot].begun = true;
                Statement::Begin
            } else if live[slot].dml_left > 0 {
                live[slot].dml_left -= 1;
                match self.random_session_dml(rng, engine, serial_table.as_deref()) {
                    Some(stmt) => stmt,
                    None => continue,
                }
            } else {
                let terminator =
                    if live[slot].commit { Statement::Commit } else { Statement::Rollback };
                live.remove(slot);
                terminator
            };
            exec(stmt, engine, &mut log, &mut failures);
        }
        // Return the log to the default session for whatever runs next.
        exec(Statement::Session { id: 0 }, engine, &mut log, &mut failures);
        (log, failures)
    }

    /// A DML statement for inside a transaction: usually an INSERT (a
    /// reliably visible effect), sometimes an UPDATE/DELETE, and — when a
    /// SERIAL table exists — an insert that omits the SERIAL column so the
    /// sequence advances.  No DDL: the schema stays stable across the
    /// episode, which keeps commit replays conflict-free by construction.
    fn random_session_dml<R: Rng>(
        &self,
        rng: &mut R,
        engine: &Engine,
        serial_table: Option<&str>,
    ) -> Option<Statement> {
        if let Some(ts) = serial_table {
            if rng.gen_bool(0.5) {
                return Some(Statement::Insert(Insert {
                    table: ts.to_owned(),
                    columns: vec!["c1".to_owned()],
                    rows: vec![vec![Expr::Literal(Value::Integer(rng.gen_range(0..100)))]],
                    on_conflict: OnConflict::Abort,
                }));
            }
        }
        let tables = engine.database().table_names();
        let table = tables.choose(rng)?.clone();
        if rng.gen_bool(0.6) {
            self.random_insert(rng, engine, &table)
        } else {
            self.random_dml(rng, engine, &table)
        }
    }
}

/// Removes table qualifiers from column references (used when an expression
/// generated against qualified columns must be placed where only bare names
/// are valid, e.g. index definitions).
pub fn strip_table_qualifiers(expr: &mut Expr) {
    fn walk(e: &mut Expr) {
        if let Expr::Column(c) = e {
            c.table = None;
            return;
        }
        match e {
            Expr::Unary { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Collate { expr, .. } => walk(expr),
            Expr::Binary { left, right, .. } => {
                walk(left);
                walk(right);
            }
            Expr::Like { expr, pattern, .. } => {
                walk(expr);
                walk(pattern);
            }
            Expr::Between { expr, low, high, .. } => {
                walk(expr);
                walk(low);
                walk(high);
            }
            Expr::InList { expr, list, .. } => {
                walk(expr);
                for i in list {
                    walk(i);
                }
            }
            Expr::Case { operand, branches, else_expr } => {
                if let Some(o) = operand {
                    walk(o);
                }
                for (w, t) in branches {
                    walk(w);
                    walk(t);
                }
                if let Some(el) = else_expr {
                    walk(el);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    walk(a);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    walk(a);
                }
            }
            Expr::Literal(_) | Expr::Column(_) => {}
        }
    }
    walk(expr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_values_cover_all_classes_eventually() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut classes = std::collections::BTreeSet::new();
        for _ in 0..500 {
            classes.insert(format!("{}", random_value(&mut rng, Dialect::Sqlite).storage_class()));
        }
        assert!(classes.len() >= 4, "saw classes {classes:?}");
    }

    #[test]
    fn expressions_respect_depth_and_dialect() {
        let mut rng = StdRng::seed_from_u64(7);
        for dialect in Dialect::ALL {
            for _ in 0..200 {
                let e = random_expression(&mut rng, &[], dialect, 0);
                assert!(e.depth() <= 12, "expression too deep: {e}");
                let sql = e.to_string();
                assert!(!sql.is_empty());
                if dialect == Dialect::Sqlite {
                    assert!(!sql.contains("<=>"), "SQLite must not use <=>: {sql}");
                }
                if dialect != Dialect::Sqlite {
                    assert!(!sql.contains("COLLATE"), "collations are SQLite-only: {sql}");
                }
            }
        }
    }

    /// Every table's full contents, in table order: the replay-equality
    /// key for `generated_databases_have_rows_and_reproduce`.
    fn table_contents(engine: &Engine) -> Vec<(String, Vec<Vec<Value>>)> {
        engine
            .database()
            .table_names()
            .into_iter()
            .map(|name| {
                let rows: Vec<Vec<Value>> = engine
                    .database()
                    .table(&name)
                    .map(|t| t.rows().map(|r| r.values).collect())
                    .unwrap_or_default();
                (name, rows)
            })
            .collect()
    }

    #[test]
    fn generated_databases_have_rows_and_reproduce() {
        for dialect in Dialect::ALL {
            let mut rng = StdRng::seed_from_u64(42);
            let mut generator = StateGenerator::new(dialect, GenConfig::tiny());
            let mut engine = Engine::new(dialect);
            let (log, _failures) = generator.generate_database(&mut rng, &mut engine);
            assert!(!log.is_empty());
            assert!(!engine.database().table_names().is_empty());
            assert!(engine.database().total_rows() > 0, "dialect {dialect:?} generated no rows");
            // The statement log replays cleanly on a fresh engine...
            let mut replay = Engine::new(dialect);
            for stmt in &log {
                replay
                    .execute(stmt)
                    .unwrap_or_else(|e| panic!("replay of {stmt} failed for {dialect:?}: {e}"));
            }
            // ...and reaches the *identical* database, row for row and
            // value for value — a row-count comparison would let an
            // executor regression that reorders, duplicates or rewrites
            // replayed state slip through.
            assert_eq!(
                table_contents(&replay),
                table_contents(&engine),
                "replayed state diverged for {dialect:?}"
            );
        }
    }

    #[test]
    fn strip_qualifiers_removes_all_tables() {
        let mut e = Expr::qcol("t0", "c0").eq(Expr::qcol("t1", "c1"));
        strip_table_qualifiers(&mut e);
        assert!(e.column_refs().iter().all(|c| c.table.is_none()));
    }
}
