//! Prefix-keyed replay caching for reduction and attribution.
//!
//! The post-campaign pipeline re-executes statement logs constantly: the
//! spurious filter replays every detection twice, delta debugging replays
//! `O(n log n)` candidate subsequences, and attribution replays the
//! reduced case once per enabled fault.  All of those candidates are
//! subsequences of the *same* detection log, and detections from the same
//! generated database share their whole generation-log prefix — so most
//! of the work is re-running statements an earlier replay already ran on
//! an identical engine state.
//!
//! [`ReplayCache`] memoizes engine snapshots keyed by *(fault profile,
//! statement-log prefix)*: a replay walks the deepest cached prefix of
//! its candidate, clones that snapshot, and executes only the suffix.
//! The clone is copy-on-write (`lancer-storage` shares tables
//! structurally), so resuming costs reference-count bumps; the resumed
//! candidate deep-copies only the tables its suffix actually writes,
//! never the whole database.  [`ReplaySession`] binds the cache to one
//! detection's parsed statement log, hashing each statement exactly once
//! — candidates are index subsets, so reduction never re-renders,
//! re-parses or re-clones a statement.
//!
//! Correctness is bit-for-bit: an engine snapshot taken after executing a
//! prefix on a fresh engine *is* the state a full replay would reach
//! (statement atomicity means failed setup statements leave the database
//! unchanged while still advancing the statement counter, which is why
//! the counter equals the prefix length either way), so cached and
//! uncached replays return identical verdicts.  The cache only ever
//! changes how much work a verdict costs — `tests/determinism.rs` and the
//! pinned snapshots in `tests/qpg.rs` hold across it unchanged.

use std::collections::{HashMap, HashSet};
use std::fmt::{self, Write as _};
use std::sync::{Arc, Mutex};

use lancer_engine::{BugProfile, Dialect, Engine};
use lancer_sql::ast::stmt::Statement;

use crate::oracle::{
    committed_units, norec_sum, partition_union, partition_union_at, row_multiset,
    serial_orders_match, state_digest, ErrorOracle, ReproSpec,
};
use crate::reduce::CandidateJudge;

/// Memoized engine snapshots keyed by fault profile and statement-log
/// prefix, shared across every replay of a campaign's post-processing.
#[derive(Debug)]
pub struct ReplayCache {
    dialect: Dialect,
    /// Snapshots are held behind [`Arc`] so the locked `prepare` step
    /// hands out a reference-count bump; the resume's engine clone —
    /// itself copy-on-write pointer work — happens in the lock-free
    /// execute step, so parallel reduction workers share one snapshot's
    /// tables structurally without serializing on the cache mutex.
    snapshots: HashMap<u64, Arc<Engine>>,
    /// Prefixes walked once already.  A snapshot is cheap to take (CoW)
    /// but holding one pins the prefix's tables, keeping later mutations
    /// on the unshare path — so one is only taken when a prefix *recurs*:
    /// cold prefixes (most of a one-shot replay) stay unpinned, recurring
    /// ones (shared generation logs, surviving reduction candidates) pay
    /// once and then serve every later replay.
    seen: HashSet<u64>,
    /// Memoized verdicts keyed by (oracle name, profile, full statement
    /// sequence, repro spec).  Delta debugging re-tries the same candidate
    /// across outer rounds — most blatantly the final no-change sweep,
    /// which re-replays every candidate against the settled sequence — and
    /// the engine is deterministic, so an identical question has an
    /// identical answer.  The oracle name is part of the key so that two
    /// oracles asking over the *same* log prefix (say a NoREC
    /// [`ReproSpec::PairMismatch`] and a TLP
    /// [`ReproSpec::PartitionMismatch`] from one generated database) can
    /// never be served each other's memo entry, even if their spec hashes
    /// were to collide.
    verdicts: HashMap<u64, bool>,
    max_snapshots: usize,
    stats: ReplayCacheStats,
}

/// Counters describing how much replay work the cache absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCacheStats {
    /// Replays that resumed from a cached prefix snapshot.
    pub prefix_hits: u64,
    /// Replays that started from a fresh engine.
    pub prefix_misses: u64,
    /// Replays answered entirely from the verdict memo (no execution).
    pub verdict_hits: u64,
    /// Setup statements actually executed across all replays.
    pub statements_replayed: u64,
    /// Setup statements skipped because a snapshot already covered them.
    pub statements_skipped: u64,
    /// Prefix snapshots retained in the cache.
    pub snapshots_taken: u64,
    /// Prefix snapshots dropped because the cache was at capacity.
    pub snapshots_evicted: u64,
}

impl ReplayCache {
    /// Default bound on retained snapshots.  Generation logs are small
    /// (tens of statements over tiny databases), so even the bound's
    /// worst case is a few megabytes; once full, the cache keeps the
    /// entries it has — the earliest-inserted prefixes are the shared
    /// generation logs, which are exactly the most valuable ones.
    const DEFAULT_MAX_SNAPSHOTS: usize = 4096;

    /// Creates a cache for replays against the given dialect.
    #[must_use]
    pub fn new(dialect: Dialect) -> ReplayCache {
        ReplayCache::with_max_snapshots(dialect, ReplayCache::DEFAULT_MAX_SNAPSHOTS)
    }

    /// Creates a cache with an explicit snapshot bound (0 disables
    /// snapshotting entirely; verdicts are unaffected, only cost).
    #[must_use]
    pub fn with_max_snapshots(dialect: Dialect, max_snapshots: usize) -> ReplayCache {
        ReplayCache {
            dialect,
            snapshots: HashMap::new(),
            seen: HashSet::new(),
            verdicts: HashMap::new(),
            max_snapshots,
            stats: ReplayCacheStats::default(),
        }
    }

    /// The dialect this cache replays against.
    #[must_use]
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ReplayCacheStats {
        self.stats
    }

    /// Number of snapshots currently retained.
    #[must_use]
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Cached equivalent of [`crate::runner::reproduces`]: same verdict,
    /// but the setup replay resumes from the deepest cached prefix.
    /// `oracle` is the registry name of the oracle that raised the
    /// detection; it scopes the verdict memo (snapshots are shared across
    /// oracles — replaying a prefix is oracle-independent, judging a
    /// trigger is not).
    #[must_use]
    pub fn reproduces(
        &mut self,
        oracle: &str,
        profile: &BugProfile,
        statements: &[Statement],
        repro: &ReproSpec,
    ) -> bool {
        let refs: Vec<&Statement> = statements.iter().collect();
        let hashes: Vec<u64> = refs.iter().map(|s| statement_hash(s)).collect();
        self.reproduces_refs(oracle, profile, &refs, &hashes, repro)
    }

    /// The shared replay core: `stmts[..len-1]` is the setup (replayed
    /// through the snapshot cache), the last statement is the trigger
    /// checked against the repro spec.
    pub(crate) fn reproduces_refs(
        &mut self,
        oracle: &str,
        profile: &BugProfile,
        stmts: &[&Statement],
        hashes: &[u64],
        repro: &ReproSpec,
    ) -> bool {
        if stmts.is_empty() {
            return false;
        }
        // The sequential path runs the same three steps the shared
        // (mutexed) path runs, back to back — one code path, so the two
        // can never diverge in verdicts or counters.
        match self.prepare(oracle, profile, hashes, repro) {
            ReplayLookup::Verdict(verdict) => verdict,
            ReplayLookup::Run(prepared) => {
                let outcome = execute_prepared(*prepared, stmts, repro);
                self.commit(outcome)
            }
        }
    }

    /// The locked front half of a replay: answers from the verdict memo
    /// when possible, otherwise resolves the deepest cached prefix
    /// snapshot and records which upcoming prefixes already recurred (and
    /// therefore deserve a snapshot).  Mutates only counters and reads the
    /// cache, so it is cheap enough to hold a lock across.
    fn prepare(
        &mut self,
        oracle: &str,
        profile: &BugProfile,
        hashes: &[u64],
        repro: &ReproSpec,
    ) -> ReplayLookup {
        let sequence_key =
            hashes.iter().fold(profile_key(self.dialect, profile), |key, h| combine(key, *h));
        let verdict_key = combine(combine(sequence_key, fnv1a_str(oracle)), repro_hash(repro));
        if let Some(&verdict) = self.verdicts.get(&verdict_key) {
            self.stats.verdict_hits += 1;
            return ReplayLookup::Verdict(verdict);
        }
        let setup_len = hashes.len() - 1;
        // keys[i] identifies (profile, setup[..i]).
        let mut keys = Vec::with_capacity(setup_len + 1);
        let mut key = profile_key(self.dialect, profile);
        keys.push(key);
        for h in &hashes[..setup_len] {
            key = combine(key, *h);
            keys.push(key);
        }
        let mut start = 0;
        let mut snapshot: Option<Arc<Engine>> = None;
        for i in (1..=setup_len).rev() {
            if let Some(hit) = self.snapshots.get(&keys[i]) {
                snapshot = Some(Arc::clone(hit));
                start = i;
                break;
            }
        }
        if start > 0 {
            self.stats.prefix_hits += 1;
        } else {
            self.stats.prefix_misses += 1;
        }
        self.stats.statements_skipped += start as u64;
        // Only the Arc bump happens under the lock; the resume's CoW
        // engine clone (or fresh construction) is deferred to the
        // lock-free execute step.
        let resume = match snapshot {
            Some(engine) => ResumePoint::Snapshot(engine),
            None => ResumePoint::Fresh(self.dialect, Box::new(profile.clone())),
        };
        let recurring = (start..setup_len).map(|i| self.seen.contains(&keys[i + 1])).collect();
        ReplayLookup::Run(Box::new(PreparedReplay { verdict_key, keys, start, resume, recurring }))
    }

    /// The locked back half of a replay: folds an executed candidate's
    /// snapshots, seen-marks and verdict back into the cache, and returns
    /// the verdict.  Insertions honour the same capacity bounds the
    /// all-in-one walk enforced, in the same order.
    fn commit(&mut self, outcome: ReplayOutcome) -> bool {
        self.stats.statements_replayed += outcome.executed;
        for (key, engine) in outcome.snapshots {
            if self.snapshots.len() < self.max_snapshots {
                self.stats.snapshots_taken += 1;
                self.snapshots.insert(key, engine);
            } else {
                self.stats.snapshots_evicted += 1;
            }
        }
        for key in outcome.newly_seen {
            if self.seen.len() < self.max_snapshots * 16 {
                self.seen.insert(key);
            }
        }
        if self.verdicts.len() < self.max_snapshots * 16 {
            self.verdicts.insert(outcome.verdict_key, outcome.verdict);
        }
        outcome.verdict
    }
}

/// What [`ReplayCache::prepare`] resolved: either a memoized verdict or
/// everything the lock-free execution step needs.
enum ReplayLookup {
    Verdict(bool),
    Run(Box<PreparedReplay>),
}

/// A replay ready to execute without touching the cache: the resume
/// point, the prefix keys of the candidate, and which positions already
/// recurred (so execution knows where to take snapshots).
struct PreparedReplay {
    verdict_key: u64,
    keys: Vec<u64>,
    start: usize,
    resume: ResumePoint,
    recurring: Vec<bool>,
}

/// Where a prepared replay starts from: a shared snapshot (CoW-cloned
/// lock-free at execute time) or a fresh engine with the question's
/// fault profile.
enum ResumePoint {
    Snapshot(Arc<Engine>),
    Fresh(Dialect, Box<BugProfile>),
}

/// Everything a finished replay wants to write back under the lock.
struct ReplayOutcome {
    verdict: bool,
    verdict_key: u64,
    executed: u64,
    snapshots: Vec<(u64, Arc<Engine>)>,
    newly_seen: Vec<u64>,
}

/// The lock-free middle of a replay: executes the setup suffix from the
/// prepared resume point, collects the snapshots the prepare step asked
/// for, and judges the trigger.  Touches no shared state, so parallel
/// reduction workers run it outside the cache mutex.
fn execute_prepared(
    prepared: PreparedReplay,
    stmts: &[&Statement],
    repro: &ReproSpec,
) -> ReplayOutcome {
    let PreparedReplay { verdict_key, keys, start, resume, recurring } = prepared;
    let setup = &stmts[..stmts.len() - 1];
    // Fast path: when the cached snapshot already covers the whole setup,
    // a read-only trigger can be judged straight off the shared
    // `Arc<Engine>` — no engine clone, no per-candidate state at all.
    // This is the expression-pass hot path: every candidate in a wave
    // shares one snapshot and differs only in its trigger.
    if start == setup.len() {
        if let ResumePoint::Snapshot(snapshot) = &resume {
            if let Some(verdict) = confirms_readonly(snapshot, setup, stmts[stmts.len() - 1], repro)
            {
                return ReplayOutcome {
                    verdict,
                    verdict_key,
                    executed: 0,
                    snapshots: Vec::new(),
                    newly_seen: Vec::new(),
                };
            }
        }
    }
    let mut engine = match resume {
        ResumePoint::Snapshot(snapshot) => (*snapshot).clone(),
        ResumePoint::Fresh(dialect, profile) => Engine::with_bugs(dialect, *profile),
    };
    let mut snapshots = Vec::new();
    let mut newly_seen = Vec::new();
    for i in start..setup.len() {
        // Setup statements may legitimately fail after reduction removed
        // their prerequisites; keep going, mirroring SQLancer's reducer.
        let _ = engine.execute(setup[i]);
        let key = keys[i + 1];
        // A snapshot is only taken when a prefix *recurs* — cold
        // prefixes are merely marked seen (see the `seen` field).
        if recurring[i - start] {
            snapshots.push((key, Arc::new(engine.clone())));
        } else {
            newly_seen.push(key);
        }
    }
    let executed = (setup.len() - start) as u64;
    let verdict = confirms(&mut engine, setup, stmts[stmts.len() - 1], repro);
    ReplayOutcome { verdict, verdict_key, executed, snapshots, newly_seen }
}

/// A [`ReplayCache`] behind a mutex, for the hierarchical reducer's
/// worker pool.  Only the prepare and commit halves of a replay hold the
/// lock; statement execution — the expensive part — runs lock-free, so
/// workers evaluating one generation's candidates genuinely overlap.
///
/// Verdicts stay deterministic under any interleaving (a replay verdict
/// is a pure function of profile, statements and repro spec; the cache
/// only changes its cost).  The *work counters* are the one thing that
/// can wobble with more than one worker: whether candidate B resumes
/// from a snapshot candidate A inserted depends on commit order, so
/// `prefix_hits`/`statements_replayed` are deterministic only at one
/// worker.  Nothing output-facing reads them.
#[derive(Debug)]
pub struct SharedReplay<'a> {
    inner: Mutex<&'a mut ReplayCache>,
}

impl<'a> SharedReplay<'a> {
    /// Wraps a cache for shared use by reduction workers.
    #[must_use]
    pub fn new(cache: &'a mut ReplayCache) -> SharedReplay<'a> {
        SharedReplay { inner: Mutex::new(cache) }
    }

    /// The cached repro check, callable through `&self` from any worker.
    /// `hashes` must be the FNV statement hash of each statement in
    /// `stmts`, in order (the hashes a [`ReplaySession`] computes).
    #[must_use]
    pub fn reproduces_refs(
        &self,
        oracle: &str,
        profile: &BugProfile,
        stmts: &[&Statement],
        hashes: &[u64],
        repro: &ReproSpec,
    ) -> bool {
        if stmts.is_empty() {
            return false;
        }
        let lookup = {
            let mut cache = self.inner.lock().expect("replay cache lock poisoned");
            cache.prepare(oracle, profile, hashes, repro)
        };
        match lookup {
            ReplayLookup::Verdict(verdict) => verdict,
            ReplayLookup::Run(prepared) => {
                let outcome = execute_prepared(*prepared, stmts, repro);
                let mut cache = self.inner.lock().expect("replay cache lock poisoned");
                cache.commit(outcome)
            }
        }
    }
}

/// The campaign runner's reduction predicate as a [`CandidateJudge`]: a
/// candidate "still fails" when it reproduces the detection under the
/// fault profile **and** does not reproduce on a fault-free engine.  The
/// differential check keeps reduction honest — a shrink that degrades
/// the repro into a fault-independent failure (say a `WHERE` clause cut
/// down until the query errors everywhere) reproduces in both profiles
/// and is rejected.
#[derive(Debug)]
pub struct DifferentialJudge<'a> {
    replay: SharedReplay<'a>,
    oracle: &'a str,
    profile: &'a BugProfile,
    none: BugProfile,
    required: Vec<BugProfile>,
    repro: &'a ReproSpec,
}

impl<'a> DifferentialJudge<'a> {
    /// Binds the judge to one detection's oracle, fault profile and repro
    /// spec.
    #[must_use]
    pub fn new(
        cache: &'a mut ReplayCache,
        oracle: &'a str,
        profile: &'a BugProfile,
        repro: &'a ReproSpec,
    ) -> DifferentialJudge<'a> {
        DifferentialJudge {
            replay: SharedReplay::new(cache),
            oracle,
            profile,
            none: BugProfile::none(),
            required: Vec::new(),
            repro,
        }
    }

    /// Additionally requires candidates to keep reproducing under
    /// `profile`.  The campaign runner pins every attributed single-fault
    /// profile this way before the expression pass, so a shrink can never
    /// silently change which bugs a reduced repro witnesses.
    #[must_use]
    pub fn require(mut self, profile: BugProfile) -> Self {
        self.required.push(profile);
        self
    }
}

impl CandidateJudge for DifferentialJudge<'_> {
    fn still_fails(&self, stmts: &[&Statement], hashes: &[u64]) -> bool {
        self.replay.reproduces_refs(self.oracle, self.profile, stmts, hashes, self.repro)
            && !self.replay.reproduces_refs(self.oracle, &self.none, stmts, hashes, self.repro)
            && self
                .required
                .iter()
                .all(|p| self.replay.reproduces_refs(self.oracle, p, stmts, hashes, self.repro))
    }
}

/// One detection's statement log bound to a [`ReplayCache`]: statements
/// are hashed once, and every reduction/attribution candidate is just an
/// index subset of the log.
#[derive(Debug)]
pub struct ReplaySession<'a> {
    cache: &'a mut ReplayCache,
    oracle: &'a str,
    statements: &'a [Statement],
    hashes: Vec<u64>,
}

impl<'a> ReplaySession<'a> {
    /// Binds a detection's statement log to the cache.  `oracle` is the
    /// registry name of the oracle that raised the detection; every
    /// verdict asked through this session is memoized under it.
    #[must_use]
    pub fn new(
        cache: &'a mut ReplayCache,
        oracle: &'a str,
        statements: &'a [Statement],
    ) -> ReplaySession<'a> {
        let hashes = statements.iter().map(statement_hash).collect();
        ReplaySession { cache, oracle, statements, hashes }
    }

    /// Number of statements in the bound log.
    #[must_use]
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// Returns `true` when the bound log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Checks whether the subsequence of the log selected by `keep`
    /// (indices in ascending order) still reproduces the detection under
    /// `profile` — the cached equivalent of building the candidate
    /// statement vector and calling [`crate::runner::reproduces`].
    #[must_use]
    pub fn reproduces_subset(
        &mut self,
        profile: &BugProfile,
        keep: &[usize],
        repro: &ReproSpec,
    ) -> bool {
        let stmts: Vec<&Statement> = keep.iter().map(|&i| &self.statements[i]).collect();
        let hashes: Vec<u64> = keep.iter().map(|&i| self.hashes[i]).collect();
        self.cache.reproduces_refs(self.oracle, profile, &stmts, &hashes, repro)
    }

    /// [`reproduces_subset`](ReplaySession::reproduces_subset) over the
    /// whole log.
    #[must_use]
    pub fn reproduces_all(&mut self, profile: &BugProfile, repro: &ReproSpec) -> bool {
        let stmts: Vec<&Statement> = self.statements.iter().collect();
        let hashes = self.hashes.clone();
        self.cache.reproduces_refs(self.oracle, profile, &stmts, &hashes, repro)
    }
}

/// Checks the trigger statement against the repro spec on an engine that
/// has already replayed the setup — the oracle-specific half of
/// [`crate::runner::reproduces`], shared by the cached and uncached
/// paths so the two can never diverge.  `setup` is the already-replayed
/// statement list: most specs never look at it, but a
/// [`ReproSpec::SerialDivergence`] is a property of the *whole* script —
/// its committed transactions are re-derived from `setup` + `last`, so
/// the spec survives reduction unchanged.
pub(crate) fn confirms(
    engine: &mut Engine,
    setup: &[&Statement],
    last: &Statement,
    repro: &ReproSpec,
) -> bool {
    if matches!(repro, ReproSpec::SerialDivergence) {
        // The trigger is an ordinary (read-only) probe; what matters is
        // the final shared state versus every serial order of the
        // committed transactions in the candidate script.
        let _ = engine.query_here(last);
        let Some(episode) = committed_units(setup.iter().copied().chain(std::iter::once(last)))
        else {
            return false;
        };
        let (matched, _) =
            serial_orders_match(engine.dialect(), engine.bugs(), &episode, &state_digest(engine));
        return !matched;
    }
    match engine.query_here(last) {
        Ok(result) => match repro {
            // A containment failure only counts when the triggering
            // statement is still the query itself; otherwise the "missing
            // row" would be trivially true for any non-query statement.
            ReproSpec::MissingRow(row) if last.is_read_only() => !result.contains_row(row),
            // A TLP mismatch reproduces when the partition union still
            // disagrees with the unpartitioned result; partition errors
            // mean the mismatch cannot be confirmed.
            ReproSpec::PartitionMismatch { partitions } if last.is_read_only() => {
                let expected = row_multiset(&result.rows);
                match partition_union(engine, partitions) {
                    Some(union) => expected != union,
                    None => false,
                }
            }
            // A NoREC mismatch reproduces when the optimized row count
            // still disagrees with the rewrite's sum; a rewrite error (or
            // a result shape the rewrite cannot produce) means the
            // mismatch cannot be confirmed.
            ReproSpec::PairMismatch { rewritten } if last.is_read_only() => {
                let count = result.rows.len() as i64;
                match engine.query_here(rewritten) {
                    Ok(rewrite_result) => match norec_sum(&rewrite_result) {
                        Some(sum) => count != sum,
                        None => false,
                    },
                    Err(_) => false,
                }
            }
            _ => false,
        },
        Err(e) => match repro {
            ReproSpec::Crash => e.is_crash(),
            ReproSpec::UnexpectedError => !e.is_crash() && !ErrorOracle.is_expected(last, &e),
            // A logic detection reproduces only when the query runs; an
            // error is a different failure mode and must be attributed
            // through an Error/Crash detection instead.
            ReproSpec::MissingRow(_)
            | ReproSpec::PartitionMismatch { .. }
            | ReproSpec::PairMismatch { .. } => false,
            // Handled before the trigger executes.
            ReproSpec::SerialDivergence => unreachable!("serial divergence returns early"),
        },
    }
}

/// The clone-free twin of [`confirms`]: judges a read-only trigger
/// directly against a shared engine snapshot via [`Engine::query`],
/// presenting the exact fault-clock ordinals the mutable path would
/// (`statements_executed`, then one per follow-up probe).  Returns
/// `None` when the candidate needs mutable confirmation — a non-read-only
/// trigger, or a snapshot whose active session still holds an open
/// transaction — in which case the caller falls back to the clone path.
/// Verdict-identity with [`confirms`] is covered by the `readonly_query`
/// differential suite.
pub(crate) fn confirms_readonly(
    engine: &Engine,
    setup: &[&Statement],
    last: &Statement,
    repro: &ReproSpec,
) -> Option<bool> {
    if !last.is_read_only() || engine.in_transaction(engine.active_session()) {
        return None;
    }
    let ordinal = engine.statements_executed();
    if matches!(repro, ReproSpec::SerialDivergence) {
        // The mutable path runs the trigger before digesting, but a
        // read-only trigger outside a transaction cannot move the digest,
        // so the probe is skipped here.
        let Some(episode) = committed_units(setup.iter().copied().chain(std::iter::once(last)))
        else {
            return Some(false);
        };
        let (matched, _) =
            serial_orders_match(engine.dialect(), engine.bugs(), &episode, &state_digest(engine));
        return Some(!matched);
    }
    Some(match engine.query(ordinal, last) {
        Ok(result) => match repro {
            ReproSpec::MissingRow(row) => !result.contains_row(row),
            ReproSpec::PartitionMismatch { partitions } => {
                match partition_union_at(engine, ordinal + 1, partitions) {
                    Some(union) => row_multiset(&result.rows) != union,
                    None => false,
                }
            }
            ReproSpec::PairMismatch { rewritten } => match engine.query(ordinal + 1, rewritten) {
                Ok(rewrite_result) => match norec_sum(&rewrite_result) {
                    Some(sum) => result.rows.len() as i64 != sum,
                    None => false,
                },
                Err(_) => false,
            },
            _ => false,
        },
        Err(e) => match repro {
            ReproSpec::Crash => e.is_crash(),
            ReproSpec::UnexpectedError => !e.is_crash() && !ErrorOracle.is_expected(last, &e),
            _ => false,
        },
    })
}

/// FNV-1a over a statement's SQL rendering, computed without allocating
/// the string (a `fmt::Write` sink hashes the fragments as they stream).
pub(crate) fn statement_hash(stmt: &Statement) -> u64 {
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    let _ = write!(w, "{stmt}");
    w.0
}

/// A stable key for a [`ReproSpec`], for the verdict memo.
fn repro_hash(repro: &ReproSpec) -> u64 {
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    match repro {
        ReproSpec::MissingRow(row) => {
            let _ = w.write_str("missing-row");
            for v in row {
                let _ = write!(w, "\u{1f}{}", v.to_sql_literal());
            }
        }
        ReproSpec::UnexpectedError => {
            let _ = w.write_str("unexpected-error");
        }
        ReproSpec::Crash => {
            let _ = w.write_str("crash");
        }
        ReproSpec::PartitionMismatch { partitions } => {
            let _ = w.write_str("partition-mismatch");
            for p in partitions {
                let _ = write!(w, "\u{1f}{p}");
            }
        }
        ReproSpec::PairMismatch { rewritten } => {
            let _ = write!(w, "pair-mismatch\u{1f}{rewritten}");
        }
        ReproSpec::SerialDivergence => {
            let _ = w.write_str("serial-divergence");
        }
    }
    w.0
}

/// FNV-1a over an oracle registry name, for the verdict-memo key.
fn fnv1a_str(name: &str) -> u64 {
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    let _ = w.write_str(name);
    w.0
}

struct FnvWriter(u64);

impl fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for byte in s.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

/// A stable key for (dialect, enabled fault set).
fn profile_key(dialect: Dialect, profile: &BugProfile) -> u64 {
    let mut key = splitmix(dialect as u64 ^ 0x7265_706c_6179_3031);
    for bug in profile.iter() {
        key = combine(key, bug as u64);
    }
    key
}

/// Order-dependent 64-bit hash combinator with a strong finalizer, so
/// prefix keys of different logs (and different profiles) collide only
/// with negligible probability.
pub(crate) fn combine(key: u64, value: u64) -> u64 {
    splitmix(key ^ value.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(key << 6))
}

/// The splitmix64 finalizer.
fn splitmix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancer_sql::value::Value;

    fn script(sql: &str) -> Vec<Statement> {
        lancer_sql::parse_script(sql).unwrap()
    }

    #[test]
    fn cached_verdicts_match_the_uncached_path() {
        let stmts = script(
            "CREATE TABLE t0(c0);
             INSERT INTO t0(c0) VALUES (1), (2);
             CREATE INDEX i0 ON t0(c0);
             SELECT * FROM t0;",
        );
        let mut cache = ReplayCache::new(Dialect::Sqlite);
        // Three distinct repro rows exercise all three cache tiers: the
        // first walk marks prefixes, the second snapshots them, the third
        // resumes from snapshots — and an exact repeat hits the verdict
        // memo without replaying at all.
        for row in [vec![Value::Integer(1)], vec![Value::Integer(7)], vec![Value::Integer(9)]] {
            let repro = ReproSpec::MissingRow(row);
            for profile in [BugProfile::none(), lancer_engine::BugProfile::all_for(Dialect::Sqlite)]
            {
                let uncached = crate::runner::reproduces(Dialect::Sqlite, &profile, &stmts, &repro);
                assert_eq!(cache.reproduces("containment", &profile, &stmts, &repro), uncached);
                assert_eq!(cache.reproduces("containment", &profile, &stmts, &repro), uncached);
            }
        }
        let stats = cache.stats();
        assert!(stats.prefix_hits > 0, "third walks must resume from snapshots: {stats:?}");
        assert!(stats.verdict_hits > 0, "exact repeats must hit the verdict memo: {stats:?}");
        assert!(stats.statements_skipped > 0);
    }

    #[test]
    fn subset_replays_only_execute_their_suffix() {
        let stmts = script(
            "CREATE TABLE t0(c0);
             INSERT INTO t0(c0) VALUES (1);
             INSERT INTO t0(c0) VALUES (2);
             INSERT INTO t0(c0) VALUES (3);
             SELECT * FROM t0;",
        );
        let mut cache = ReplayCache::new(Dialect::Sqlite);
        let mut session = ReplaySession::new(&mut cache, "containment", &stmts);
        let repro_a = ReproSpec::MissingRow(vec![Value::Integer(1)]);
        let repro_b = ReproSpec::MissingRow(vec![Value::Integer(99)]);
        let none = BugProfile::none();
        // First walk marks the prefixes, second walk (a recurrence, here a
        // different repro question over the same log) takes the snapshots —
        // cold one-shot replays never pay for cloning.
        assert!(!session.reproduces_all(&none, &repro_a));
        assert_eq!(session.cache.snapshot_count(), 0, "cold prefixes are not snapshotted");
        assert!(session.reproduces_all(&none, &repro_b));
        assert!(session.cache.snapshot_count() > 0, "recurring prefixes are snapshotted");
        let executed_full = session.cache.stats().statements_replayed;
        // Dropping statement 3 keeps the prefix [0, 1, 2] cached: only the
        // trigger runs again, no setup statement is re-executed.
        assert!(!session.reproduces_subset(&none, &[0, 1, 2, 4], &repro_a));
        let stats = session.cache.stats();
        assert_eq!(stats.statements_replayed, executed_full, "suffix-only replay");
        assert_eq!(stats.statements_skipped, 3);
        // The same question again is answered from the verdict memo.
        assert!(!session.reproduces_subset(&none, &[0, 1, 2, 4], &repro_a));
        assert_eq!(session.cache.stats().statements_replayed, executed_full);
        assert!(session.cache.stats().verdict_hits > 0);
    }

    #[test]
    fn profiles_never_share_snapshots() {
        let stmts = script("CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1); SELECT * FROM t0;");
        let mut cache = ReplayCache::new(Dialect::Sqlite);
        // Two different questions over the same log force two walks per
        // profile (an identical question would short-circuit in the
        // verdict memo without walking).
        let repro_a = ReproSpec::MissingRow(vec![Value::Integer(1)]);
        let repro_b = ReproSpec::MissingRow(vec![Value::Integer(2)]);
        let none = BugProfile::none();
        let all = lancer_engine::BugProfile::all_for(Dialect::Sqlite);
        let _ = cache.reproduces("containment", &none, &stmts, &repro_a);
        let _ = cache.reproduces("containment", &none, &stmts, &repro_b);
        let before = cache.snapshot_count();
        assert!(before > 0);
        let _ = cache.reproduces("containment", &all, &stmts, &repro_a);
        assert_eq!(cache.snapshot_count(), before, "a new profile starts cold");
        let _ = cache.reproduces("containment", &all, &stmts, &repro_b);
        assert_eq!(cache.snapshot_count(), before * 2, "distinct profile, distinct prefixes");
    }

    #[test]
    fn zero_capacity_disables_snapshots_but_not_verdicts() {
        let stmts = script("CREATE TABLE t0(c0); SELECT * FROM t0;");
        let mut cache = ReplayCache::with_max_snapshots(Dialect::Sqlite, 0);
        let repro = ReproSpec::MissingRow(vec![Value::Integer(1)]);
        assert!(cache.reproduces("containment", &BugProfile::none(), &stmts, &repro));
        assert_eq!(cache.snapshot_count(), 0);
        assert_eq!(cache.stats().prefix_hits, 0);
    }

    #[test]
    fn verdict_memo_is_scoped_per_oracle() {
        // Regression guard: two oracles asking a question over the same
        // (profile, statement log, repro spec) triple must not share a
        // memo entry — the second oracle's verdict is recomputed, not
        // served from the first oracle's slot.  Before the oracle name
        // joined the key, the NoREC/TLP pair from one generated database
        // could cross-hit here.
        let stmts = script(
            "CREATE TABLE t0(c0);
             INSERT INTO t0(c0) VALUES (1), (NULL);
             SELECT t0.c0 FROM t0;",
        );
        let partitions = script(
            "SELECT t0.c0 FROM t0 WHERE t0.c0 = 1;
             SELECT t0.c0 FROM t0 WHERE NOT (t0.c0 = 1);
             SELECT t0.c0 FROM t0 WHERE (t0.c0 = 1) IS NULL;",
        );
        let repro = ReproSpec::PartitionMismatch { partitions };
        let none = BugProfile::none();
        let mut cache = ReplayCache::new(Dialect::Sqlite);
        let tlp_verdict = {
            let mut session = ReplaySession::new(&mut cache, "tlp", &stmts);
            session.reproduces_all(&none, &repro)
        };
        let hits_before = cache.stats().verdict_hits;
        // The identical question under the *same* oracle name hits the memo...
        let mut session = ReplaySession::new(&mut cache, "tlp", &stmts);
        assert_eq!(session.reproduces_all(&none, &repro), tlp_verdict);
        assert_eq!(session.cache.stats().verdict_hits, hits_before + 1);
        // ...while the identical question under a different oracle name is
        // recomputed (same verdict, but no memo hit).
        let mut session = ReplaySession::new(&mut cache, "norec", &stmts);
        assert_eq!(session.reproduces_all(&none, &repro), tlp_verdict);
        assert_eq!(
            session.cache.stats().verdict_hits,
            hits_before + 1,
            "a different oracle must not be served another oracle's memo entry"
        );
    }

    #[test]
    fn pair_mismatch_confirms_via_the_rewrite_sum() {
        // A correct engine satisfies the NoREC property, so the detection
        // does not reproduce...
        let stmts = script(
            "CREATE TABLE t0(c0);
             INSERT INTO t0(c0) VALUES (1), (2), (NULL);
             SELECT t0.c0 FROM t0 WHERE t0.c0 = 1;",
        );
        let rewritten = Box::new(
            lancer_sql::parse_statement(
                "SELECT SUM(CASE WHEN t0.c0 = 1 THEN 1 ELSE 0 END) FROM t0",
            )
            .unwrap(),
        );
        let none = BugProfile::none();
        assert!(!crate::runner::reproduces(
            Dialect::Sqlite,
            &none,
            &stmts,
            &ReproSpec::PairMismatch { rewritten: rewritten.clone() }
        ));
        // ...while a rewrite that disagrees with the trigger's count does
        // (the synthetic analogue of an optimization bug), and a rewrite
        // that errors out fails closed.
        let wrong = Box::new(
            lancer_sql::parse_statement(
                "SELECT SUM(CASE WHEN t0.c0 = 9 THEN 1 ELSE 0 END) FROM t0",
            )
            .unwrap(),
        );
        assert!(crate::runner::reproduces(
            Dialect::Sqlite,
            &none,
            &stmts,
            &ReproSpec::PairMismatch { rewritten: wrong }
        ));
        let broken = Box::new(lancer_sql::parse_statement("SELECT SUM(c0) FROM missing").unwrap());
        assert!(!crate::runner::reproduces(
            Dialect::Sqlite,
            &none,
            &stmts,
            &ReproSpec::PairMismatch { rewritten: broken }
        ));
    }

    #[test]
    fn statement_hashes_key_on_rendered_sql() {
        let a = lancer_sql::parse_statement("SELECT 1").unwrap();
        let b = lancer_sql::parse_statement("SELECT  1").unwrap();
        let c = lancer_sql::parse_statement("SELECT 2").unwrap();
        assert_eq!(statement_hash(&a), statement_hash(&b), "whitespace-equal statements agree");
        assert_ne!(statement_hash(&a), statement_hash(&c));
    }
}
