//! The campaign runner: the equivalent of letting SQLancer run against a
//! DBMS for a testing session, plus the post-processing the paper performs
//! by hand (reduction, root-cause attribution, tracker classification).
//!
//! A campaign repeatedly (1) generates a random database, (2) applies the
//! error oracle to state-generation failures, (3) runs containment checks,
//! and then reduces and attributes every detection to the injected fault(s)
//! that reproduce it.  Attribution is done by re-executing the reduced test
//! case against engines with exactly one fault enabled — the ground truth
//! that lets the benches regenerate Tables 2 and 3 and Figures 2 and 3.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use lancer_engine::{BugId, BugProfile, BugStatus, Dialect, Engine};
use lancer_sql::ast::stmt::{ColumnConstraint, Statement, StatementKind};
use lancer_sql::value::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::gen::{GenConfig, StateGenerator};
use crate::oracle::{ContainmentOracle, ErrorOracle, OracleOutcome};
use crate::reduce::reduce_statements;

/// Which oracle produced a detection (Table 3's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DetectionKind {
    /// The pivot row was missing from the result set.
    Containment,
    /// An unexpected (non-crash) error was returned.
    Error,
    /// A simulated crash (SEGFAULT).
    Crash,
}

impl DetectionKind {
    /// The column label used by Table 3.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DetectionKind::Containment => "Contains",
            DetectionKind::Error => "Error",
            DetectionKind::Crash => "SEGFAULT",
        }
    }
}

/// A raw detection before reduction and attribution.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Which oracle fired.
    pub kind: DetectionKind,
    /// The error message (or a containment description).
    pub message: String,
    /// The statements executed so far, ending with the triggering statement.
    pub statements: Vec<Statement>,
    /// For containment violations: the row that must have been fetched.
    pub expected_row: Option<Vec<Value>>,
}

/// A detection after reduction and attribution to an injected fault.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoundBug {
    /// The injected fault this detection reproduces.
    pub id: BugId,
    /// The oracle that found it.
    pub kind: DetectionKind,
    /// The tracker classification of the fault (drives Table 2).
    pub status: BugStatus,
    /// The reduced test case, as SQL text (one statement per line).
    pub reduced_sql: Vec<String>,
    /// The statement kinds appearing in the reduced test case (Figure 3).
    pub statement_kinds: Vec<StatementKind>,
    /// The error message or containment description.
    pub message: String,
}

impl FoundBug {
    /// Number of statements (≈ LOC) of the reduced test case (Figure 2).
    #[must_use]
    pub fn reduced_loc(&self) -> usize {
        self.reduced_sql.len()
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The dialect (DBMS) under test.
    pub dialect: Dialect,
    /// Number of random databases to generate.
    pub databases: usize,
    /// Number of containment checks per database.
    pub queries_per_database: usize,
    /// RNG seed.
    pub seed: u64,
    /// Generator tuning.
    pub gen: GenConfig,
    /// Worker threads (each owns its databases, as in §3.4).
    pub threads: usize,
    /// The fault profile; defaults to every fault registered for the dialect.
    pub bugs: Option<BugProfile>,
}

impl CampaignConfig {
    /// A campaign with sensible defaults for the dialect.
    #[must_use]
    pub fn new(dialect: Dialect) -> CampaignConfig {
        CampaignConfig {
            dialect,
            databases: 30,
            queries_per_database: 60,
            seed: 0x5EED,
            gen: GenConfig::default(),
            threads: 1,
            bugs: None,
        }
    }

    /// A small, fast campaign for unit/integration tests.
    #[must_use]
    pub fn quick(dialect: Dialect) -> CampaignConfig {
        CampaignConfig {
            dialect,
            databases: 8,
            queries_per_database: 30,
            seed: 0x5EED,
            gen: GenConfig::tiny(),
            threads: 1,
            bugs: None,
        }
    }

    fn profile(&self) -> BugProfile {
        self.bugs.clone().unwrap_or_else(|| BugProfile::all_for(self.dialect))
    }
}

/// Aggregate statistics of a campaign.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Total SQL statements executed against the engine.
    pub statements_executed: u64,
    /// Containment checks performed.
    pub queries_checked: u64,
    /// Raw containment violations observed (before dedup).
    pub containment_violations: u64,
    /// Raw unexpected errors observed (before dedup).
    pub unexpected_errors: u64,
    /// Raw crashes observed (before dedup).
    pub crashes: u64,
    /// Detections that also reproduce with every fault disabled (oracle
    /// divergence); they are discarded, mirroring false bug reports.
    pub spurious: u64,
    /// Detections that could not be attributed to a single fault.
    pub unattributed: u64,
    /// Wall-clock duration in milliseconds.
    pub elapsed_ms: u128,
    /// Feature-coverage fraction reached on the engine (Table 4 analogue).
    pub coverage_fraction: f64,
}

impl CampaignStats {
    /// Statements per second achieved by the campaign (§3.4 reports
    /// 5,000–20,000 for SQLancer).
    #[must_use]
    pub fn statements_per_second(&self) -> f64 {
        if self.elapsed_ms == 0 {
            return 0.0;
        }
        self.statements_executed as f64 * 1000.0 / self.elapsed_ms as f64
    }
}

/// The result of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The dialect that was tested.
    pub dialect: Dialect,
    /// Deduplicated, attributed findings.
    pub found: Vec<FoundBug>,
    /// Aggregate statistics.
    pub stats: CampaignStats,
}

impl CampaignReport {
    /// Table 2: findings grouped by tracker classification.
    #[must_use]
    pub fn table2_counts(&self) -> BTreeMap<BugStatus, usize> {
        let mut out = BTreeMap::new();
        for f in &self.found {
            *out.entry(f.status).or_insert(0) += 1;
        }
        out
    }

    /// Table 3: *true* bugs grouped by the oracle that found them.
    #[must_use]
    pub fn table3_counts(&self) -> BTreeMap<DetectionKind, usize> {
        let mut out = BTreeMap::new();
        for f in self.found.iter().filter(|f| f.status.is_true_bug()) {
            *out.entry(f.kind).or_insert(0) += 1;
        }
        out
    }

    /// Figure 2: the reduced test-case lengths of all findings.
    #[must_use]
    pub fn reduced_lengths(&self) -> Vec<usize> {
        self.found.iter().map(FoundBug::reduced_loc).collect()
    }

    /// Figure 3: for each statement kind, the fraction of findings whose
    /// reduced test case contains it, together with the number of findings
    /// where a statement of that kind was the *triggering* (last) statement,
    /// per oracle.
    #[must_use]
    pub fn statement_distribution(&self) -> Vec<StatementDistributionRow> {
        let total = self.found.len().max(1) as f64;
        let mut per_kind: BTreeMap<StatementKind, StatementDistributionRow> = BTreeMap::new();
        for f in &self.found {
            let kinds: BTreeSet<StatementKind> = f.statement_kinds.iter().copied().collect();
            for k in kinds {
                per_kind.entry(k).or_insert_with(|| StatementDistributionRow::new(k)).containing +=
                    1;
            }
            if let Some(last) = f.statement_kinds.last() {
                let row =
                    per_kind.entry(*last).or_insert_with(|| StatementDistributionRow::new(*last));
                match f.kind {
                    DetectionKind::Containment => row.triggered_contains += 1,
                    DetectionKind::Error => row.triggered_error += 1,
                    DetectionKind::Crash => row.triggered_crash += 1,
                }
            }
        }
        let mut rows: Vec<StatementDistributionRow> = per_kind.into_values().collect();
        for r in &mut rows {
            r.fraction = r.containing as f64 / total;
        }
        rows.sort_by(|a, b| {
            b.fraction.partial_cmp(&a.fraction).unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    /// §4.3 column-constraint statistics: the fraction of findings whose
    /// reduced test case uses UNIQUE, PRIMARY KEY, CREATE INDEX and FOREIGN
    /// KEY constructs.
    #[must_use]
    pub fn constraint_stats(&self) -> ConstraintStats {
        let total = self.found.len().max(1) as f64;
        let mut unique = 0usize;
        let mut primary_key = 0usize;
        let mut create_index = 0usize;
        for f in &self.found {
            let mut has_unique = false;
            let mut has_pk = false;
            let mut has_index = false;
            for sql in &f.reduced_sql {
                if let Ok(stmt) = lancer_sql::parse_statement(sql) {
                    match &stmt {
                        Statement::CreateTable(ct) => {
                            for c in &ct.columns {
                                has_unique |= c
                                    .constraints
                                    .iter()
                                    .any(|cc| matches!(cc, ColumnConstraint::Unique));
                                has_pk |= c.has_primary_key();
                            }
                            has_pk |= ct.constraints.iter().any(|tc| {
                                matches!(tc, lancer_sql::ast::stmt::TableConstraint::PrimaryKey(_))
                            });
                            has_unique |= ct.constraints.iter().any(|tc| {
                                matches!(tc, lancer_sql::ast::stmt::TableConstraint::Unique(_))
                            });
                        }
                        Statement::CreateIndex(ci) => {
                            has_index = true;
                            has_unique |= ci.unique;
                        }
                        _ => {}
                    }
                }
            }
            unique += usize::from(has_unique);
            primary_key += usize::from(has_pk);
            create_index += usize::from(has_index);
        }
        ConstraintStats {
            unique_fraction: unique as f64 / total,
            primary_key_fraction: primary_key as f64 / total,
            create_index_fraction: create_index as f64 / total,
            foreign_key_fraction: 0.0,
        }
    }

    /// Mean reduced test-case length (the paper reports 3.71 LOC).
    #[must_use]
    pub fn mean_reduced_loc(&self) -> f64 {
        if self.found.is_empty() {
            return 0.0;
        }
        self.reduced_lengths().iter().sum::<usize>() as f64 / self.found.len() as f64
    }
}

/// One row of the Figure 3 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatementDistributionRow {
    /// The statement kind.
    pub kind: StatementKind,
    /// Number of findings whose reduced case contains this kind.
    pub containing: usize,
    /// Fraction of findings whose reduced case contains this kind.
    pub fraction: f64,
    /// Findings whose triggering statement was of this kind, per oracle.
    pub triggered_contains: usize,
    /// Triggering statement count for the error oracle.
    pub triggered_error: usize,
    /// Triggering statement count for crashes.
    pub triggered_crash: usize,
}

impl StatementDistributionRow {
    fn new(kind: StatementKind) -> Self {
        StatementDistributionRow {
            kind,
            containing: 0,
            fraction: 0.0,
            triggered_contains: 0,
            triggered_error: 0,
            triggered_crash: 0,
        }
    }
}

/// §4.3 constraint statistics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConstraintStats {
    /// Fraction of findings using a `UNIQUE` constraint.
    pub unique_fraction: f64,
    /// Fraction of findings using a `PRIMARY KEY`.
    pub primary_key_fraction: f64,
    /// Fraction of findings using an explicit `CREATE INDEX`.
    pub create_index_fraction: f64,
    /// Fraction of findings using a `FOREIGN KEY` (not modelled: 0).
    pub foreign_key_fraction: f64,
}

/// Re-executes a test case on a fresh engine with the given fault profile
/// and reports whether the detection still reproduces.
#[must_use]
pub fn reproduces(
    dialect: Dialect,
    profile: &BugProfile,
    statements: &[Statement],
    kind: DetectionKind,
    expected_row: Option<&[Value]>,
) -> bool {
    if statements.is_empty() {
        return false;
    }
    let mut engine = Engine::with_bugs(dialect, profile.clone());
    let (setup, last) = statements.split_at(statements.len() - 1);
    for stmt in setup {
        // Setup statements may legitimately fail after reduction removed
        // their prerequisites; keep going, mirroring SQLancer's reducer.
        let _ = engine.execute(stmt);
    }
    let last = &last[0];
    match engine.execute(last) {
        Ok(result) => match kind {
            // A containment failure only counts when the triggering statement
            // is still the query itself; otherwise the "missing row" would be
            // trivially true for any non-query statement.
            DetectionKind::Containment if last.is_read_only() => match expected_row {
                Some(row) => !result.contains_row(row),
                None => false,
            },
            _ => false,
        },
        Err(e) => match kind {
            DetectionKind::Crash => e.is_crash(),
            DetectionKind::Error => !e.is_crash() && !ErrorOracle.is_expected(last, &e),
            // A containment detection reproduces only when the query runs and
            // misses the pivot row; an error is a different failure mode and
            // must be attributed through an Error/Crash detection instead.
            DetectionKind::Containment => false,
        },
    }
}

/// Runs a campaign for one dialect.
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let started = Instant::now();
    let profile = config.profile();
    let threads = config.threads.max(1);
    let mut raw: Vec<Detection> = Vec::new();
    let mut stats = CampaignStats::default();
    let mut coverage = lancer_engine::Coverage::new();

    let per_thread = config.databases.div_ceil(threads);
    let results: Vec<(Vec<Detection>, CampaignStats, lancer_engine::Coverage)> =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let profile = profile.clone();
                let config = config.clone();
                handles
                    .push(scope.spawn(move || run_worker(&config, &profile, t as u64, per_thread)));
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
    for (mut detections, s, c) in results {
        raw.append(&mut detections);
        stats.statements_executed += s.statements_executed;
        stats.queries_checked += s.queries_checked;
        stats.containment_violations += s.containment_violations;
        stats.unexpected_errors += s.unexpected_errors;
        stats.crashes += s.crashes;
        coverage.merge(&c);
    }

    // Reduction + attribution + deduplication.
    let mut found: Vec<FoundBug> = Vec::new();
    let mut seen: BTreeSet<BugId> = BTreeSet::new();
    for detection in raw {
        let expected = detection.expected_row.clone();
        let expected_ref = expected.as_deref();
        // Discard detections that also "reproduce" without any fault: those
        // indicate oracle divergence, the analogue of a false bug report.
        if reproduces(
            config.dialect,
            &BugProfile::none(),
            &detection.statements,
            detection.kind,
            expected_ref,
        ) {
            stats.spurious += 1;
            continue;
        }
        if !reproduces(
            config.dialect,
            &profile,
            &detection.statements,
            detection.kind,
            expected_ref,
        ) {
            // Not deterministic enough to analyse (e.g. depends on statement
            // counters); skip rather than misattribute.
            stats.unattributed += 1;
            continue;
        }
        // The reduction predicate is differential: the candidate must still
        // fail with the faults enabled *and* pass on the fault-free engine.
        // Without the second condition the reducer could drop the statements
        // that make the pivot row exist in the first place.
        let reduced = reduce_statements(&detection.statements, &|candidate| {
            reproduces(config.dialect, &profile, candidate, detection.kind, expected_ref)
                && !reproduces(
                    config.dialect,
                    &BugProfile::none(),
                    candidate,
                    detection.kind,
                    expected_ref,
                )
        });
        let mut attributed: Vec<BugId> = Vec::new();
        for bug in profile.iter() {
            if seen.contains(&bug) {
                continue;
            }
            let single = BugProfile::with(&[bug]);
            if reproduces(config.dialect, &single, &reduced, detection.kind, expected_ref) {
                attributed.push(bug);
            }
        }
        if attributed.is_empty() {
            stats.unattributed += 1;
            continue;
        }
        for bug in attributed {
            seen.insert(bug);
            found.push(FoundBug {
                id: bug,
                kind: detection.kind,
                status: bug.info().status,
                reduced_sql: reduced.iter().map(ToString::to_string).collect(),
                statement_kinds: reduced.iter().map(Statement::kind).collect(),
                message: detection.message.clone(),
            });
        }
    }

    stats.elapsed_ms = started.elapsed().as_millis().max(1);
    stats.coverage_fraction = coverage.fraction();
    CampaignReport { dialect: config.dialect, found, stats }
}

fn run_worker(
    config: &CampaignConfig,
    profile: &BugProfile,
    worker: u64,
    databases: usize,
) -> (Vec<Detection>, CampaignStats, lancer_engine::Coverage) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (worker.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let mut detections = Vec::new();
    let mut stats = CampaignStats::default();
    let mut coverage = lancer_engine::Coverage::new();
    let error_oracle = ErrorOracle;
    let containment = ContainmentOracle::new(config.dialect, config.gen.clone());
    for _ in 0..databases {
        let mut engine = Engine::with_bugs(config.dialect, profile.clone());
        let mut generator = StateGenerator::new(config.dialect, config.gen.clone());
        let (log, failures) = generator.generate_database(&mut rng, &mut engine);
        for (stmt, err) in &failures {
            if let Some(OracleOutcome::UnexpectedError { message, crash, .. }) =
                error_oracle.check(stmt, err)
            {
                let mut statements = log.clone();
                statements.push(stmt.clone());
                if crash {
                    stats.crashes += 1;
                } else {
                    stats.unexpected_errors += 1;
                }
                detections.push(Detection {
                    kind: if crash { DetectionKind::Crash } else { DetectionKind::Error },
                    message,
                    statements,
                    expected_row: None,
                });
            }
        }
        for _ in 0..config.queries_per_database {
            stats.queries_checked += 1;
            match containment.check_once(&mut rng, &mut engine) {
                OracleOutcome::Passed | OracleOutcome::Skipped => {}
                OracleOutcome::ContainmentViolation { query, expected_row } => {
                    stats.containment_violations += 1;
                    let mut statements = log.clone();
                    statements.push(query);
                    detections.push(Detection {
                        kind: DetectionKind::Containment,
                        message: format!(
                            "pivot row ({}) not contained in the result set",
                            expected_row
                                .iter()
                                .map(Value::to_sql_literal)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                        statements,
                        expected_row: Some(expected_row),
                    });
                }
                OracleOutcome::UnexpectedError { statement, message, crash } => {
                    if crash {
                        stats.crashes += 1;
                    } else {
                        stats.unexpected_errors += 1;
                    }
                    let mut statements = log.clone();
                    statements.push(statement);
                    detections.push(Detection {
                        kind: if crash { DetectionKind::Crash } else { DetectionKind::Error },
                        message,
                        statements,
                        expected_row: None,
                    });
                }
            }
        }
        stats.statements_executed += engine.statements_executed();
        coverage.merge(engine.coverage());
    }
    (detections, stats, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_on_a_correct_engine_finds_nothing() {
        let mut config = CampaignConfig::quick(Dialect::Sqlite);
        config.bugs = Some(BugProfile::none());
        config.databases = 3;
        config.queries_per_database = 20;
        let report = run_campaign(&config);
        assert!(report.found.is_empty(), "unexpected findings: {:#?}", report.found);
        assert!(report.stats.queries_checked > 0);
        assert!(report.stats.statements_executed > 0);
    }

    #[test]
    fn campaign_finds_injected_faults_in_sqlite_profile() {
        let mut config = CampaignConfig::quick(Dialect::Sqlite);
        config.databases = 10;
        config.queries_per_database = 40;
        let report = run_campaign(&config);
        assert!(!report.found.is_empty(), "expected at least one finding");
        // Every finding maps to a fault of the right dialect and its reduced
        // case is non-empty.
        for f in &report.found {
            assert_eq!(f.id.info().dialect, Dialect::Sqlite);
            assert!(!f.reduced_sql.is_empty());
            assert!(f.reduced_loc() <= 30);
        }
        // Dedup: each fault appears at most once.
        let ids: BTreeSet<BugId> = report.found.iter().map(|f| f.id).collect();
        assert_eq!(ids.len(), report.found.len());
        // Aggregations are consistent.
        let table2: usize = report.table2_counts().values().sum();
        assert_eq!(table2, report.found.len());
        let table3: usize = report.table3_counts().values().sum();
        assert!(table3 <= report.found.len());
        assert!(report.mean_reduced_loc() >= 1.0);
        let dist = report.statement_distribution();
        assert!(!dist.is_empty());
    }

    #[test]
    fn reproduces_handles_empty_and_correct_cases() {
        assert!(!reproduces(Dialect::Sqlite, &BugProfile::none(), &[], DetectionKind::Error, None));
        let stmts = lancer_sql::parse_script(
            "CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1); SELECT * FROM t0;",
        )
        .unwrap();
        assert!(
            !reproduces(
                Dialect::Sqlite,
                &BugProfile::none(),
                &stmts,
                DetectionKind::Containment,
                Some(&[Value::Integer(1)])
            ),
            "the correct engine fetches the pivot row, so the detection does not reproduce"
        );
        assert!(
            reproduces(
                Dialect::Sqlite,
                &BugProfile::none(),
                &stmts,
                DetectionKind::Containment,
                Some(&[Value::Integer(2)])
            ),
            "a wrong expected row reproduces even without faults, which the spurious filter catches"
        );
    }

    #[test]
    fn multithreaded_campaign_matches_single_threaded_structure() {
        let mut config = CampaignConfig::quick(Dialect::Mysql);
        config.threads = 2;
        config.databases = 6;
        config.queries_per_database = 20;
        let report = run_campaign(&config);
        assert_eq!(report.dialect, Dialect::Mysql);
        for f in &report.found {
            assert_eq!(f.id.info().dialect, Dialect::Mysql);
        }
        assert!(report.stats.statements_per_second() > 0.0);
    }
}
