//! The campaign runner: the equivalent of letting SQLancer run against a
//! DBMS for a testing session, plus the post-processing the paper performs
//! by hand (reduction, root-cause attribution, tracker classification).
//!
//! A campaign repeatedly (1) generates a random database, (2) hands the
//! state to every registered [`Oracle`] — the error oracle inspects
//! state-generation failures once per database, per-query oracles such as
//! containment and TLP run `queries_per_database` checks — and then (3)
//! reduces and attributes every detection to the injected fault(s) that
//! reproduce it.  Attribution is done by re-executing the reduced test
//! case against engines with exactly one fault enabled — the ground truth
//! that lets the benches regenerate Tables 2 and 3 and Figures 2 and 3.
//!
//! Campaigns are configured with the fluent [`CampaignBuilder`]:
//!
//! ```
//! use lancer_core::Campaign;
//! use lancer_engine::Dialect;
//!
//! let report = Campaign::builder(Dialect::Sqlite)
//!     .quick()
//!     .databases(2)
//!     .queries(10)
//!     .oracle("containment")
//!     .oracle("tlp")
//!     .run();
//! assert!(report.stats.queries_checked > 0);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Instant;

use lancer_engine::{BugId, BugProfile, BugStatus, Dialect, Engine};
use lancer_sql::ast::stmt::{ColumnConstraint, Statement, StatementKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::gen::{GenConfig, StateGenerator};
use crate::oracle::{Cadence, Oracle, OracleCtx, OracleRegistry, ReproSpec, RngStream};
use crate::qpg::{PlanCoverage, PlanGuide, QpgConfig};
use crate::reduce::{reduce_hierarchical, ReduceOptions, ReductionStats};
use crate::replay::{DifferentialJudge, ReplayCache, ReplaySession};

pub use crate::oracle::DetectionKind;

/// A raw detection before reduction and attribution.
#[derive(Debug, Clone)]
pub struct Detection {
    /// The registry name of the oracle that fired.
    pub oracle: &'static str,
    /// The error message (or a mismatch description).
    pub message: String,
    /// The statements executed so far, ending with the triggering statement.
    pub statements: Vec<Statement>,
    /// How to re-check the detection on a fresh engine.
    pub repro: ReproSpec,
}

impl Detection {
    /// The detection kind (Table 3 classification).
    #[must_use]
    pub fn kind(&self) -> DetectionKind {
        self.repro.kind()
    }
}

impl Serialize for Detection {
    fn to_value(&self) -> serde::Value {
        use serde::Value as J;
        let repro = match &self.repro {
            ReproSpec::MissingRow(row) => J::Object(vec![(
                "missing_row".to_owned(),
                J::Array(row.iter().map(|v| J::String(v.to_sql_literal())).collect()),
            )]),
            ReproSpec::UnexpectedError => J::String("unexpected_error".to_owned()),
            ReproSpec::Crash => J::String("crash".to_owned()),
            ReproSpec::PartitionMismatch { partitions } => J::Object(vec![(
                "partition_mismatch".to_owned(),
                J::Array(partitions.iter().map(|s| J::String(s.to_string())).collect()),
            )]),
            ReproSpec::PairMismatch { rewritten } => {
                J::Object(vec![("pair_mismatch".to_owned(), J::String(rewritten.to_string()))])
            }
            ReproSpec::SerialDivergence => J::String("serial_divergence".to_owned()),
        };
        J::Object(vec![
            ("oracle".to_owned(), J::String(self.oracle.to_owned())),
            ("kind".to_owned(), J::String(self.kind().label().to_owned())),
            ("message".to_owned(), J::String(self.message.clone())),
            (
                "statements".to_owned(),
                J::Array(self.statements.iter().map(|s| J::String(s.to_string())).collect()),
            ),
            ("repro".to_owned(), repro),
        ])
    }
}

/// A detection after reduction and attribution to an injected fault.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoundBug {
    /// The injected fault this detection reproduces.
    pub id: BugId,
    /// The oracle class that found it.
    pub kind: DetectionKind,
    /// The registry name of the oracle that found it.
    pub oracle: String,
    /// The tracker classification of the fault (drives Table 2).
    pub status: BugStatus,
    /// The reduced test case, as SQL text (one statement per line).
    pub reduced_sql: Vec<String>,
    /// The statement kinds appearing in the reduced test case (Figure 3).
    pub statement_kinds: Vec<StatementKind>,
    /// The error message or containment description.
    pub message: String,
}

impl FoundBug {
    /// Number of statements (≈ LOC) of the reduced test case (Figure 2).
    #[must_use]
    pub fn reduced_loc(&self) -> usize {
        self.reduced_sql.len()
    }
}

/// How an oracle was requested on the builder.
enum OracleSpec {
    Named(String),
    Instance(Box<dyn Oracle>),
}

/// Fluent builder for [`Campaign`]s.
///
/// Defaults: 30 databases, 60 queries per database, seed `0x5EED`, one
/// thread, the full fault profile of the dialect, and — when no oracle is
/// requested explicitly — the classic PQS pair (`error` + `containment`).
pub struct CampaignBuilder {
    dialect: Dialect,
    databases: usize,
    queries_per_database: usize,
    seed: u64,
    gen: GenConfig,
    threads: usize,
    bugs: Option<BugProfile>,
    registry: OracleRegistry,
    oracles: Vec<OracleSpec>,
    plan_guidance: bool,
    plan_observation: bool,
    qpg: QpgConfig,
    multi_session: bool,
    reduction: Option<ReduceOptions>,
}

impl CampaignBuilder {
    fn new(dialect: Dialect) -> CampaignBuilder {
        CampaignBuilder {
            dialect,
            databases: 30,
            queries_per_database: 60,
            seed: 0x5EED,
            gen: GenConfig::default(),
            threads: 1,
            bugs: None,
            registry: OracleRegistry::builtin(),
            oracles: Vec::new(),
            plan_guidance: false,
            plan_observation: false,
            qpg: QpgConfig::default(),
            multi_session: false,
            reduction: None,
        }
    }

    /// Switches to the small test preset (8 databases, 30 queries, tiny
    /// generator) — the old `CampaignConfig::quick`.
    #[must_use]
    pub fn quick(mut self) -> Self {
        self.databases = 8;
        self.queries_per_database = 30;
        self.gen = GenConfig::tiny();
        self
    }

    /// Number of random databases to generate.
    #[must_use]
    pub fn databases(mut self, databases: usize) -> Self {
        self.databases = databases;
        self
    }

    /// Number of per-query oracle checks per database.
    #[must_use]
    pub fn queries(mut self, queries_per_database: usize) -> Self {
        self.queries_per_database = queries_per_database;
        self
    }

    /// RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generator tuning.
    #[must_use]
    pub fn gen(mut self, gen: GenConfig) -> Self {
        self.gen = gen;
        self
    }

    /// Worker threads (each owns its databases, as in §3.4).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The fault profile (defaults to every fault of the dialect).
    #[must_use]
    pub fn bugs(mut self, bugs: BugProfile) -> Self {
        self.bugs = Some(bugs);
        self
    }

    /// Enables query-plan-guided state mutation (QPG, after Ba & Rigger):
    /// each worker fingerprints the plans of probe queries against the live
    /// catalog and, whenever a database yields no new plan for N
    /// consecutive probes, mutates the state with a plan-affecting
    /// statement (`CREATE INDEX` / `ANALYZE` / `DROP INDEX`) so subsequent
    /// oracle checks run against states the planner has not covered.
    ///
    /// **Defaults to off**, and off means *bit-identical*: the guidance
    /// machinery draws exclusively from a dedicated `qpg` RNG substream and
    /// executes nothing unless enabled, so default campaigns reproduce
    /// pre-QPG reports exactly at the same seed
    /// (`plan_guidance_off_is_bit_identical` guards this).
    #[must_use]
    pub fn plan_guidance(mut self, enabled: bool) -> Self {
        self.plan_guidance = enabled;
        self
    }

    /// Observation-only plan coverage: fingerprint probe-query plans (so
    /// [`CampaignStats::unique_plans`] is populated) without ever mutating
    /// state.  This is the unguided baseline the `table_qpg` bench compares
    /// against; oracle findings are unaffected.  Implied by
    /// [`plan_guidance`](CampaignBuilder::plan_guidance).
    #[must_use]
    pub fn plan_observation(mut self, enabled: bool) -> Self {
        self.plan_observation = enabled;
        self
    }

    /// Tunes the QPG stagnation threshold (N probes without a new plan
    /// before a mutation fires).  Only meaningful with
    /// [`plan_guidance`](CampaignBuilder::plan_guidance).
    #[must_use]
    pub fn plan_stagnation(mut self, threshold: usize) -> Self {
        self.qpg.stagnation_threshold = threshold.max(1);
        self
    }

    /// Enables multi-session transaction episodes: after each database is
    /// generated, the worker appends a deterministic interleaved
    /// `BEGIN`/DML/`COMMIT`/`ROLLBACK` episode across 2–3 logical sessions
    /// to the statement log, drawn from the worker's *primary* RNG stream
    /// (see [`StateGenerator::generate_txn_episode`]).  This is the state
    /// the `serializability` oracle checks.
    ///
    /// **Defaults to off**, and off means *bit-identical*: no extra RNG
    /// draws, no extra statements, so default campaigns reproduce
    /// pre-transaction reports exactly at the same seed.
    ///
    /// [`StateGenerator::generate_txn_episode`]: crate::gen::StateGenerator::generate_txn_episode
    #[must_use]
    pub fn multi_session(mut self, enabled: bool) -> Self {
        self.multi_session = enabled;
        self
    }

    /// Overrides the hierarchical reducer's configuration (phases and
    /// worker count).  By default every phase runs and the candidate-
    /// evaluation worker count follows [`threads`](CampaignBuilder::threads);
    /// the reduced repros are bit-identical at any worker count, so this
    /// knob only trades wall-clock for cores — or, with
    /// [`ReduceOptions::statement_only`], recovers the PR-4-era
    /// statement-level reducer for before/after comparisons.
    #[must_use]
    pub fn reduction(mut self, options: ReduceOptions) -> Self {
        self.reduction = Some(options);
        self
    }

    /// Replaces the oracle registry used to resolve
    /// [`oracle`](CampaignBuilder::oracle) names.
    #[must_use]
    pub fn registry(mut self, registry: OracleRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers an oracle by registry name (`"containment"`, `"error"`,
    /// `"tlp"`, or any name added to the registry).  Oracles run per
    /// database in the order they are registered.  Requesting the same
    /// name twice runs two instances — rarely what you want for a
    /// primary-stream oracle like containment, since both would draw from
    /// the shared worker stream.
    ///
    /// # Panics
    ///
    /// [`build`](CampaignBuilder::build) panics if the name is unknown to
    /// the registry.
    #[must_use]
    pub fn oracle(mut self, name: impl Into<String>) -> Self {
        self.oracles.push(OracleSpec::Named(name.into()));
        self
    }

    /// Registers a pre-constructed oracle instance (for oracles that are
    /// not in the registry, e.g. closures over extra state).
    #[must_use]
    pub fn oracle_instance(mut self, oracle: Box<dyn Oracle>) -> Self {
        self.oracles.push(OracleSpec::Instance(oracle));
        self
    }

    /// Registers every oracle of the registry, in canonical registry order
    /// (`error`, `containment`, `tlp`, `norec`, `serializability` for the
    /// builtin registry),
    /// skipping
    /// any oracle already requested by name — so combining it with explicit
    /// [`oracle`](CampaignBuilder::oracle) calls (or calling it twice)
    /// never duplicates an oracle.
    #[must_use]
    pub fn all_oracles(mut self) -> Self {
        let requested: BTreeSet<String> = self
            .oracles
            .iter()
            .map(|spec| match spec {
                OracleSpec::Named(name) => name.clone(),
                OracleSpec::Instance(oracle) => oracle.name().to_owned(),
            })
            .collect();
        let names: Vec<String> = self.registry.names().iter().map(|n| (*n).to_owned()).collect();
        for name in names {
            if !requested.contains(&name) {
                self.oracles.push(OracleSpec::Named(name));
            }
        }
        self
    }

    /// Builds the campaign, resolving named oracles through the registry.
    ///
    /// # Panics
    ///
    /// Panics when a requested oracle name is not in the registry.
    #[must_use]
    pub fn build(self) -> Campaign {
        let CampaignBuilder {
            dialect,
            databases,
            queries_per_database,
            seed,
            gen,
            threads,
            bugs,
            registry,
            oracles,
            plan_guidance,
            plan_observation,
            qpg,
            multi_session,
            reduction,
        } = self;
        let specs = if oracles.is_empty() {
            // The classic PQS pair, in the order the original runner used
            // (error oracle first per database).
            vec![OracleSpec::Named("error".to_owned()), OracleSpec::Named("containment".to_owned())]
        } else {
            oracles
        };
        let oracles: Vec<Box<dyn Oracle>> = specs
            .into_iter()
            .map(|spec| match spec {
                OracleSpec::Named(name) => {
                    registry.build(&name, dialect, &gen).unwrap_or_else(|| {
                        panic!(
                            "unknown oracle '{name}'; registered oracles: {:?}",
                            registry.names()
                        )
                    })
                }
                OracleSpec::Instance(oracle) => oracle,
            })
            .collect();
        Campaign {
            dialect,
            databases,
            queries_per_database,
            seed,
            gen,
            threads,
            bugs,
            oracles,
            plan_guidance,
            plan_observation,
            qpg,
            multi_session,
            reduction,
        }
    }

    /// Builds and runs the campaign.
    #[must_use]
    pub fn run(self) -> CampaignReport {
        self.build().run()
    }
}

/// A fully configured testing campaign over a set of registered oracles.
pub struct Campaign {
    dialect: Dialect,
    databases: usize,
    queries_per_database: usize,
    seed: u64,
    gen: GenConfig,
    threads: usize,
    bugs: Option<BugProfile>,
    oracles: Vec<Box<dyn Oracle>>,
    plan_guidance: bool,
    plan_observation: bool,
    qpg: QpgConfig,
    multi_session: bool,
    reduction: Option<ReduceOptions>,
}

impl fmt::Debug for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("dialect", &self.dialect)
            .field("databases", &self.databases)
            .field("queries_per_database", &self.queries_per_database)
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .field("oracles", &self.oracle_names())
            .finish_non_exhaustive()
    }
}

impl Campaign {
    /// Starts building a campaign for the dialect.
    #[must_use]
    pub fn builder(dialect: Dialect) -> CampaignBuilder {
        CampaignBuilder::new(dialect)
    }

    /// The dialect under test.
    #[must_use]
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// The registry names of the oracles this campaign runs, in order.
    #[must_use]
    pub fn oracle_names(&self) -> Vec<&'static str> {
        self.oracles.iter().map(|o| o.name()).collect()
    }

    fn profile(&self) -> BugProfile {
        self.bugs.clone().unwrap_or_else(|| BugProfile::all_for(self.dialect))
    }

    /// Runs the campaign: generation, oracle checks, reduction and
    /// attribution.
    #[must_use]
    pub fn run(&self) -> CampaignReport {
        let started = Instant::now();
        let profile = self.profile();
        let threads = self.threads.max(1);
        let mut raw: Vec<Detection> = Vec::new();
        let mut stats = CampaignStats::default();
        let mut coverage = lancer_engine::Coverage::new();

        // Counter baseline: oracle counters are cumulative interior-
        // mutability sums on shared instances, so `run()` (which takes
        // `&self` and is re-runnable) folds only the *delta* accrued by
        // this run — a second run of the same campaign reports identical
        // counter stats instead of doubled ones.
        let counter_baseline: Vec<Vec<(&'static str, u64)>> =
            self.oracles.iter().map(|o| o.counters()).collect();
        let per_thread = self.databases.div_ceil(threads);
        let results: Vec<(Vec<Detection>, CampaignStats, lancer_engine::Coverage, PlanCoverage)> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let profile = profile.clone();
                    handles
                        .push(scope.spawn(move || self.run_worker(&profile, t as u64, per_thread)));
                }
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
        let mut plan_coverage = PlanCoverage::new();
        for (mut detections, s, c, p) in results {
            raw.append(&mut detections);
            stats.statements_executed += s.statements_executed;
            stats.queries_checked += s.queries_checked;
            stats.containment_violations += s.containment_violations;
            stats.unexpected_errors += s.unexpected_errors;
            stats.crashes += s.crashes;
            stats.tlp_violations += s.tlp_violations;
            stats.norec_violations += s.norec_violations;
            stats.serializability_violations += s.serializability_violations;
            stats.plan_mutations += s.plan_mutations;
            stats.cow_table_copies += s.cow_table_copies;
            stats.cow_row_block_copies += s.cow_row_block_copies;
            stats.workspace_rewinds += s.workspace_rewinds;
            // The earliest point (in per-query checks) at which *any*
            // worker raised its first detection — the "checks until first
            // finding" bug-finding-speed metric `table_qpg` reports.
            stats.first_detection_check =
                match (stats.first_detection_check, s.first_detection_check) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            coverage.merge(&c);
            plan_coverage.merge(&p);
        }
        stats.unique_plans = plan_coverage.unique_plans();
        // Per-oracle work counters (interior-mutability sums shared across
        // the workers, read once here as the delta over this run's
        // baseline).  The runner folds the counter names it has stats
        // fields for; unknown names are ignored — custom oracles wanting
        // their counters surfaced need a matching `CampaignStats` field.
        for (oracle, baseline) in self.oracles.iter().zip(&counter_baseline) {
            for (name, value) in oracle.counters() {
                let before =
                    baseline.iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0);
                let delta = value.saturating_sub(before);
                match name {
                    "norec_pairs_checked" => stats.norec_pairs_checked += delta,
                    "norec_plan_divergences" => stats.norec_plan_divergences += delta,
                    "serial_episodes_checked" => stats.serial_episodes_checked += delta,
                    "serial_orders_tried" => stats.serial_orders_tried += delta,
                    _ => {}
                }
            }
        }

        // Reduction + attribution + deduplication.  Deduplication is
        // per-domain (see [`DetectionKind::dedup_domain`]): the PQS kinds
        // share one `seen` set — preserving the original runner's
        // first-detection-wins semantics bit for bit — while each
        // independent logic oracle deduplicates on its own, so its
        // presence never changes the other columns of Table 3.
        //
        // Every replay here — the spurious filter, each delta-debugging
        // candidate, each per-fault attribution run — goes through one
        // [`ReplayCache`]: candidates are index subsets of the detection
        // log, and a replay resumes from the deepest snapshot whose
        // statement-log prefix it shares (detections from the same
        // generated database share their whole generation log).  Verdicts
        // are bit-identical to fresh replays; only the cost changes.
        let mut cache = ReplayCache::new(self.dialect);
        // Copy-on-write and rewind counters are cumulative thread-locals;
        // sample them around the post-processing loop so the runner's own
        // replay work is attributed alongside the workers' deltas.
        let cow_before = lancer_storage::cow_stats();
        let rewinds_before = lancer_engine::workspace_rewinds();
        let mut found: Vec<FoundBug> = Vec::new();
        let mut seen: BTreeMap<&'static str, BTreeSet<BugId>> = BTreeMap::new();
        let none = BugProfile::none();
        // The hierarchical reducer's candidate-evaluation workers follow
        // the campaign's thread count unless configured explicitly, but
        // never exceed the hardware parallelism: wave evaluation overlaps
        // candidate replays only when cores are actually available, and
        // on a single-core host a pool is pure synchronization overhead.
        // The reduced repros are bit-identical at any worker count, so
        // this default only affects wall-clock, never output.
        let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
        let reduce_options = self.reduction.clone().unwrap_or(ReduceOptions {
            workers: threads.min(hardware),
            ..ReduceOptions::default()
        });
        let mut reduction_totals = ReductionStats::default();
        for detection in raw {
            let mut session =
                ReplaySession::new(&mut cache, detection.oracle, &detection.statements);
            // Discard detections that also "reproduce" without any fault:
            // those indicate oracle divergence, the analogue of a false bug
            // report.
            if session.reproduces_all(&none, &detection.repro) {
                stats.spurious += 1;
                continue;
            }
            if !session.reproduces_all(&profile, &detection.repro) {
                // Not deterministic enough to analyse (e.g. depends on
                // statement counters); skip rather than misattribute.
                stats.unattributed += 1;
                continue;
            }
            // The reduction predicate is differential: the candidate must
            // still fail with the faults enabled *and* pass on the
            // fault-free engine.  Without the second condition the reducer
            // could drop the statements that make the pivot row exist in
            // the first place (or shrink an expression until the query
            // fails everywhere).  Candidates that orphan half of a
            // BEGIN/COMMIT/ROLLBACK pair are rejected up front: reduced
            // multi-session scripts keep transactions whole or drop them
            // whole (trivially true for transaction-free logs).
            let statement_stage = {
                let judge = DifferentialJudge::new(
                    &mut cache,
                    detection.oracle,
                    &profile,
                    &detection.repro,
                );
                let options = ReduceOptions { expression_pass: false, ..reduce_options.clone() };
                reduce_hierarchical(&detection.statements, &options, &judge)
            };
            let mut detection_stats = statement_stage.stats;
            let statement_reduced = statement_stage.statements;
            // Attribution runs over the statement-level reduction, before
            // any expression rewriting: which bugs a detection witnesses
            // must not depend on how aggressively its predicates are
            // shrunk afterwards.
            let mut session = ReplaySession::new(&mut cache, detection.oracle, &statement_reduced);
            let domain_seen = seen.entry(detection.kind().dedup_domain()).or_default();
            let mut attributed: Vec<BugId> = Vec::new();
            for bug in profile.iter() {
                if domain_seen.contains(&bug) {
                    continue;
                }
                let single = BugProfile::with(&[bug]);
                if session.reproduces_all(&single, &detection.repro) {
                    attributed.push(bug);
                }
            }
            if attributed.is_empty() {
                reduction_totals.absorb(&detection_stats);
                stats.unattributed += 1;
                continue;
            }
            // The expression pass then shrinks the surviving statements
            // with every attributed single-fault profile pinned into the
            // judge, so the final repro still witnesses each reported bug
            // on its own.
            let reduced = if reduce_options.expression_pass {
                let expr_stage = {
                    let mut judge = DifferentialJudge::new(
                        &mut cache,
                        detection.oracle,
                        &profile,
                        &detection.repro,
                    );
                    for &bug in &attributed {
                        judge = judge.require(BugProfile::with(&[bug]));
                    }
                    let options = ReduceOptions {
                        session_pass: false,
                        statement_pass: false,
                        expression_pass: true,
                        workers: reduce_options.workers,
                    };
                    reduce_hierarchical(&statement_reduced, &options, &judge)
                };
                detection_stats.statement_candidates += expr_stage.stats.statement_candidates;
                detection_stats.expression_candidates += expr_stage.stats.expression_candidates;
                detection_stats.memo_hits += expr_stage.stats.memo_hits;
                detection_stats.wall_ms += expr_stage.stats.wall_ms;
                detection_stats.expr_nodes_after = expr_stage.stats.expr_nodes_after;
                expr_stage.statements
            } else {
                statement_reduced
            };
            reduction_totals.absorb(&detection_stats);
            for bug in attributed {
                domain_seen.insert(bug);
                found.push(FoundBug {
                    id: bug,
                    kind: detection.kind(),
                    oracle: detection.oracle.to_owned(),
                    status: bug.info().status,
                    reduced_sql: reduced.iter().map(ToString::to_string).collect(),
                    statement_kinds: reduced.iter().map(|s| s.kind()).collect(),
                    message: detection.message.clone(),
                });
            }
        }
        let cow = lancer_storage::cow_stats().since(cow_before);
        stats.cow_table_copies += cow.table_copies;
        stats.cow_row_block_copies += cow.row_block_copies;
        stats.workspace_rewinds += lancer_engine::workspace_rewinds() - rewinds_before;
        let replay = cache.stats();
        stats.replay_statements_executed = replay.statements_replayed;
        stats.replay_statements_skipped = replay.statements_skipped;
        stats.replay_prefix_hits = replay.prefix_hits;
        stats.replay_snapshots_taken = replay.snapshots_taken;
        stats.replay_snapshot_evictions = replay.snapshots_evicted;
        // Reducer-level memo hits are verdicts served without any replay,
        // the same economy the replay cache's verdict memo provides one
        // layer down — surface them in the same counter.
        stats.replay_verdict_hits = replay.verdict_hits + reduction_totals.memo_hits;
        stats.reduction_wall_ms = reduction_totals.wall_ms;
        stats.reduction_candidates_evaluated = reduction_totals.candidates_evaluated();
        stats.reduction_memo_hits = reduction_totals.memo_hits;
        stats.reduction_session_candidates = reduction_totals.session_candidates;
        stats.reduction_statement_candidates = reduction_totals.statement_candidates;
        stats.reduction_expression_candidates = reduction_totals.expression_candidates;
        stats.reduction_statements_before = reduction_totals.statements_before;
        stats.reduction_statements_after_sessions = reduction_totals.statements_after_sessions;
        stats.reduction_statements_after = reduction_totals.statements_after;
        stats.reduction_expr_nodes_before = reduction_totals.expr_nodes_before;
        stats.reduction_expr_nodes_after_statements = reduction_totals.expr_nodes_after_statements;
        stats.reduction_expr_nodes_after = reduction_totals.expr_nodes_after;

        stats.elapsed_ms = started.elapsed().as_millis().max(1);
        stats.coverage_fraction = coverage.fraction();
        CampaignReport {
            dialect: self.dialect,
            oracles: self.oracle_names().iter().map(|n| (*n).to_owned()).collect(),
            found,
            stats,
        }
    }

    fn run_worker(
        &self,
        profile: &BugProfile,
        worker: u64,
        databases: usize,
    ) -> (Vec<Detection>, CampaignStats, lancer_engine::Coverage, PlanCoverage) {
        let worker_seed = self.seed ^ (worker.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(worker_seed);
        // Derived-stream oracles get substreams keyed by `(seed, worker,
        // oracle name)` — NOT by registration position, so an oracle's
        // stream is stable no matter where in the list it sits or what
        // else is registered.  Only a *repeat* of the same name mixes in
        // its per-name occurrence count, to keep duplicate instances from
        // sharing a stream.
        let mut occurrences: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut derived: Vec<Option<StdRng>> = self
            .oracles
            .iter()
            .map(|o| {
                let occurrence = occurrences.entry(o.name()).or_insert(0);
                let stream = match o.rng_stream() {
                    RngStream::Primary => None,
                    RngStream::Derived => Some(StdRng::seed_from_u64(
                        worker_seed
                            ^ fnv1a(o.name())
                                .wrapping_add(occurrence.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    )),
                };
                *occurrence += 1;
                stream
            })
            .collect();
        // The QPG guide (if any) draws from its own substreams, derived
        // like oracle substreams but under the reserved names "qpg"
        // (probe generation) and "qpg-mutate" (state mutations), so its
        // presence never perturbs generation or any oracle stream — and
        // guided campaigns share the exact probe sequence with the
        // observation-only baseline.
        let mut guide = (self.plan_guidance || self.plan_observation).then(|| {
            (
                PlanGuide::new(self.qpg.clone()),
                StdRng::seed_from_u64(worker_seed ^ fnv1a("qpg")),
                StdRng::seed_from_u64(worker_seed ^ fnv1a("qpg-mutate")),
            )
        });
        let mut detections = Vec::new();
        let mut stats = CampaignStats::default();
        let mut coverage = lancer_engine::Coverage::new();
        let cow_before = lancer_storage::cow_stats();
        let rewinds_before = lancer_engine::workspace_rewinds();
        for _ in 0..databases {
            let mut engine = Engine::with_bugs(self.dialect, profile.clone());
            let mut generator = StateGenerator::new(self.dialect, self.gen.clone());
            let (mut log, mut failures) = generator.generate_database(&mut rng, &mut engine);
            if self.multi_session {
                let (episode_log, episode_failures) =
                    generator.generate_txn_episode(&mut rng, &mut engine);
                log.extend(episode_log);
                failures.extend(episode_failures);
            }
            if let Some((guide, _, _)) = guide.as_mut() {
                guide.start_database();
            }
            for (i, oracle) in self.oracles.iter().enumerate() {
                let runs = match oracle.cadence() {
                    Cadence::PerDatabase => 1,
                    Cadence::PerQuery => self.queries_per_database,
                };
                for _ in 0..runs {
                    if oracle.cadence() == Cadence::PerQuery {
                        stats.queries_checked += 1;
                    }
                    let report = {
                        let ctx = OracleCtx {
                            dialect: self.dialect,
                            gen: &self.gen,
                            log: &log,
                            failures: &failures,
                        };
                        match derived[i].as_mut() {
                            Some(substream) => oracle.check(substream, &mut engine, &ctx),
                            None => oracle.check(&mut rng, &mut engine, &ctx),
                        }
                    };
                    for witness in report.witnesses() {
                        match witness.kind() {
                            DetectionKind::Containment => stats.containment_violations += 1,
                            DetectionKind::Error => stats.unexpected_errors += 1,
                            DetectionKind::Crash => stats.crashes += 1,
                            DetectionKind::Tlp => stats.tlp_violations += 1,
                            DetectionKind::Norec => stats.norec_violations += 1,
                            DetectionKind::Serializability => {
                                stats.serializability_violations += 1;
                            }
                        }
                        if stats.first_detection_check.is_none() {
                            stats.first_detection_check = Some(stats.queries_checked);
                        }
                        let mut statements = log.clone();
                        statements.push(witness.trigger.clone());
                        detections.push(Detection {
                            oracle: oracle.name(),
                            message: witness.message.clone(),
                            statements,
                            repro: witness.repro.clone(),
                        });
                    }
                    // QPG step between query slots: observe a probe plan
                    // and — in full guidance mode — mutate the state once
                    // the plan stream stagnates, so the *remaining* checks
                    // of this database run against a fresh plan space.
                    // Mutations land in `log`, keeping every later
                    // detection's reproduction script complete.
                    if oracle.cadence() == Cadence::PerQuery {
                        if let Some((guide, probe_rng, mutation_rng)) = guide.as_mut() {
                            let step = if self.plan_guidance {
                                guide.guide(
                                    probe_rng,
                                    mutation_rng,
                                    &mut engine,
                                    &mut generator,
                                    &self.gen,
                                    &mut log,
                                )
                            } else {
                                guide.observe(probe_rng, &engine, &self.gen)
                            };
                            if step.mutated {
                                stats.plan_mutations += 1;
                            }
                        }
                    }
                }
            }
            stats.statements_executed += engine.statements_executed();
            coverage.merge(engine.coverage());
        }
        let cow = lancer_storage::cow_stats().since(cow_before);
        stats.cow_table_copies = cow.table_copies;
        stats.cow_row_block_copies = cow.row_block_copies;
        stats.workspace_rewinds = lancer_engine::workspace_rewinds() - rewinds_before;
        let plan_coverage =
            guide.map(|(g, _, _)| g.coverage().clone()).unwrap_or_else(PlanCoverage::new);
        (detections, stats, coverage, plan_coverage)
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Aggregate statistics of a campaign.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Total SQL statements executed against the engine.
    pub statements_executed: u64,
    /// Per-query oracle checks performed (containment + TLP + any other
    /// per-query oracle).
    pub queries_checked: u64,
    /// Raw containment violations observed (before dedup).
    pub containment_violations: u64,
    /// Raw unexpected errors observed (before dedup).
    pub unexpected_errors: u64,
    /// Raw crashes observed (before dedup).
    pub crashes: u64,
    /// Raw TLP partition mismatches observed (before dedup).
    pub tlp_violations: u64,
    /// Raw NoREC pair mismatches observed (before dedup).
    pub norec_violations: u64,
    /// Raw serializability violations observed (before dedup); 0 unless
    /// the `serializability` oracle is registered and multi-session
    /// episodes are enabled.
    pub serializability_violations: u64,
    /// Multi-session episodes the serializability oracle decomposed and
    /// checked against serial orders.
    pub serial_episodes_checked: u64,
    /// Serial orders (commit-order permutations) the serializability
    /// oracle replayed across all checked episodes.
    pub serial_orders_tried: u64,
    /// NoREC pairs where both sides executed and their counts were
    /// compared (0 unless the `norec` oracle is registered).
    pub norec_pairs_checked: u64,
    /// Compared NoREC pairs whose plan fingerprints diverged — the rewrite
    /// demonstrably disabled an access-path choice (SEARCH vs SCAN).
    pub norec_plan_divergences: u64,
    /// The number of per-query oracle checks a worker had performed when
    /// the campaign's first raw detection appeared (minimum across
    /// workers); `None` when the campaign found nothing.  This is the
    /// "checks until first finding" bug-finding-speed metric.
    pub first_detection_check: Option<u64>,
    /// Detections that also reproduce with every fault disabled (oracle
    /// divergence); they are discarded, mirroring false bug reports.
    pub spurious: u64,
    /// Detections that could not be attributed to a single fault.
    pub unattributed: u64,
    /// Distinct plan fingerprints observed across all workers (0 unless
    /// plan observation or guidance is enabled).
    pub unique_plans: u64,
    /// QPG state mutations executed (0 unless plan guidance is enabled).
    pub plan_mutations: u64,
    /// Setup statements executed during reduction/attribution replays.
    pub replay_statements_executed: u64,
    /// Setup statements the prefix-keyed [`ReplayCache`] served from a
    /// snapshot instead of re-executing.
    pub replay_statements_skipped: u64,
    /// Reduction/attribution replays answered entirely from the replay
    /// cache's verdict memo (no statement executed at all), including
    /// candidates the hierarchical reducer's per-reduction memo absorbed.
    pub replay_verdict_hits: u64,
    /// Replays that resumed from a cached prefix snapshot instead of
    /// building a fresh engine.
    pub replay_prefix_hits: u64,
    /// Prefix snapshots the replay cache retained.
    pub replay_snapshots_taken: u64,
    /// Prefix snapshots dropped because the replay cache was at capacity.
    pub replay_snapshot_evictions: u64,
    /// Shared tables deep-copied on first write — the copy-on-write
    /// storage's unshare count across generation, oracle checks and
    /// post-processing replays (worker threads and the runner's thread;
    /// reduction pool threads keep their own counts).
    pub cow_table_copies: u64,
    /// Shared row blocks deep-copied on first row write (the O(rows) cost
    /// a snapshot defers until a statement actually writes the table).
    pub cow_row_block_copies: u64,
    /// Workspace rewinds ([`lancer_engine::Engine::rewind_to`] resumes,
    /// chiefly the serializability oracle's permutation search).
    pub workspace_rewinds: u64,
    /// Wall-clock spent inside the hierarchical reducer, in milliseconds,
    /// summed over all detections.
    pub reduction_wall_ms: u128,
    /// Reduction candidates actually judged (replayed), across all phases
    /// and detections.
    pub reduction_candidates_evaluated: u64,
    /// Reduction candidates answered from the per-reduction memo without
    /// judging.
    pub reduction_memo_hits: u64,
    /// Candidates judged by the session/transaction-unit pass.
    pub reduction_session_candidates: u64,
    /// Candidates judged by statement-level ddmin.
    pub reduction_statement_candidates: u64,
    /// Candidates judged by the expression-level shrink pass.
    pub reduction_expression_candidates: u64,
    /// Statements entering reduction, summed over all reduced detections.
    pub reduction_statements_before: u64,
    /// Statements surviving the session/transaction-unit pass.
    pub reduction_statements_after_sessions: u64,
    /// Statements surviving statement-level ddmin (the expression pass
    /// never changes statement counts).
    pub reduction_statements_after: u64,
    /// Expression nodes entering reduction.
    pub reduction_expr_nodes_before: u64,
    /// Expression nodes after statement-level ddmin, before the
    /// expression pass.
    pub reduction_expr_nodes_after_statements: u64,
    /// Expression nodes in the reduced repros.
    pub reduction_expr_nodes_after: u64,
    /// Wall-clock duration in milliseconds.
    pub elapsed_ms: u128,
    /// Feature-coverage fraction reached on the engine (Table 4 analogue).
    pub coverage_fraction: f64,
}

impl CampaignStats {
    /// Statements per second achieved by the campaign (§3.4 reports
    /// 5,000–20,000 for SQLancer).
    #[must_use]
    pub fn statements_per_second(&self) -> f64 {
        if self.elapsed_ms == 0 {
            return 0.0;
        }
        self.statements_executed as f64 * 1000.0 / self.elapsed_ms as f64
    }
}

/// The result of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The dialect that was tested.
    pub dialect: Dialect,
    /// The registry names of the oracles that ran, in order.
    pub oracles: Vec<String>,
    /// Deduplicated, attributed findings.
    pub found: Vec<FoundBug>,
    /// Aggregate statistics.
    pub stats: CampaignStats,
}

impl CampaignReport {
    /// Table 2: findings grouped by tracker classification.  A fault found
    /// by several oracles counts once (it would be one bug report).
    #[must_use]
    pub fn table2_counts(&self) -> BTreeMap<BugStatus, usize> {
        let mut counted: BTreeSet<BugId> = BTreeSet::new();
        let mut out = BTreeMap::new();
        for f in &self.found {
            if counted.insert(f.id) {
                *out.entry(f.status).or_insert(0) += 1;
            }
        }
        out
    }

    /// Table 3: *true* bugs grouped by the oracle class that found them.
    #[must_use]
    pub fn table3_counts(&self) -> BTreeMap<DetectionKind, usize> {
        let mut out = BTreeMap::new();
        for f in self.found.iter().filter(|f| f.status.is_true_bug()) {
            *out.entry(f.kind).or_insert(0) += 1;
        }
        out
    }

    /// Figure 2: the reduced test-case lengths of all findings.
    #[must_use]
    pub fn reduced_lengths(&self) -> Vec<usize> {
        self.found.iter().map(FoundBug::reduced_loc).collect()
    }

    /// Figure 3: for each statement kind, the fraction of findings whose
    /// reduced test case contains it, together with the number of findings
    /// where a statement of that kind was the *triggering* (last) statement,
    /// per oracle.
    #[must_use]
    pub fn statement_distribution(&self) -> Vec<StatementDistributionRow> {
        let total = self.found.len().max(1) as f64;
        let mut per_kind: BTreeMap<StatementKind, StatementDistributionRow> = BTreeMap::new();
        for f in &self.found {
            let kinds: BTreeSet<StatementKind> = f.statement_kinds.iter().copied().collect();
            for k in kinds {
                per_kind.entry(k).or_insert_with(|| StatementDistributionRow::new(k)).containing +=
                    1;
            }
            if let Some(last) = f.statement_kinds.last() {
                let row =
                    per_kind.entry(*last).or_insert_with(|| StatementDistributionRow::new(*last));
                match f.kind {
                    DetectionKind::Containment => row.triggered_contains += 1,
                    DetectionKind::Error => row.triggered_error += 1,
                    DetectionKind::Crash => row.triggered_crash += 1,
                    DetectionKind::Tlp => row.triggered_tlp += 1,
                    DetectionKind::Norec => row.triggered_norec += 1,
                    DetectionKind::Serializability => row.triggered_serial += 1,
                }
            }
        }
        let mut rows: Vec<StatementDistributionRow> = per_kind.into_values().collect();
        for r in &mut rows {
            r.fraction = r.containing as f64 / total;
        }
        rows.sort_by(|a, b| {
            b.fraction.partial_cmp(&a.fraction).unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    /// §4.3 column-constraint statistics: the fraction of findings whose
    /// reduced test case uses UNIQUE, PRIMARY KEY, CREATE INDEX and FOREIGN
    /// KEY constructs.
    #[must_use]
    pub fn constraint_stats(&self) -> ConstraintStats {
        let total = self.found.len().max(1) as f64;
        let mut unique = 0usize;
        let mut primary_key = 0usize;
        let mut create_index = 0usize;
        for f in &self.found {
            let mut has_unique = false;
            let mut has_pk = false;
            let mut has_index = false;
            for sql in &f.reduced_sql {
                if let Ok(stmt) = lancer_sql::parse_statement(sql) {
                    match &stmt {
                        Statement::CreateTable(ct) => {
                            for c in &ct.columns {
                                has_unique |= c
                                    .constraints
                                    .iter()
                                    .any(|cc| matches!(cc, ColumnConstraint::Unique));
                                has_pk |= c.has_primary_key();
                            }
                            has_pk |= ct.constraints.iter().any(|tc| {
                                matches!(tc, lancer_sql::ast::stmt::TableConstraint::PrimaryKey(_))
                            });
                            has_unique |= ct.constraints.iter().any(|tc| {
                                matches!(tc, lancer_sql::ast::stmt::TableConstraint::Unique(_))
                            });
                        }
                        Statement::CreateIndex(ci) => {
                            has_index = true;
                            has_unique |= ci.unique;
                        }
                        _ => {}
                    }
                }
            }
            unique += usize::from(has_unique);
            primary_key += usize::from(has_pk);
            create_index += usize::from(has_index);
        }
        ConstraintStats {
            unique_fraction: unique as f64 / total,
            primary_key_fraction: primary_key as f64 / total,
            create_index_fraction: create_index as f64 / total,
            foreign_key_fraction: 0.0,
        }
    }

    /// Mean reduced test-case length (the paper reports 3.71 LOC).
    #[must_use]
    pub fn mean_reduced_loc(&self) -> f64 {
        if self.found.is_empty() {
            return 0.0;
        }
        self.reduced_lengths().iter().sum::<usize>() as f64 / self.found.len() as f64
    }
}

/// One row of the Figure 3 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatementDistributionRow {
    /// The statement kind.
    pub kind: StatementKind,
    /// Number of findings whose reduced case contains this kind.
    pub containing: usize,
    /// Fraction of findings whose reduced case contains this kind.
    pub fraction: f64,
    /// Findings whose triggering statement was of this kind, per oracle.
    pub triggered_contains: usize,
    /// Triggering statement count for the error oracle.
    pub triggered_error: usize,
    /// Triggering statement count for crashes.
    pub triggered_crash: usize,
    /// Triggering statement count for the TLP oracle.
    pub triggered_tlp: usize,
    /// Triggering statement count for the NoREC oracle.
    pub triggered_norec: usize,
    /// Triggering statement count for the serializability oracle.
    pub triggered_serial: usize,
}

impl StatementDistributionRow {
    fn new(kind: StatementKind) -> Self {
        StatementDistributionRow {
            kind,
            containing: 0,
            fraction: 0.0,
            triggered_contains: 0,
            triggered_error: 0,
            triggered_crash: 0,
            triggered_tlp: 0,
            triggered_norec: 0,
            triggered_serial: 0,
        }
    }
}

/// §4.3 constraint statistics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConstraintStats {
    /// Fraction of findings using a `UNIQUE` constraint.
    pub unique_fraction: f64,
    /// Fraction of findings using a `PRIMARY KEY`.
    pub primary_key_fraction: f64,
    /// Fraction of findings using an explicit `CREATE INDEX`.
    pub create_index_fraction: f64,
    /// Fraction of findings using a `FOREIGN KEY` (not modelled: 0).
    pub foreign_key_fraction: f64,
}

/// Re-executes a test case on a fresh engine with the given fault profile
/// and reports whether the detection still reproduces according to its
/// [`ReproSpec`].
///
/// This is the uncached one-shot entry point; the campaign runner replays
/// through a [`ReplayCache`] instead, which resumes from memoized prefix
/// snapshots but returns the same verdicts (both end in
/// `replay::confirms`).
#[must_use]
pub fn reproduces(
    dialect: Dialect,
    profile: &BugProfile,
    statements: &[Statement],
    repro: &ReproSpec,
) -> bool {
    if statements.is_empty() {
        return false;
    }
    let mut engine = Engine::with_bugs(dialect, profile.clone());
    let (setup, last) = statements.split_at(statements.len() - 1);
    for stmt in setup {
        // Setup statements may legitimately fail after reduction removed
        // their prerequisites; keep going, mirroring SQLancer's reducer.
        let _ = engine.execute(stmt);
    }
    let setup_refs: Vec<&Statement> = setup.iter().collect();
    crate::replay::confirms(&mut engine, &setup_refs, &last[0], repro)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::transactions_well_formed;
    use lancer_sql::value::Value;

    fn quick_campaign(dialect: Dialect) -> CampaignBuilder {
        Campaign::builder(dialect).quick()
    }

    #[test]
    fn campaign_on_a_correct_engine_finds_nothing() {
        let report =
            quick_campaign(Dialect::Sqlite).bugs(BugProfile::none()).databases(3).queries(20).run();
        assert!(report.found.is_empty(), "unexpected findings: {:#?}", report.found);
        assert!(report.stats.queries_checked > 0);
        assert!(report.stats.statements_executed > 0);
    }

    #[test]
    fn campaign_finds_injected_faults_in_sqlite_profile() {
        let report = quick_campaign(Dialect::Sqlite).databases(10).queries(40).run();
        assert!(!report.found.is_empty(), "expected at least one finding");
        assert_eq!(report.oracles, vec!["error", "containment"], "default oracle pair");
        // Every finding maps to a fault of the right dialect and its reduced
        // case is non-empty.
        for f in &report.found {
            assert_eq!(f.id.info().dialect, Dialect::Sqlite);
            assert!(!f.reduced_sql.is_empty());
            assert!(f.reduced_loc() <= 30);
        }
        // Dedup: each fault appears at most once per oracle domain.
        let ids: BTreeSet<BugId> = report.found.iter().map(|f| f.id).collect();
        assert_eq!(ids.len(), report.found.len());
        // Aggregations are consistent.
        let table2: usize = report.table2_counts().values().sum();
        assert_eq!(table2, ids.len());
        let table3: usize = report.table3_counts().values().sum();
        assert!(table3 <= report.found.len());
        assert!(report.mean_reduced_loc() >= 1.0);
        let dist = report.statement_distribution();
        assert!(!dist.is_empty());
    }

    #[test]
    fn reproduces_handles_empty_and_correct_cases() {
        assert!(!reproduces(
            Dialect::Sqlite,
            &BugProfile::none(),
            &[],
            &ReproSpec::UnexpectedError
        ));
        let stmts = lancer_sql::parse_script(
            "CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1); SELECT * FROM t0;",
        )
        .unwrap();
        assert!(
            !reproduces(
                Dialect::Sqlite,
                &BugProfile::none(),
                &stmts,
                &ReproSpec::MissingRow(vec![Value::Integer(1)])
            ),
            "the correct engine fetches the pivot row, so the detection does not reproduce"
        );
        assert!(
            reproduces(
                Dialect::Sqlite,
                &BugProfile::none(),
                &stmts,
                &ReproSpec::MissingRow(vec![Value::Integer(2)])
            ),
            "a wrong expected row reproduces even without faults, which the spurious filter catches"
        );
    }

    #[test]
    fn reproduces_checks_partition_mismatches() {
        let stmts = lancer_sql::parse_script(
            "CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1), (NULL); SELECT t0.c0 FROM t0;",
        )
        .unwrap();
        let partitions = lancer_sql::parse_script(
            "SELECT t0.c0 FROM t0 WHERE t0.c0 = 1;
             SELECT t0.c0 FROM t0 WHERE NOT (t0.c0 = 1);
             SELECT t0.c0 FROM t0 WHERE (t0.c0 = 1) IS NULL;",
        )
        .unwrap();
        assert!(
            !reproduces(
                Dialect::Sqlite,
                &BugProfile::none(),
                &stmts,
                &ReproSpec::PartitionMismatch { partitions: partitions.clone() }
            ),
            "a correct engine satisfies the partitioning property"
        );
        // Dropping one partition makes the union come up short, which the
        // spec must detect as a (synthetic) mismatch.
        assert!(reproduces(
            Dialect::Sqlite,
            &BugProfile::none(),
            &stmts,
            &ReproSpec::PartitionMismatch { partitions: partitions[..2].to_vec() }
        ));
    }

    #[test]
    fn replay_cache_absorbs_reduction_work() {
        let report = quick_campaign(Dialect::Sqlite).databases(10).queries(40).run();
        assert!(!report.found.is_empty(), "need detections for the cache to see replays");
        let s = &report.stats;
        assert!(
            s.replay_statements_skipped > 0,
            "prefix snapshots must absorb replay work (executed {}, skipped {})",
            s.replay_statements_executed,
            s.replay_statements_skipped,
        );
        assert!(
            s.replay_verdict_hits > 0,
            "repeated delta-debugging candidates must hit the verdict memo",
        );
    }

    #[test]
    fn multithreaded_campaign_matches_single_threaded_structure() {
        let report = quick_campaign(Dialect::Mysql).threads(2).databases(6).queries(20).run();
        assert_eq!(report.dialect, Dialect::Mysql);
        for f in &report.found {
            assert_eq!(f.id.info().dialect, Dialect::Mysql);
        }
        assert!(report.stats.statements_per_second() > 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown oracle 'qpg-fuzz'")]
    fn unknown_oracle_names_panic_at_build() {
        let _ = Campaign::builder(Dialect::Sqlite).oracle("qpg-fuzz").build();
    }

    #[test]
    fn registering_logic_oracles_does_not_change_pqs_findings() {
        // The load-bearing property behind the Table 3 acceptance check:
        // adding derived-stream oracles (TLP *and* NoREC) leaves the
        // primary-stream oracles' detections (and thus the
        // Contains/Error/SEGFAULT columns) bit-identical at the same seed.
        let classic = quick_campaign(Dialect::Sqlite).databases(8).queries(30).run();
        let extended = quick_campaign(Dialect::Sqlite).databases(8).queries(30).all_oracles().run();
        assert_eq!(
            extended.oracles,
            vec!["error", "containment", "tlp", "norec", "serializability"]
        );
        let classic_pqs: Vec<(BugId, DetectionKind)> =
            classic.found.iter().map(|f| (f.id, f.kind)).collect();
        let extended_pqs: Vec<(BugId, DetectionKind)> = extended
            .found
            .iter()
            .filter(|f| f.kind.dedup_domain() == "pqs")
            .map(|f| (f.id, f.kind))
            .collect();
        assert_eq!(classic_pqs, extended_pqs);
        assert_eq!(classic.stats.containment_violations, extended.stats.containment_violations);
        assert_eq!(classic.stats.unexpected_errors, extended.stats.unexpected_errors);
        assert_eq!(classic.stats.crashes, extended.stats.crashes);
        assert_eq!(classic.stats.norec_pairs_checked, 0, "norec is not registered by default");
        // Without multi-session episodes there is nothing for the
        // serializability oracle to check: it skips every database and the
        // statement logs are bit-identical to the classic campaign's.
        assert_eq!(extended.stats.serializability_violations, 0);
        assert_eq!(extended.stats.serial_episodes_checked, 0);
    }

    #[test]
    fn registering_norec_does_not_change_tlp_findings_either() {
        // Derived substreams are keyed by oracle *name*, so adding NoREC
        // next to TLP leaves the TLP stream untouched as well.
        let with_tlp = quick_campaign(Dialect::Mysql).databases(8).queries(40).oracle("tlp").run();
        let with_both = quick_campaign(Dialect::Mysql)
            .databases(8)
            .queries(40)
            .oracle("tlp")
            .oracle("norec")
            .run();
        assert_eq!(with_tlp.stats.tlp_violations, with_both.stats.tlp_violations);
        let tlp_only: Vec<BugId> = with_tlp.found.iter().map(|f| f.id).collect();
        let tlp_of_both: Vec<BugId> =
            with_both.found.iter().filter(|f| f.kind == DetectionKind::Tlp).map(|f| f.id).collect();
        assert_eq!(tlp_only, tlp_of_both);
        assert!(with_both.stats.norec_pairs_checked > 0, "norec must actually check pairs");
    }

    #[test]
    fn derived_streams_are_position_independent() {
        // A derived-stream oracle's substream is keyed by name, not by its
        // slot in the registration list: shuffling the order changes
        // nothing about what each oracle generates (only the raw-detection
        // interleaving, which the per-domain dedup keeps separate anyway).
        let canonical = quick_campaign(Dialect::Mysql)
            .databases(8)
            .queries(40)
            .threads(2)
            .oracle("error")
            .oracle("containment")
            .oracle("tlp")
            .run();
        let shuffled = quick_campaign(Dialect::Mysql)
            .databases(8)
            .queries(40)
            .threads(2)
            .oracle("tlp")
            .oracle("error")
            .oracle("containment")
            .run();
        assert!(canonical.stats.tlp_violations > 0, "probe config must produce TLP hits");
        assert_eq!(canonical.stats.tlp_violations, shuffled.stats.tlp_violations);
        assert_eq!(canonical.stats.containment_violations, shuffled.stats.containment_violations);
        assert_eq!(canonical.stats.unexpected_errors, shuffled.stats.unexpected_errors);
        assert_eq!(canonical.stats.crashes, shuffled.stats.crashes);
    }

    #[test]
    fn rerunning_a_campaign_reports_identical_counter_stats() {
        // `run()` takes `&self`, so the same Campaign can run twice; the
        // cumulative oracle counters must be folded as per-run deltas or
        // the second report would double them.
        let campaign = quick_campaign(Dialect::Sqlite).all_oracles().build();
        let first = campaign.run();
        let second = campaign.run();
        assert!(first.stats.norec_pairs_checked > 0);
        assert_eq!(first.stats.norec_pairs_checked, second.stats.norec_pairs_checked);
        assert_eq!(first.stats.norec_plan_divergences, second.stats.norec_plan_divergences);
    }

    #[test]
    fn all_oracles_deduplicates_requested_names() {
        let combined =
            Campaign::builder(Dialect::Sqlite).oracle("containment").all_oracles().build();
        assert_eq!(
            combined.oracle_names(),
            vec!["containment", "error", "tlp", "norec", "serializability"]
        );
        let twice = Campaign::builder(Dialect::Sqlite).all_oracles().all_oracles().build();
        assert_eq!(
            twice.oracle_names(),
            vec!["error", "containment", "tlp", "norec", "serializability"]
        );
    }

    #[test]
    fn detections_serialize_to_json() {
        let stmts = lancer_sql::parse_script("CREATE TABLE t0(c0); SELECT t0.c0 FROM t0;").unwrap();
        let detection = Detection {
            oracle: "containment",
            message: "pivot row (1) not contained in the result set".into(),
            statements: stmts,
            repro: ReproSpec::MissingRow(vec![Value::Integer(1)]),
        };
        let json = serde_json::to_string(&detection).unwrap();
        let parsed = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.get("oracle").and_then(serde_json::Value::as_str), Some("containment"));
        assert_eq!(parsed.get("kind").and_then(serde_json::Value::as_str), Some("Contains"));
        assert_eq!(
            parsed.get("statements").and_then(serde_json::Value::as_array).map(<[_]>::len),
            Some(2)
        );
        let tlp = Detection {
            oracle: "tlp",
            message: "mismatch".into(),
            statements: vec![lancer_sql::parse_statement("SELECT 1").unwrap()],
            repro: ReproSpec::PartitionMismatch {
                partitions: lancer_sql::parse_script("SELECT 1; SELECT 2; SELECT 3;").unwrap(),
            },
        };
        let json = serde_json::to_string_pretty(&tlp).unwrap();
        let parsed = serde_json::from_str(&json).unwrap();
        assert_eq!(
            parsed
                .get("repro")
                .and_then(|r| r.get("partition_mismatch"))
                .and_then(serde_json::Value::as_array)
                .map(<[_]>::len),
            Some(3)
        );
    }

    #[test]
    fn multi_session_campaigns_find_each_transaction_fault() {
        // The tentpole acceptance check: with multi-session episodes on,
        // each dialect's injected transaction fault is found, attributed
        // and reduced end to end — and the reduced script never orphans a
        // transaction bracket.
        for (dialect, fault) in [
            (Dialect::Sqlite, BugId::SqliteTornRollbackIndexed),
            (Dialect::Mysql, BugId::MysqlLostUpdate),
            (Dialect::Postgres, BugId::PostgresSerialCounterSurvivesRollback),
            (Dialect::Duckdb, BugId::DuckdbCommitLaneAlignedPrefix),
        ] {
            let report = quick_campaign(dialect)
                .bugs(BugProfile::with(&[fault]))
                .multi_session(true)
                .oracle("serializability")
                .databases(40)
                .queries(1)
                .run();
            assert!(
                report.stats.serial_episodes_checked > 0,
                "{dialect:?}: no multi-session episodes were checked"
            );
            let found: Vec<&FoundBug> = report.found.iter().filter(|f| f.id == fault).collect();
            assert!(
                !found.is_empty(),
                "{dialect:?}: {fault:?} not found (violations: {}, episodes: {})",
                report.stats.serializability_violations,
                report.stats.serial_episodes_checked,
            );
            for f in found {
                assert_eq!(f.kind, DetectionKind::Serializability);
                assert_eq!(f.oracle, "serializability");
                let reduced: Vec<Statement> = f
                    .reduced_sql
                    .iter()
                    .map(|sql| {
                        lancer_sql::parse_statement(sql)
                            .unwrap_or_else(|e| panic!("reduced stmt must parse: {sql}: {e:?}"))
                    })
                    .collect();
                assert!(
                    transactions_well_formed(&reduced),
                    "{dialect:?}: reduced script orphans a bracket: {:?}",
                    f.reduced_sql
                );
            }
        }
    }

    #[test]
    fn multi_session_episodes_are_deterministic_across_runs() {
        // Episodes draw from the primary worker stream, so the same seed
        // yields the same interleaved logs — and thus identical stats.
        let a =
            quick_campaign(Dialect::Sqlite).multi_session(true).all_oracles().databases(6).run();
        let b =
            quick_campaign(Dialect::Sqlite).multi_session(true).all_oracles().databases(6).run();
        assert!(a.stats.serial_episodes_checked > 0);
        assert_eq!(a.stats.serial_episodes_checked, b.stats.serial_episodes_checked);
        assert_eq!(a.stats.serial_orders_tried, b.stats.serial_orders_tried);
        assert_eq!(a.stats.statements_executed, b.stats.statements_executed);
        assert_eq!(
            a.found.iter().map(|f| f.id).collect::<Vec<_>>(),
            b.found.iter().map(|f| f.id).collect::<Vec<_>>()
        );
    }
}
