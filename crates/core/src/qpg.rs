//! Query-plan guidance (QPG): plan-coverage feedback for campaigns.
//!
//! PQS explores exactly the database states its random generator happens to
//! reach.  "Testing Database Engines via Query Plan Guidance" (Ba & Rigger)
//! observes that the *query plans* a DBMS executes are a cheap, precise
//! proxy for those states, and prescribes a feedback loop (§III of that
//! paper): fingerprint the plan of every query, and when a database stops
//! yielding **new** plans for N consecutive queries, mutate the database
//! with plan-affecting statements (`CREATE INDEX`, `ANALYZE`,
//! `DROP INDEX`) so subsequent queries are planned — and executed —
//! differently.
//!
//! This module supplies the pieces the campaign runner threads through its
//! worker loop when [`plan_guidance`](crate::CampaignBuilder::plan_guidance)
//! is enabled:
//!
//! * [`PlanCoverage`] — the per-worker set of observed
//!   [`PlanFingerprint`]s (the analogue of a coverage bitmap),
//! * [`QpgConfig`] — the stagnation threshold N,
//! * [`PlanGuide`] — the per-worker state machine: generate a probe query,
//!   plan it against the live catalog ([`Engine::explain`] — planning never
//!   executes anything), record the fingerprint, and mutate state once the
//!   stagnation counter reaches N.
//!
//! Determinism: a guide only ever draws from the dedicated `qpg` RNG
//! substream the runner derives per worker, so campaigns with guidance
//! *off* (the default) are bit-for-bit identical to pre-QPG campaigns, and
//! observation-only campaigns leave every oracle finding untouched.

use std::collections::BTreeSet;

use lancer_engine::{Engine, PlanFingerprint};
use lancer_sql::ast::stmt::{Query, Select, SelectItem, Statement};
use lancer_sql::ast::Expr;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::gen::{random_expression, random_value, GenConfig, StateGenerator, VisibleColumn};

/// The set of plan fingerprints a campaign worker has observed.
#[derive(Debug, Clone, Default)]
pub struct PlanCoverage {
    seen: BTreeSet<u64>,
}

impl PlanCoverage {
    /// An empty coverage set.
    #[must_use]
    pub fn new() -> PlanCoverage {
        PlanCoverage::default()
    }

    /// Records a fingerprint; returns `true` if it was new.
    pub fn observe(&mut self, fingerprint: PlanFingerprint) -> bool {
        self.seen.insert(fingerprint.0)
    }

    /// Number of distinct plans observed so far.
    #[must_use]
    pub fn unique_plans(&self) -> u64 {
        self.seen.len() as u64
    }

    /// Merges another worker's coverage into this one (set union).
    pub fn merge(&mut self, other: &PlanCoverage) {
        self.seen.extend(other.seen.iter().copied());
    }
}

/// Tuning for the QPG feedback loop.
#[derive(Debug, Clone)]
pub struct QpgConfig {
    /// Mutate the database after this many consecutive probe queries
    /// without a new plan fingerprint (the paper's N).
    pub stagnation_threshold: usize,
}

impl Default for QpgConfig {
    fn default() -> Self {
        QpgConfig { stagnation_threshold: 4 }
    }
}

/// What a [`PlanGuide`] step did, for campaign statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuideStep {
    /// Whether the probe query produced a fingerprint not seen before.
    pub new_plan: bool,
    /// Whether the step mutated the database state.
    pub mutated: bool,
}

/// The per-worker QPG state machine.
#[derive(Debug)]
pub struct PlanGuide {
    config: QpgConfig,
    coverage: PlanCoverage,
    stagnant: usize,
    mutations: u64,
    last_probe: Option<Query>,
}

impl PlanGuide {
    /// A fresh guide with the given configuration.
    #[must_use]
    pub fn new(config: QpgConfig) -> PlanGuide {
        PlanGuide {
            config,
            coverage: PlanCoverage::new(),
            stagnant: 0,
            mutations: 0,
            last_probe: None,
        }
    }

    /// The accumulated plan coverage.
    #[must_use]
    pub fn coverage(&self) -> &PlanCoverage {
        &self.coverage
    }

    /// Number of state mutations performed.
    #[must_use]
    pub fn mutations(&self) -> u64 {
        self.mutations
    }

    /// Resets the stagnation counter (called per fresh database: stagnation
    /// is a per-state property, plan coverage a per-worker one).
    pub fn start_database(&mut self) {
        self.stagnant = 0;
    }

    /// Runs one observation step: generate a probe query, plan it, record
    /// the fingerprint and update the stagnation counter.  Never executes
    /// the query or mutates any state.
    pub fn observe<R: Rng>(&mut self, rng: &mut R, engine: &Engine, gen: &GenConfig) -> GuideStep {
        let Some(query) = random_probe_query(rng, engine, gen) else {
            return GuideStep { new_plan: false, mutated: false };
        };
        let new_plan = self.record(engine, &query);
        self.last_probe = Some(query);
        GuideStep { new_plan, mutated: false }
    }

    fn record(&mut self, engine: &Engine, query: &Query) -> bool {
        let new_plan = self.coverage.observe(engine.explain(query).fingerprint());
        if new_plan {
            self.stagnant = 0;
        } else {
            self.stagnant += 1;
        }
        new_plan
    }

    /// Runs one full guidance step: [`observe`](PlanGuide::observe), then —
    /// if the database has produced no new plan for N probes — execute one
    /// plan-affecting mutation statement against the engine.  Successfully
    /// executed mutations are appended to `log` so detection reproduction
    /// scripts replay the exact state the oracles saw.
    ///
    /// Probe generation draws from `probe_rng` and mutations from the
    /// separate `mutation_rng`: with the streams split this way, a guided
    /// campaign observes the **same probe sequence** as the
    /// observation-only baseline at the same seed, and differs only in the
    /// catalogs those probes are planned against — which is what makes the
    /// `table_qpg` comparison (and its strictly-more claim) meaningful.
    pub fn guide<R: Rng>(
        &mut self,
        probe_rng: &mut R,
        mutation_rng: &mut R,
        engine: &mut Engine,
        generator: &mut StateGenerator,
        gen: &GenConfig,
        log: &mut Vec<Statement>,
    ) -> GuideStep {
        let mut step = self.observe(probe_rng, engine, gen);
        if self.stagnant >= self.config.stagnation_threshold {
            if let Some(stmt) = random_plan_mutation(mutation_rng, engine, generator) {
                if engine.execute(&stmt).is_ok() {
                    log.push(stmt);
                    self.mutations += 1;
                    step.mutated = true;
                    // Re-plan the last probe against the mutated catalog
                    // (no RNG draws): the mutation is credited immediately
                    // without perturbing the shared probe stream.
                    if let Some(query) = self.last_probe.take() {
                        step.new_plan |= self.record(engine, &query);
                        self.last_probe = Some(query);
                    }
                }
            }
            self.stagnant = 0;
        }
        step
    }
}

/// Generates a random probe query over the current catalog, shaped to
/// exercise the planner's decision points: single- and multi-table `FROM`
/// lists, equality probes (the index fast path), random predicates, and
/// the `DISTINCT` / `GROUP BY` / `ORDER BY` / `LIMIT` wrappers that add
/// plan nodes.
///
/// Returns `None` when the catalog has no tables yet.
pub fn random_probe_query<R: Rng>(rng: &mut R, engine: &Engine, gen: &GenConfig) -> Option<Query> {
    let mut tables = engine.database().table_names();
    if tables.is_empty() {
        return None;
    }
    tables.shuffle(rng);
    let n = rng.gen_range(1..=gen.max_pivot_tables.max(1)).min(tables.len());
    let from: Vec<String> = tables.into_iter().take(n).collect();
    let columns: Vec<VisibleColumn> = from
        .iter()
        .flat_map(|t| {
            engine.database().table(t).into_iter().flat_map(|table| {
                table
                    .schema
                    .columns
                    .iter()
                    .map(|c| VisibleColumn { table: t.clone(), meta: c.clone() })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let dialect = engine.dialect();
    let mut select = Select::star(from);
    // Bias towards bare equality probes: that is the WHERE shape the
    // executor's index fast path (and therefore the planner's SEARCH
    // decision) keys on.
    select.where_clause = match rng.gen_range(0..10) {
        0..=4 => columns
            .choose(rng)
            .map(|c| Expr::col(c.meta.name.clone()).eq(Expr::Literal(random_value(rng, dialect)))),
        5..=7 => Some(random_expression(rng, &columns, dialect, 1)),
        _ => None,
    };
    if rng.gen_bool(0.2) {
        select.distinct = true;
    }
    if rng.gen_bool(0.2) {
        if let Some(c) = columns.choose(rng) {
            select.group_by = vec![Expr::col(c.meta.name.clone())];
        }
    }
    if rng.gen_bool(0.2) {
        if let Some(c) = columns.choose(rng) {
            select.order_by = vec![lancer_sql::ast::stmt::OrderingTerm {
                expr: Expr::col(c.meta.name.clone()),
                descending: rng.gen_bool(0.5),
                collation: None,
            }];
        }
    }
    if rng.gen_bool(0.15) {
        select.limit = Some(rng.gen_range(1..=5));
    }
    if select.group_by.is_empty() && rng.gen_bool(0.15) {
        select.items = vec![SelectItem::Expr {
            expr: columns
                .choose(rng)
                .map(|c| Expr::col(c.meta.name.clone()))
                .unwrap_or_else(|| Expr::int(1)),
            alias: None,
        }];
    }
    Some(Query::select(select))
}

/// Picks one plan-affecting state mutation — `CREATE INDEX`, `ANALYZE` or
/// `DROP INDEX`, the statement classes QPG §III mutates with — reusing the
/// campaign's [`StateGenerator`] so index names continue its sequence.
pub fn random_plan_mutation<R: Rng>(
    rng: &mut R,
    engine: &Engine,
    generator: &mut StateGenerator,
) -> Option<Statement> {
    let tables = engine.database().table_names();
    let table = tables.choose(rng)?.clone();
    match rng.gen_range(0..4) {
        // CREATE INDEX opens SEARCH / covering-index plans.
        0 | 1 => generator.random_create_index(rng, engine, &table),
        // ANALYZE flips the statistics flag the planner renders.
        2 => {
            Some(Statement::Analyze { target: if rng.gen_bool(0.7) { Some(table) } else { None } })
        }
        // DROP INDEX walks plans back towards full scans.
        _ => {
            let droppable: Vec<String> = engine
                .database()
                .index_defs()
                .iter()
                .filter(|d| !d.implicit)
                .map(|d| d.name.clone())
                .collect();
            match droppable.choose(rng) {
                Some(name) => Some(Statement::DropIndex { name: name.clone(), if_exists: false }),
                // Nothing to drop yet — fall back to creating one.
                None => generator.random_create_index(rng, engine, &table),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancer_engine::Dialect;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_with_state() -> Engine {
        let mut e = Engine::new(Dialect::Sqlite);
        e.execute_script(
            "CREATE TABLE t0(c0 INT, c1 TEXT);
             CREATE TABLE t1(c0 INT);
             INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b');
             INSERT INTO t1(c0) VALUES (1);",
        )
        .unwrap();
        e
    }

    #[test]
    fn coverage_counts_distinct_fingerprints() {
        let mut cov = PlanCoverage::new();
        assert!(cov.observe(PlanFingerprint(1)));
        assert!(!cov.observe(PlanFingerprint(1)));
        assert!(cov.observe(PlanFingerprint(2)));
        assert_eq!(cov.unique_plans(), 2);
        let mut other = PlanCoverage::new();
        other.observe(PlanFingerprint(2));
        other.observe(PlanFingerprint(3));
        cov.merge(&other);
        assert_eq!(cov.unique_plans(), 3);
    }

    #[test]
    fn probe_queries_are_deterministic_and_planable() {
        let engine = engine_with_state();
        let gen = GenConfig::tiny();
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20)
                .filter_map(|_| random_probe_query(&mut rng, &engine, &gen))
                .map(|q| q.to_string())
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20)
                .filter_map(|_| random_probe_query(&mut rng, &engine, &gen))
                .map(|q| q.to_string())
                .collect()
        };
        assert_eq!(a, b, "probe generation must be a pure function of the RNG");
        assert_eq!(a.len(), 20, "a populated catalog always yields probes");
    }

    #[test]
    fn probe_generation_needs_tables() {
        let engine = Engine::new(Dialect::Sqlite);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_probe_query(&mut rng, &engine, &GenConfig::tiny()).is_none());
    }

    #[test]
    fn guide_mutates_after_stagnation() {
        let mut engine = engine_with_state();
        let gen = GenConfig::tiny();
        let mut generator = StateGenerator::new(Dialect::Sqlite, gen.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let mut mutation_rng = StdRng::seed_from_u64(4);
        let mut guide = PlanGuide::new(QpgConfig { stagnation_threshold: 2 });
        guide.start_database();
        let mut log = Vec::new();
        let mut mutated = false;
        for _ in 0..60 {
            let step = guide.guide(
                &mut rng,
                &mut mutation_rng,
                &mut engine,
                &mut generator,
                &gen,
                &mut log,
            );
            mutated |= step.mutated;
        }
        assert!(mutated, "a tiny threshold must trigger mutations within 60 probes");
        assert_eq!(guide.mutations() as usize, log.len(), "every mutation lands in the log");
        assert!(
            log.iter().all(|s| matches!(
                s,
                Statement::CreateIndex(_) | Statement::Analyze { .. } | Statement::DropIndex { .. }
            )),
            "mutations are restricted to plan-affecting statements: {log:?}"
        );
        assert!(guide.coverage().unique_plans() > 1, "probing must accumulate plan coverage");
        // The log replays on a fresh engine: reproduction scripts stay valid.
        let mut replay = Engine::new(Dialect::Sqlite);
        replay
            .execute_script(
                "CREATE TABLE t0(c0 INT, c1 TEXT);
                 CREATE TABLE t1(c0 INT);
                 INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b');
                 INSERT INTO t1(c0) VALUES (1);",
            )
            .unwrap();
        for stmt in &log {
            replay.execute(stmt).unwrap_or_else(|e| panic!("replay of {stmt} failed: {e}"));
        }
    }

    #[test]
    fn observe_never_touches_engine_state() {
        let mut engine = engine_with_state();
        let before = format!("{:?}", engine.database());
        let statements_before = engine.statements_executed();
        let gen = GenConfig::tiny();
        let mut rng = StdRng::seed_from_u64(5);
        let mut guide = PlanGuide::new(QpgConfig::default());
        for _ in 0..40 {
            guide.observe(&mut rng, &engine, &gen);
        }
        assert_eq!(format!("{:?}", engine.database()), before);
        assert_eq!(engine.statements_executed(), statements_before);
        let _ = &mut engine;
    }
}
