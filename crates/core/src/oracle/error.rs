//! The error oracle (§3.3): per-statement whitelists of expected error
//! classes; anything outside the whitelist indicates a bug.

use lancer_engine::{Engine, EngineError, ErrorClass};
use lancer_sql::ast::stmt::{Statement, StatementKind};
use rand::rngs::StdRng;

use crate::oracle::{BugWitness, Cadence, Oracle, OracleCtx, OracleReport, ReproSpec};

/// The error oracle (§3.3): flags unexpected DBMS errors such as database
/// corruption, spurious constraint failures out of maintenance statements,
/// and crashes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ErrorOracle;

impl ErrorOracle {
    /// Returns `true` if the error is expected for the given statement and
    /// therefore *not* a bug.
    #[must_use]
    pub fn is_expected(&self, stmt: &Statement, error: &EngineError) -> bool {
        if error.always_unexpected() {
            return false;
        }
        match stmt.kind() {
            // Data definition and manipulation may legitimately hit
            // constraint violations and semantic errors (e.g. inserting a
            // duplicate into a UNIQUE column, §3.3).
            StatementKind::CreateTable
            | StatementKind::CreateIndex
            | StatementKind::CreateView
            | StatementKind::AlterTable
            | StatementKind::Drop
            | StatementKind::DropIndex
            | StatementKind::Insert
            | StatementKind::Update
            | StatementKind::Delete
            | StatementKind::CreateStats => {
                matches!(error.class, ErrorClass::Constraint | ErrorClass::Semantic)
            }
            // Transaction misuse (stray COMMIT/ROLLBACK, nested BEGIN) is a
            // legitimate semantic error every dialect reports.
            StatementKind::Transaction => matches!(error.class, ErrorClass::Semantic),
            // Queries validated by the interpreter, maintenance statements
            // and options are not expected to fail at all; constraint
            // failures out of REINDEX & friends are exactly the bugs the
            // paper found with the error oracle.
            StatementKind::Select
            | StatementKind::Explain
            | StatementKind::Vacuum
            | StatementKind::Reindex
            | StatementKind::Analyze
            | StatementKind::RepairCheckTable
            | StatementKind::Option
            | StatementKind::Discard
            | StatementKind::Session => false,
        }
    }

    /// Applies the oracle to a failed statement, producing a witness when
    /// the error is unexpected.
    #[must_use]
    pub fn witness(&self, stmt: &Statement, error: &EngineError) -> Option<BugWitness> {
        if self.is_expected(stmt, error) {
            None
        } else {
            Some(BugWitness {
                trigger: stmt.clone(),
                message: error.message.clone(),
                repro: if error.is_crash() { ReproSpec::Crash } else { ReproSpec::UnexpectedError },
            })
        }
    }
}

impl Oracle for ErrorOracle {
    fn name(&self) -> &'static str {
        "error"
    }

    /// The error oracle inspects the state-generation failures once per
    /// database rather than running per-query checks.
    fn cadence(&self) -> Cadence {
        Cadence::PerDatabase
    }

    fn check(&self, _rng: &mut StdRng, _engine: &mut Engine, ctx: &OracleCtx<'_>) -> OracleReport {
        let witnesses: Vec<BugWitness> =
            ctx.failures.iter().filter_map(|(stmt, err)| self.witness(stmt, err)).collect();
        if ctx.failures.is_empty() {
            OracleReport::Skipped
        } else if witnesses.is_empty() {
            OracleReport::Passed
        } else {
            OracleReport::Bugs(witnesses)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DetectionKind;
    use lancer_sql::parser::parse_statement;

    #[test]
    fn error_oracle_whitelists() {
        let oracle = ErrorOracle;
        let insert = parse_statement("INSERT INTO t0(c0) VALUES (1)").unwrap();
        let reindex = parse_statement("REINDEX").unwrap();
        let constraint = EngineError::constraint("UNIQUE constraint failed: t0.c0");
        let corruption = EngineError::corruption("database disk image is malformed");
        let crash = EngineError::crash("SEGFAULT");
        assert!(oracle.is_expected(&insert, &constraint));
        assert!(!oracle.is_expected(&insert, &corruption));
        assert!(!oracle.is_expected(&reindex, &constraint), "spurious REINDEX failures are bugs");
        assert!(!oracle.is_expected(&reindex, &crash));
        assert!(oracle.witness(&insert, &constraint).is_none());
        let crash_witness = oracle.witness(&reindex, &crash).unwrap();
        assert_eq!(crash_witness.kind(), DetectionKind::Crash);
        let error_witness = oracle.witness(&reindex, &constraint).unwrap();
        assert_eq!(error_witness.kind(), DetectionKind::Error);
    }

    #[test]
    fn error_oracle_check_scans_generation_failures() {
        use crate::gen::GenConfig;
        use lancer_engine::Dialect;
        use rand::SeedableRng;

        let gen = GenConfig::tiny();
        let mut engine = Engine::new(Dialect::Sqlite);
        let mut rng = StdRng::seed_from_u64(0);
        let reindex = parse_statement("REINDEX").unwrap();
        let failures = vec![(reindex, EngineError::corruption("database disk image is malformed"))];
        let ctx = OracleCtx { dialect: Dialect::Sqlite, gen: &gen, log: &[], failures: &failures };
        let report = ErrorOracle.check(&mut rng, &mut engine, &ctx);
        assert_eq!(report.witnesses().len(), 1);
        assert_eq!(report.witnesses()[0].kind(), DetectionKind::Error);

        let empty_ctx = OracleCtx { dialect: Dialect::Sqlite, gen: &gen, log: &[], failures: &[] };
        assert_eq!(ErrorOracle.check(&mut rng, &mut engine, &empty_ctx), OracleReport::Skipped);
    }
}
