//! The pluggable test-oracle layer.
//!
//! The paper's pivot-row containment check (§3.2) is one point in a family
//! of logic-bug oracles; the SQLancer lineage (NoREC, TLP, query-plan
//! guidance) shows the leverage comes from running *many* oracles over the
//! same generated database state.  This module therefore defines:
//!
//! * the [`Oracle`] trait — one check over the current database state,
//! * [`OracleReport`] / [`BugWitness`] / [`ReproSpec`] — what a check
//!   concluded and how to reproduce it on a fresh engine,
//! * [`OracleRegistry`] — name → constructor mapping the
//!   [`CampaignBuilder`](crate::runner::CampaignBuilder) resolves,
//! * [`rectify`] — Algorithm 3, shared by oracles that need a
//!   guaranteed-`TRUE` predicate.
//!
//! Five oracles ship in-tree: [`ContainmentOracle`] (§3.2),
//! [`ErrorOracle`] (§3.3), [`TlpOracle`] (ternary logic partitioning) and
//! [`NorecOracle`] (non-optimizing reference engine construction) — the
//! latter two after Rigger & Su's follow-up work — plus the
//! [`SerializabilityOracle`], which checks multi-session transaction
//! episodes against every serial order of their committed sessions.
//! Adding a sixth is a matter of implementing [`Oracle`] and registering
//! it — see the README's architecture section for two worked examples.

pub mod containment;
pub mod error;
pub mod norec;
pub mod serializability;
pub mod tlp;

use lancer_engine::{Dialect, Engine, EngineError};
use lancer_sql::ast::stmt::Statement;
use lancer_sql::ast::Expr;
use lancer_sql::value::{TriBool, Value};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gen::{GenConfig, StateGenerator};

pub use containment::ContainmentOracle;
pub use error::ErrorOracle;
pub use norec::{norec_rewrite, norec_sum, plan_uses_index, random_norec_select, NorecOracle};
pub use serializability::{
    committed_units, serial_orders_match, state_digest, Episode, SerializabilityOracle, StateDigest,
};
pub use tlp::{partition_union, partition_union_at, row_multiset, TlpOracle};

/// Rectifies a randomly generated expression so that it evaluates to `TRUE`
/// for the pivot row (Algorithm 3).
#[must_use]
pub fn rectify(expr: Expr, truth: TriBool) -> Expr {
    match truth {
        TriBool::True => expr,
        TriBool::False => expr.not(),
        TriBool::Unknown => expr.is_null(),
    }
}

/// Which oracle class produced a detection (the columns of Table 3, plus
/// one per additional logic oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DetectionKind {
    /// The pivot row was missing from the result set.
    Containment,
    /// An unexpected (non-crash) error was returned.
    Error,
    /// A simulated crash (SEGFAULT).
    Crash,
    /// A ternary-logic-partitioning mismatch: the union of the `p` /
    /// `NOT p` / `p IS NULL` partitions differs from the unpartitioned
    /// result.
    Tlp,
    /// A NoREC pair mismatch: the optimizable `WHERE p` query fetched a
    /// different number of rows than its non-optimizing
    /// `SUM(CASE WHEN p THEN 1 ELSE 0 END)` rewrite counted.
    Norec,
    /// A serializability violation: the final state of a multi-session
    /// transaction episode matches no serial order of its committed
    /// sessions (which subsumes rolled-back writes staying visible).
    Serializability,
}

impl DetectionKind {
    /// The column label used by Table 3.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DetectionKind::Containment => "Contains",
            DetectionKind::Error => "Error",
            DetectionKind::Crash => "SEGFAULT",
            DetectionKind::Tlp => "TLP",
            DetectionKind::Norec => "NoREC",
            DetectionKind::Serializability => "Serial",
        }
    }

    /// The deduplication domain for attribution.  The three PQS kinds share
    /// one domain — a campaign's PQS pipeline counts each injected fault
    /// once, as the paper's bug reports do — while each independent logic
    /// oracle deduplicates on its own, so registering an extra oracle never
    /// changes what the existing ones report at the same seed.
    #[must_use]
    pub fn dedup_domain(self) -> &'static str {
        match self {
            DetectionKind::Containment | DetectionKind::Error | DetectionKind::Crash => "pqs",
            DetectionKind::Tlp => "tlp",
            DetectionKind::Norec => "norec",
            DetectionKind::Serializability => "serial",
        }
    }
}

/// How to re-check a detection on a fresh engine — the oracle-specific part
/// of reduction and attribution.  The final statement of a detection's
/// statement list is the trigger; `ReproSpec` says what observing the bug
/// through that trigger means.
#[derive(Debug, Clone, PartialEq)]
pub enum ReproSpec {
    /// The trigger is a query that must *fail* to fetch this row for the
    /// bug to reproduce.
    MissingRow(Vec<Value>),
    /// The trigger must fail with an error the [`ErrorOracle`] does not
    /// expect (excluding crashes).
    UnexpectedError,
    /// The trigger must fail with a simulated crash.
    Crash,
    /// The trigger is the unpartitioned query; the union of the partition
    /// queries' row multisets must differ from its result.
    PartitionMismatch {
        /// The `WHERE p` / `WHERE NOT p` / `WHERE p IS NULL` queries.
        partitions: Vec<Statement>,
    },
    /// The trigger is the optimizable `WHERE p` query; its row count must
    /// differ from what the non-optimizing rewrite sums for the bug to
    /// reproduce.
    PairMismatch {
        /// The `SELECT SUM(CASE WHEN p THEN 1 ELSE 0 END) ...` rewrite
        /// (boxed: a `Statement` would dominate the enum's size).
        rewritten: Box<Statement>,
    },
    /// The whole reproduction script (not just the trigger) is a
    /// multi-session transaction episode whose final table state must
    /// match *no* serial order of its committed sessions for the bug to
    /// reproduce.  The committed sessions are re-derived from the script
    /// itself, so the spec survives reduction.
    SerialDivergence,
}

impl ReproSpec {
    /// The detection kind this reproduction strategy corresponds to.
    #[must_use]
    pub fn kind(&self) -> DetectionKind {
        match self {
            ReproSpec::MissingRow(_) => DetectionKind::Containment,
            ReproSpec::UnexpectedError => DetectionKind::Error,
            ReproSpec::Crash => DetectionKind::Crash,
            ReproSpec::PartitionMismatch { .. } => DetectionKind::Tlp,
            ReproSpec::PairMismatch { .. } => DetectionKind::Norec,
            ReproSpec::SerialDivergence => DetectionKind::Serializability,
        }
    }
}

/// A self-contained bug witness: the statement that exposed the bug, a
/// human-readable message, and how to reproduce the observation.
#[derive(Debug, Clone, PartialEq)]
pub struct BugWitness {
    /// The statement that triggered the detection (appended to the state
    /// log to form the reproduction script).
    pub trigger: Statement,
    /// The error message or a description of the mismatch.
    pub message: String,
    /// Oracle-specific reproduction data.
    pub repro: ReproSpec,
}

impl BugWitness {
    /// The detection kind of this witness.
    #[must_use]
    pub fn kind(&self) -> DetectionKind {
        self.repro.kind()
    }
}

/// What a single oracle invocation concluded — the generalization of the
/// original containment-specific `OracleOutcome`.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleReport {
    /// The check ran and found nothing suspicious.
    Passed,
    /// The check could not be performed (e.g. no rows, or the generated
    /// expression was rejected for this dialect).
    Skipped,
    /// One or more bug witnesses.
    Bugs(Vec<BugWitness>),
}

impl OracleReport {
    /// Convenience constructor for the common single-witness case.
    #[must_use]
    pub fn bug(witness: BugWitness) -> OracleReport {
        OracleReport::Bugs(vec![witness])
    }

    /// The witnesses, if any.
    #[must_use]
    pub fn witnesses(&self) -> &[BugWitness] {
        match self {
            OracleReport::Bugs(w) => w,
            _ => &[],
        }
    }
}

/// Deprecated name of [`OracleReport`], kept so downstream `use` paths keep
/// resolving during the migration.
#[deprecated(since = "0.1.0", note = "renamed to `OracleReport`")]
pub type OracleOutcome = OracleReport;

/// How often the campaign runner invokes an oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cadence {
    /// Once per query slot: `queries_per_database` times per generated
    /// database (the containment and TLP oracles).
    PerQuery,
    /// Once per generated database (the error oracle, which inspects the
    /// state-generation failures).
    PerDatabase,
}

/// Which RNG stream an oracle draws from inside a campaign worker.
///
/// The primary stream is the worker RNG that also drives state generation —
/// exactly one registered oracle should use it (the containment oracle, for
/// historical determinism: its draws interleave with generation the same
/// way they did before the trait existed).  Every other oracle gets an
/// independent substream derived from `(campaign seed, worker, oracle
/// name)`, which guarantees that **adding or removing a derived-stream
/// oracle never changes what the other oracles generate or find at the
/// same seed** — the property that keeps Table 3's original columns
/// bit-identical when new oracles are registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RngStream {
    /// Share the worker's primary stream (interleaved with generation).
    Primary,
    /// An independent derived substream (the default).
    #[default]
    Derived,
}

/// Everything an oracle may need about the current database state besides
/// the engine itself.
#[derive(Debug)]
pub struct OracleCtx<'a> {
    /// The dialect under test.
    pub dialect: Dialect,
    /// Generator tuning (e.g. the pivot-table cap).
    pub gen: &'a GenConfig,
    /// The statements that successfully built the current state, in order.
    pub log: &'a [Statement],
    /// Statements that failed during state generation, with their errors.
    pub failures: &'a [(Statement, EngineError)],
}

/// A test oracle: one strategy for exposing bugs in the engine given a
/// generated database state.
///
/// Implementations must be `Send + Sync`: a campaign shares one oracle
/// instance across its worker threads, handing each worker its own RNG.
pub trait Oracle: Send + Sync {
    /// The registry name of the oracle (also used for per-oracle labels in
    /// reports).
    fn name(&self) -> &'static str;

    /// How often the runner invokes [`check`](Oracle::check).
    fn cadence(&self) -> Cadence {
        Cadence::PerQuery
    }

    /// Which RNG stream the oracle draws from (see [`RngStream`]).
    fn rng_stream(&self) -> RngStream {
        RngStream::Derived
    }

    /// Runs one check against the engine's current state.
    fn check(&self, rng: &mut StdRng, engine: &mut Engine, ctx: &OracleCtx<'_>) -> OracleReport;

    /// Per-oracle work counters, read by the campaign runner after all
    /// workers finish (e.g. NoREC's pairs-checked / plans-diverged pair).
    /// Oracles that track nothing beyond their witnesses return the default
    /// empty list.  Implementations must count through interior mutability
    /// (`check` shares one instance across worker threads), and the values
    /// must be cumulative, order-independent sums so threaded campaigns
    /// stay deterministic — the runner snapshots them before a run and
    /// folds only the delta, so `Campaign::run` stays re-runnable.
    ///
    /// The runner currently surfaces the counter names it has
    /// [`CampaignStats`](crate::CampaignStats) fields for
    /// (`norec_pairs_checked`, `norec_plan_divergences`); names it does
    /// not recognize are ignored, so a custom oracle's counters need a
    /// matching stats field to show up in reports.
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// Constructor signature for registry-built oracles.
pub type OracleFactory = fn(Dialect, &GenConfig) -> Box<dyn Oracle>;

/// A name → constructor registry of oracles.
///
/// [`OracleRegistry::builtin`] registers the five in-tree oracles in
/// canonical order (`error`, `containment`, `tlp`, `norec`,
/// `serializability` — the error oracle runs first per database,
/// mirroring the original runner).
/// Downstream code can
/// [`register`](OracleRegistry::register) additional oracles and hand the
/// registry to a [`CampaignBuilder`](crate::runner::CampaignBuilder).
#[derive(Debug, Clone)]
pub struct OracleRegistry {
    factories: Vec<(&'static str, OracleFactory)>,
}

impl OracleRegistry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> OracleRegistry {
        OracleRegistry { factories: Vec::new() }
    }

    /// The registry of in-tree oracles.
    #[must_use]
    pub fn builtin() -> OracleRegistry {
        let mut r = OracleRegistry::empty();
        r.register("error", |_, _| Box::new(ErrorOracle));
        r.register("containment", |dialect, gen| {
            Box::new(ContainmentOracle::new(dialect, gen.clone()))
        });
        r.register("tlp", |dialect, gen| Box::new(TlpOracle::new(dialect, gen.clone())));
        r.register("norec", |dialect, gen| Box::new(NorecOracle::new(dialect, gen.clone())));
        r.register("serializability", |dialect, gen| {
            Box::new(SerializabilityOracle::new(dialect, gen.clone()))
        });
        r
    }

    /// Registers (or replaces) an oracle constructor under a name.
    pub fn register(&mut self, name: &'static str, factory: OracleFactory) {
        if let Some(slot) = self.factories.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = factory;
        } else {
            self.factories.push((name, factory));
        }
    }

    /// The registered names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.factories.iter().map(|(n, _)| *n).collect()
    }

    /// Builds the oracle registered under `name`, or `None` if unknown.
    #[must_use]
    pub fn build(&self, name: &str, dialect: Dialect, gen: &GenConfig) -> Option<Box<dyn Oracle>> {
        self.factories.iter().find(|(n, _)| *n == name).map(|(_, f)| f(dialect, gen))
    }
}

impl Default for OracleRegistry {
    fn default() -> Self {
        OracleRegistry::builtin()
    }
}

/// Convenience: generate a database and run `queries` containment checks
/// plus the error oracle over the generation failures, returning every
/// witness (used by examples and tests; the campaign runner in
/// [`crate::runner`] adds reduction, attribution and statistics).
pub fn quick_scan<R: Rng>(
    rng: &mut R,
    engine: &mut Engine,
    config: &GenConfig,
    queries: usize,
) -> (Vec<Statement>, Vec<BugWitness>) {
    let mut generator = StateGenerator::new(engine.dialect(), config.clone());
    let error_oracle = ErrorOracle;
    let mut witnesses = Vec::new();
    let (log, failures) = generator.generate_database(rng, engine);
    for (stmt, err) in &failures {
        if let Some(w) = error_oracle.witness(stmt, err) {
            witnesses.push(w);
        }
    }
    let containment = ContainmentOracle::new(engine.dialect(), config.clone());
    for _ in 0..queries {
        if let OracleReport::Bugs(ws) = containment.check_once(rng, engine) {
            witnesses.extend(ws);
        }
    }
    (log, witnesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancer_sql::parser::parse_statement;

    #[test]
    fn rectification_follows_algorithm3() {
        let e = Expr::col("c0").eq(Expr::int(1));
        assert_eq!(rectify(e.clone(), TriBool::True), e);
        assert_eq!(rectify(e.clone(), TriBool::False), e.clone().not());
        assert_eq!(rectify(e.clone(), TriBool::Unknown), e.is_null());
    }

    #[test]
    fn repro_specs_map_to_detection_kinds() {
        assert_eq!(ReproSpec::MissingRow(vec![]).kind(), DetectionKind::Containment);
        assert_eq!(ReproSpec::UnexpectedError.kind(), DetectionKind::Error);
        assert_eq!(ReproSpec::Crash.kind(), DetectionKind::Crash);
        assert_eq!(ReproSpec::PartitionMismatch { partitions: vec![] }.kind(), DetectionKind::Tlp);
        let rewritten = Box::new(parse_statement("SELECT 1").unwrap());
        assert_eq!(ReproSpec::PairMismatch { rewritten }.kind(), DetectionKind::Norec);
        assert_eq!(ReproSpec::SerialDivergence.kind(), DetectionKind::Serializability);
    }

    #[test]
    fn detection_kind_labels_and_domains() {
        assert_eq!(DetectionKind::Containment.label(), "Contains");
        assert_eq!(DetectionKind::Error.label(), "Error");
        assert_eq!(DetectionKind::Crash.label(), "SEGFAULT");
        assert_eq!(DetectionKind::Tlp.label(), "TLP");
        assert_eq!(DetectionKind::Norec.label(), "NoREC");
        assert_eq!(DetectionKind::Serializability.label(), "Serial");
        assert_eq!(DetectionKind::Containment.dedup_domain(), "pqs");
        assert_eq!(DetectionKind::Error.dedup_domain(), "pqs");
        assert_eq!(DetectionKind::Crash.dedup_domain(), "pqs");
        assert_eq!(DetectionKind::Tlp.dedup_domain(), "tlp");
        assert_eq!(DetectionKind::Norec.dedup_domain(), "norec");
        assert_eq!(DetectionKind::Serializability.dedup_domain(), "serial");
    }

    #[test]
    fn report_witness_accessors() {
        let w = BugWitness {
            trigger: parse_statement("SELECT 1").unwrap(),
            message: "m".into(),
            repro: ReproSpec::Crash,
        };
        assert_eq!(w.kind(), DetectionKind::Crash);
        let report = OracleReport::bug(w.clone());
        assert_eq!(report.witnesses(), &[w]);
        assert_eq!(OracleReport::Passed.witnesses(), &[] as &[BugWitness]);
        assert_eq!(OracleReport::Skipped.witnesses(), &[] as &[BugWitness]);
    }

    #[test]
    fn registry_builds_builtins_in_canonical_order() {
        let registry = OracleRegistry::builtin();
        assert_eq!(
            registry.names(),
            vec!["error", "containment", "tlp", "norec", "serializability"]
        );
        let gen = GenConfig::tiny();
        for name in registry.names() {
            let oracle = registry.build(name, Dialect::Sqlite, &gen).expect("builtin");
            assert_eq!(oracle.name(), name);
        }
        assert!(registry.build("nonexistent", Dialect::Sqlite, &gen).is_none());
    }

    #[test]
    fn registry_register_replaces_by_name() {
        let mut registry = OracleRegistry::builtin();
        let before = registry.names().len();
        registry.register("tlp", |_, _| Box::new(ErrorOracle));
        assert_eq!(registry.names().len(), before, "replacement must not duplicate");
        let replaced = registry.build("tlp", Dialect::Sqlite, &GenConfig::tiny()).unwrap();
        assert_eq!(replaced.name(), "error");
    }
}
